#!/usr/bin/env python3
"""Tail-latency perf-regression gate.

Compares the P99 of every (scenario, engine) cell in a fresh
``experiments -- tail --json`` run against the checked-in baseline
(``ci/BENCH_baseline.json``) and fails if any cell regressed by more
than the threshold (default 25%).

The tail experiment runs on a deterministic simulated clock, so the
numbers are host-independent: a drift beyond the threshold means the
*code* changed read-path behaviour, not that CI got a slow runner. The
gate is soft by policy, not by mechanism — apply the ``perf-override``
label to a PR to skip this step (the workflow gates on the label), then
refresh the baseline in the same PR:

    cargo run -p agar-bench --release --bin experiments -- \
        tail --tiny --ops 300 --json ci/BENCH_baseline.json

Usage: check_bench.py BASELINE CURRENT [--threshold PCT]
Exit status: 0 clean, 1 regression or malformed input.
"""

import json
import sys


def load_cells(path):
    with open(path) as handle:
        document = json.load(handle)
    cells = document.get("tail", [])
    if not cells:
        raise SystemExit(f"error: {path} has no 'tail' section — "
                         "was it produced by 'experiments -- tail --json'?")
    return {(cell["scenario"], cell["policy"]): cell for cell in cells}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        raise SystemExit(__doc__)
    threshold_pct = 25.0
    for flag in argv[1:]:
        if flag.startswith("--threshold"):
            threshold_pct = float(flag.split("=", 1)[1])
    baseline = load_cells(args[0])
    current = load_cells(args[1])

    failures = []
    width = max(len(f"{s} / {p}") for s, p in baseline) + 2
    print(f"tail P99 gate: threshold +{threshold_pct:.0f}% vs {args[0]}")
    for key in sorted(baseline):
        label = f"{key[0]} / {key[1]}"
        cell = current.get(key)
        if cell is None:
            failures.append(f"{label}: cell missing from current run")
            print(f"  {label:<{width}} MISSING")
            continue
        old, new = baseline[key]["p99_ms"], cell["p99_ms"]
        delta_pct = (new / old - 1.0) * 100.0 if old > 0 else 0.0
        verdict = "ok"
        if old > 0 and new > old * (1.0 + threshold_pct / 100.0):
            verdict = "REGRESSED"
            failures.append(
                f"{label}: P99 {old:.0f} ms -> {new:.0f} ms ({delta_pct:+.1f}%)")
        print(f"  {label:<{width}} P99 {old:7.1f} -> {new:7.1f} ms "
              f"({delta_pct:+6.1f}%)  {verdict}")
    for key in sorted(set(current) - set(baseline)):
        print(f"  {key[0]} / {key[1]}: new cell (not in baseline), ignored")

    if failures:
        print("\nP99 regressions beyond the threshold:")
        for failure in failures:
            print(f"  - {failure}")
        print("\nIf the slowdown is intended, apply the 'perf-override' label "
              "and refresh ci/BENCH_baseline.json in this PR (see file docstring).")
        return 1
    print("no P99 regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
