#!/usr/bin/env python3
"""Validates Prometheus text exposition format on stdin (or a file).

Usage: check_exposition.py [--require FAMILY [FAMILY ...]] [FILE]

Checks the subset of the exposition format the registry emits:

- ``# HELP <name> <text>`` and ``# TYPE <name> counter|gauge|histogram``
  comment lines, at most one of each per metric family, HELP before
  TYPE, both before the family's first sample;
- sample lines ``name{label="value",...} value`` with metric and label
  names matching ``[a-zA-Z_:][a-zA-Z0-9_:]*`` / ``[a-zA-Z_][a-zA-Z0-9_]*``
  and properly escaped label values;
- every sample value parses as a float (Prometheus has no integers);
- histogram families expose ``_bucket`` series with non-decreasing
  cumulative counts ending in ``le="+Inf"``, plus ``_sum`` and
  ``_count`` series;
- no duplicate (name, labelset) samples.

With ``--require``, additionally fails unless every named metric
family is present (declared by a TYPE line) — the CI gate that keeps
new instrumentation from silently falling out of the scrape body.

Exits nonzero with a line-numbered report on any violation.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
# One label pair: name="value" with \\, \" and \n escapes only.
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\[\\"n])*)"')


def fail(errors):
    for err in errors:
        print(f"check_exposition: {err}", file=sys.stderr)
    print(f"check_exposition: FAILED with {len(errors)} error(s)", file=sys.stderr)
    sys.exit(1)


def parse_labels(raw, lineno, errors):
    """Returns the label string's (name, value) pairs, recording errors."""
    pairs = []
    rest = raw
    while rest:
        match = LABEL_PAIR.match(rest)
        if not match:
            errors.append(f"line {lineno}: malformed label segment {rest!r}")
            return pairs
        pairs.append((match.group(1), match.group(2)))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"line {lineno}: expected ',' between labels, got {rest!r}")
            return pairs
    return pairs


def main():
    argv = sys.argv[1:]
    required = []
    if argv and argv[0] == "--require":
        argv = argv[1:]
        while argv and not argv[0].startswith("-") and METRIC_NAME.match(argv[0]):
            required.append(argv.pop(0))
        if not required:
            print("check_exposition: --require needs at least one family", file=sys.stderr)
            sys.exit(2)
    if len(argv) > 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    if len(argv) == 1:
        with open(argv[0], encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()

    errors = []
    helps = {}      # family -> lineno
    types = {}      # family -> (type, lineno)
    seen_samples = set()   # (name, canonical labelset)
    sampled_families = set()
    buckets = {}    # (family, non-le labelset) -> list of (le, count)
    series_suffixes = {}   # family -> set of suffix kinds seen

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line in exposition body")
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not METRIC_NAME.match(name):
                errors.append(f"line {lineno}: bad metric name in HELP: {name!r}")
            if name in helps:
                errors.append(
                    f"line {lineno}: duplicate HELP for {name} "
                    f"(first at line {helps[name]})"
                )
            if len(parts) < 2 or not parts[1].strip():
                errors.append(f"line {lineno}: HELP for {name} has no text")
            helps[name] = lineno
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram"):
                errors.append(f"line {lineno}: unknown type {kind!r} for {name}")
            if name in types:
                errors.append(
                    f"line {lineno}: duplicate TYPE for {name} "
                    f"(first at line {types[name][1]})"
                )
            if name not in helps:
                errors.append(f"line {lineno}: TYPE for {name} precedes its HELP")
            if name in sampled_families:
                errors.append(f"line {lineno}: TYPE for {name} after its samples")
            types[name] = (kind, lineno)
            continue
        if line.startswith("#"):
            errors.append(f"line {lineno}: unexpected comment {line!r}")
            continue

        match = SAMPLE.match(line)
        if not match:
            errors.append(f"line {lineno}: malformed sample line {line!r}")
            continue
        name = match.group("name")
        labels = parse_labels(match.group("labels") or "", lineno, errors)
        for label_name, _ in labels:
            if not LABEL_NAME.match(label_name):
                errors.append(f"line {lineno}: bad label name {label_name!r}")
        try:
            float(match.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {match.group('value')!r}")

        # Histogram series roll up under the family name minus suffix.
        family = name
        suffix = None
        for candidate in ("_bucket", "_sum", "_count"):
            base = name[: -len(candidate)] if name.endswith(candidate) else None
            if base and types.get(base, (None,))[0] == "histogram":
                family, suffix = base, candidate
                break
        if family not in types:
            errors.append(f"line {lineno}: sample for {name} has no TYPE")
        if family not in helps:
            errors.append(f"line {lineno}: sample for {name} has no HELP")
        sampled_families.add(family)
        if suffix:
            series_suffixes.setdefault(family, set()).add(suffix)

        canonical = (name, tuple(sorted(labels)))
        if canonical in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {name}{sorted(labels)}")
        seen_samples.add(canonical)

        if suffix == "_bucket":
            le = dict(labels).get("le")
            if le is None:
                errors.append(f"line {lineno}: _bucket sample without le label")
            else:
                key = (family, tuple(sorted(p for p in labels if p[0] != "le")))
                buckets.setdefault(key, []).append((le, float(match.group("value"))))

    for (family, labelset), series in buckets.items():
        les = [le for le, _ in series]
        if les[-1] != "+Inf":
            errors.append(f"{family}{dict(labelset)}: buckets must end at le=\"+Inf\"")
        counts = [count for _, count in series]
        if any(b < a for a, b in zip(counts, counts[1:])):
            errors.append(f"{family}{dict(labelset)}: cumulative counts decrease")
    for family, suffixes in series_suffixes.items():
        missing = {"_bucket", "_sum", "_count"} - suffixes
        if missing:
            errors.append(f"{family}: histogram missing series {sorted(missing)}")

    for family in required:
        if family not in types:
            errors.append(f"required family {family} absent from exposition")

    if errors:
        fail(errors)
    print(
        f"check_exposition: OK — {len(seen_samples)} samples in "
        f"{len(types)} families ({len(required)} required present)"
    )


if __name__ == "__main__":
    main()
