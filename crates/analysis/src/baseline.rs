//! The committed lint baseline (`ci/lint_baseline.json`): waived
//! finding fingerprints plus the per-file `unwrap`/`expect` ratchet.
//!
//! The vendored `serde` is a no-op stub, so the (tiny, fixed-shape)
//! JSON is read and written by hand. The format:
//!
//! ```json
//! {
//!   "version": 1,
//!   "waived": ["pass|file|key", "..."],
//!   "unwrap_ratchet": {
//!     "crates/cache/src/disk.rs": { "unwrap": 3, "expect": 10 }
//!   }
//! }
//! ```
//!
//! The gate is an *exact match*: new findings fail, but so do stale
//! waivers and a ratchet count that went down without the baseline
//! being refreshed (`agar-lint --write-baseline`) — the count can only
//! be ratcheted down deliberately, never silently drift.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Per-file `unwrap()` / `expect()` counts in non-test library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RatchetCounts {
    pub unwrap: u32,
    pub expect: u32,
}

/// The parsed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub waived: BTreeSet<String>,
    pub ratchet: BTreeMap<String, RatchetCounts>,
}

impl Baseline {
    /// Renders the baseline as stable, diff-friendly JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"waived\": [");
        let mut first = true;
        for fp in &self.waived {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\"", escape(fp));
        }
        if !self.waived.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"unwrap_ratchet\": {");
        let mut first = true;
        for (file, counts) in &self.ratchet {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{ \"unwrap\": {}, \"expect\": {} }}",
                escape(file),
                counts.unwrap,
                counts.expect
            );
        }
        if !self.ratchet.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses baseline JSON. Returns `Err` with a description on any
    /// shape the writer would not produce.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            i: 0,
        };
        let mut baseline = Baseline::default();
        p.expect_byte(b'{')?;
        loop {
            p.skip_ws();
            if p.peek() == Some(b'}') {
                break; // end of the top-level object
            }
            let field = p.string()?;
            p.expect_byte(b':')?;
            match field.as_str() {
                "version" => {
                    let v = p.number()?;
                    if v != 1 {
                        return Err(format!("unsupported baseline version {v}"));
                    }
                }
                "waived" => {
                    p.expect_byte(b'[')?;
                    loop {
                        p.skip_ws();
                        if p.peek() == Some(b']') {
                            p.i += 1;
                            break;
                        }
                        baseline.waived.insert(p.string()?);
                        p.skip_ws();
                        if p.peek() == Some(b',') {
                            p.i += 1;
                        }
                    }
                }
                "unwrap_ratchet" => {
                    p.expect_byte(b'{')?;
                    loop {
                        p.skip_ws();
                        if p.peek() == Some(b'}') {
                            p.i += 1;
                            break;
                        }
                        let file = p.string()?;
                        p.expect_byte(b':')?;
                        p.expect_byte(b'{')?;
                        let mut counts = RatchetCounts::default();
                        loop {
                            p.skip_ws();
                            if p.peek() == Some(b'}') {
                                p.i += 1;
                                break;
                            }
                            let key = p.string()?;
                            p.expect_byte(b':')?;
                            let value = p.number()?;
                            match key.as_str() {
                                "unwrap" => counts.unwrap = value as u32,
                                "expect" => counts.expect = value as u32,
                                other => return Err(format!("unknown ratchet field {other:?}")),
                            }
                            p.skip_ws();
                            if p.peek() == Some(b',') {
                                p.i += 1;
                            }
                        }
                        baseline.ratchet.insert(file, counts);
                        p.skip_ws();
                        if p.peek() == Some(b',') {
                            p.i += 1;
                        }
                    }
                }
                other => return Err(format!("unknown baseline field {other:?}")),
            }
            p.skip_ws();
            if p.peek() == Some(b',') {
                p.i += 1;
            }
        }
        Ok(baseline)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} of baseline",
                b as char, self.i
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        while let Some(b) = self.peek() {
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string in baseline".to_string())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected a number at byte {start} of baseline"));
        }
        std::str::from_utf8(&self.bytes[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "bad number in baseline".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.waived.insert("determinism|crates/a.rs|key".to_string());
        b.waived
            .insert("unsafe-hygiene|crates/b.rs|other#2".to_string());
        b.ratchet.insert(
            "crates/cache/src/disk.rs".to_string(),
            RatchetCounts {
                unwrap: 3,
                expect: 10,
            },
        );
        let json = b.to_json();
        let parsed = Baseline::from_json(&json).expect("round trip parses");
        assert_eq!(parsed, b);
    }

    #[test]
    fn empty_round_trips() {
        let b = Baseline::default();
        assert_eq!(Baseline::from_json(&b.to_json()).expect("parses"), b);
    }

    #[test]
    fn rejects_unknown_fields() {
        assert!(Baseline::from_json("{ \"bogus\": [] }").is_err());
    }
}
