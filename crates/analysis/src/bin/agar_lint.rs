//! `agar-lint` — the workspace invariant gate.
//!
//! ```text
//! agar-lint [--root DIR] [--baseline FILE] [--list] [--write-baseline] [--pass ID]
//! ```
//!
//! Default mode analyzes `crates/*/src` and `src/` under `--root`
//! (default `.`), compares against the committed baseline (default
//! `ci/lint_baseline.json`) and exits non-zero on any deviation:
//! new findings, stale waivers, or an unwrap/expect ratchet moving in
//! either direction without a baseline refresh.

use agar_analysis::{analyze, baseline::Baseline, diag::fingerprints, gate};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    baseline: PathBuf,
    list: bool,
    write_baseline: bool,
    pass: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        baseline: PathBuf::from("ci/lint_baseline.json"),
        list: false,
        write_baseline: false,
        pass: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => options.root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--baseline" => {
                options.baseline = PathBuf::from(args.next().ok_or("--baseline needs a value")?)
            }
            "--list" => options.list = true,
            "--write-baseline" => options.write_baseline = true,
            "--pass" => options.pass = Some(args.next().ok_or("--pass needs a value")?),
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(options)
}

fn print_help() {
    println!("agar-lint: workspace invariant analyzer\n");
    println!(
        "USAGE: agar-lint [--root DIR] [--baseline FILE] [--list] [--write-baseline] [--pass ID]\n"
    );
    println!("PASSES:");
    for pass in agar_analysis::passes::registry() {
        println!("  {:22} {}", pass.id(), pass.description());
    }
    println!("\nWaive a site inline with `// agar-lint: allow(<pass-id>)` (same or previous");
    println!("line; file-wide when placed in the header docs before any code).");
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("agar-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = match analyze(&options.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("agar-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(pass) = &options.pass {
        report.findings.retain(|f| f.pass == pass);
    }

    if options.write_baseline {
        if options.pass.is_some() {
            eprintln!("agar-lint: refusing to write a baseline filtered by --pass");
            return ExitCode::from(2);
        }
        let json = report.as_baseline().to_json();
        if let Err(e) = std::fs::write(&options.baseline, json) {
            eprintln!("agar-lint: writing {}: {e}", options.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "agar-lint: wrote {} ({} waived findings, {} ratcheted files)",
            options.baseline.display(),
            report.findings.len(),
            report.ratchet.len()
        );
        return ExitCode::SUCCESS;
    }

    if options.list {
        for (fp, finding) in fingerprints(&report.findings) {
            println!("{finding}");
            println!("  = fingerprint: {fp}\n");
        }
        println!("agar-lint: {} findings", report.findings.len());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&options.baseline) {
        Ok(text) => match Baseline::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("agar-lint: parsing {}: {e}", options.baseline.display());
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!(
                "agar-lint: reading baseline {}: {e} (run with --write-baseline to create it)",
                options.baseline.display()
            );
            return ExitCode::from(2);
        }
    };

    let violations = gate(&report, &baseline);
    if violations.is_empty() {
        println!(
            "agar-lint: clean — {} waived findings, {} ratcheted files, 5 passes",
            baseline.waived.len(),
            baseline.ratchet.len()
        );
        return ExitCode::SUCCESS;
    }
    for violation in &violations {
        eprintln!("{violation}\n");
    }
    eprintln!(
        "agar-lint: {} violation(s) against the committed baseline",
        violations.len()
    );
    ExitCode::FAILURE
}
