//! Findings and their rustc-style rendering.

use std::collections::BTreeMap;
use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Pass id (`lock-across-blocking`, `determinism`, …).
    pub pass: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
    /// A line-free stable key for baseline matching: findings keep the
    /// same key across unrelated edits that only shift line numbers.
    pub key: String,
}

impl Finding {
    /// The baseline fingerprint *before* duplicate disambiguation.
    pub fn raw_fingerprint(&self) -> String {
        format!("{}|{}|{}", self.pass, self.file, self.key)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "warning[agar::{}]: {}", self.pass, self.message)?;
        write!(f, "  --> {}:{}", self.file, self.line)
    }
}

/// Assigns each finding its final fingerprint: the raw fingerprint,
/// with `#2`, `#3`, … appended to the second and later findings that
/// share one (so N identical findings baseline as N entries and a new
/// duplicate still trips the gate).
pub fn fingerprints(findings: &[Finding]) -> Vec<(String, &Finding)> {
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = Vec::with_capacity(findings.len());
    for finding in findings {
        let raw = finding.raw_fingerprint();
        let n = seen.entry(raw.clone()).or_insert(0);
        *n += 1;
        let fp = if *n == 1 { raw } else { format!("{raw}#{n}") };
        out.push((fp, finding));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(key: &str) -> Finding {
        Finding {
            pass: "determinism",
            file: "a.rs".into(),
            line: 3,
            message: "m".into(),
            key: key.into(),
        }
    }

    #[test]
    fn duplicate_fingerprints_are_numbered() {
        let fs = vec![fake("k"), fake("k"), fake("other")];
        let fps: Vec<String> = fingerprints(&fs).into_iter().map(|(fp, _)| fp).collect();
        assert_eq!(
            fps,
            vec![
                "determinism|a.rs|k".to_string(),
                "determinism|a.rs|k#2".to_string(),
                "determinism|a.rs|other".to_string(),
            ]
        );
    }

    #[test]
    fn display_is_rustc_shaped() {
        let text = fake("k").to_string();
        assert!(text.starts_with("warning[agar::determinism]: m"));
        assert!(text.ends_with("--> a.rs:3"));
    }
}
