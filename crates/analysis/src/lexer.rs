//! A lightweight Rust lexer — just enough fidelity for the lint
//! passes: identifiers, punctuation, literals and comments, each tagged
//! with a 1-based line number.
//!
//! This is deliberately *not* a full Rust grammar. The passes only
//! need to see code shape (who calls what, where braces open and
//! close, what a comment says), so the lexer's job is to make sure
//! that string literals, char literals, lifetimes and comments never
//! masquerade as code. Multi-character operators are kept as single
//! tokens only where the passes need the disambiguation (`::`, `->`,
//! `=>`, `..`, `..=`); everything else is one punctuation character
//! per token.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `self`, `lock`, …).
    Ident,
    /// Punctuation; multi-character only for `::`, `->`, `=>`, `..`, `..=`.
    Punct,
    /// A string literal (`"…"`, `r#"…"#`, `b"…"`), content dropped.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// The token text; empty for string literals (their content is
    /// never code and keeping it would invite accidental matches).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True if this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// A comment, kept out of the token stream (the unsafe-hygiene pass
/// and the `agar-lint: allow(...)` directives read these).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Raw comment text including the delimiters.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `source`, splitting code tokens from comments.
///
/// The lexer never fails: malformed trailing input degenerates into
/// punctuation tokens, which at worst makes a pass miss a match in a
/// file that would not compile anyway.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: source[start..i].to_string(),
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: source[start..i].to_string(),
                });
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let start_line = line;
                let kind = if c == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                    TokKind::Char
                } else {
                    TokKind::Str
                };
                i = skip_prefixed_literal(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident
                // NOT followed by a closing `'`.
                if is_lifetime(bytes, i) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: source[start..i].to_string(),
                        line,
                    });
                } else {
                    i = skip_char_literal(bytes, i, &mut line);
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (is_ident_byte(bytes[i])) {
                    i += 1;
                }
                // One decimal point, only if followed by a digit
                // (keeps `0..n` as three tokens).
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let text = match (c, bytes.get(i + 1), bytes.get(i + 2)) {
                    (b':', Some(b':'), _) => "::",
                    (b'-', Some(b'>'), _) => "->",
                    (b'=', Some(b'>'), _) => "=>",
                    (b'.', Some(b'.'), Some(b'=')) => "..=",
                    (b'.', Some(b'.'), _) => "..",
                    _ => {
                        out.tokens.push(Token {
                            kind: TokKind::Punct,
                            text: (c as char).to_string(),
                            line,
                        });
                        i += 1;
                        continue;
                    }
                };
                i += text.len();
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: text.to_string(),
                    line,
                });
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True at a `r"`, `r#`, `b"`, `b'`, `br` literal start — but not at
/// a plain identifier that merely begins with `r`/`b`.
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a plain `"…"` string starting at `i`; returns the index past
/// the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` starting at `i`.
fn skip_prefixed_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        raw = true;
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        return skip_char_literal(bytes, i, line);
    }
    let mut hashes = 0usize;
    while raw && i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return i; // not actually a literal; treat consumed prefix as done
    }
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => {
                let mut j = i + 1;
                let mut seen = 0usize;
                while seen < hashes && j < bytes.len() && bytes[j] == b'#' {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return j;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'…'` char literal starting at the opening quote.
fn skip_char_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// `'` starts a lifetime iff it is followed by an identifier that is
/// not closed by another `'` (that would be a char literal like `'a'`).
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&next) = bytes.get(i + 1) else {
        return false;
    };
    if !is_ident_start(next) {
        return false;
    }
    let mut j = i + 1;
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    !(j < bytes.len() && bytes[j] == b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
            // self.lock() in a comment
            /* nested /* block */ self.read() */
            let s = "self.lock()";
            let r = r#"self.write()"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"lock".to_string()));
        assert!(!ids.contains(&"read".to_string()));
        assert!(!ids.contains(&"write".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc").tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multi_char_puncts_are_merged() {
        let toks = lex("a::b -> c => 0..n ..=").tokens;
        let puncts: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["::", "->", "=>", "..", "..="]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("0..shards.len()").tokens;
        assert!(toks[0].kind == TokKind::Num && toks[0].text == "0");
        assert!(toks[1].is_punct(".."));
        assert!(toks[2].is_ident("shards"));
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let toks = lex(r##"let a = b"bytes"; let b = br#"raw"# ; let c = b'x';"##).tokens;
        let strs = toks.iter().filter(|t| t.kind == TokKind::Str).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(strs, 2);
        assert_eq!(chars, 1);
    }
}
