//! `agar-analysis` — the workspace invariant analyzer behind the
//! `agar-lint` binary.
//!
//! Eight PRs of convention guard this reproduction's correctness: no
//! backend fetch or RS decode under any lock (PR 2/PR 4), a global
//! lock order with no cycles, determinism in every sim-clock path,
//! every stat cell late-bound into the registry (PR 8), and `SAFETY:`
//! discipline around the SIMD kernels (PR 5). Each of those survives
//! only as long as every new PR happens to respect it. This crate
//! turns them into machine-checked gates: a hand-rolled lexer and
//! scope model (dependency-free — the vendored-stub environment has no
//! registry access for `syn`), a pluggable pass registry, and an
//! exact-match baseline (`ci/lint_baseline.json`) so the gate is
//! strict on *new* code while pre-existing findings are waived
//! visibly, in one committed file.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p agar-analysis --bin agar-lint            # gate vs ci/lint_baseline.json
//! cargo run -p agar-analysis --bin agar-lint -- --list  # print findings, no gate
//! cargo run -p agar-analysis --bin agar-lint -- --write-baseline
//! ```

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod model;
pub mod passes;

use baseline::{Baseline, RatchetCounts};
use diag::{fingerprints, Finding};
use model::FileModel;
use passes::Workspace;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The result of analyzing a workspace: pass findings plus the
/// per-file unwrap/expect ratchet counts.
pub struct Report {
    pub findings: Vec<Finding>,
    pub ratchet: BTreeMap<String, RatchetCounts>,
}

impl Report {
    /// The baseline this report would commit as.
    pub fn as_baseline(&self) -> Baseline {
        Baseline {
            waived: fingerprints(&self.findings)
                .into_iter()
                .map(|(fp, _)| fp)
                .collect(),
            ratchet: self.ratchet.clone(),
        }
    }
}

/// One gate violation: a deviation between the current report and the
/// committed baseline, in either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A finding not waived by the baseline — the strict direction.
    New(Finding),
    /// A waived fingerprint that no longer fires: the baseline is
    /// stale, refresh it so the waiver cannot silently shelter a
    /// future regression.
    StaleWaiver(String),
    /// unwrap/expect count went *up* in a file.
    RatchetUp {
        file: String,
        which: &'static str,
        baseline: u32,
        current: u32,
    },
    /// unwrap/expect count went *down* (or the file disappeared)
    /// without the baseline being refreshed.
    RatchetStale {
        file: String,
        which: &'static str,
        baseline: u32,
        current: u32,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::New(finding) => write!(f, "{finding}"),
            Violation::StaleWaiver(fp) => write!(
                f,
                "error[agar::baseline]: waived finding no longer fires — refresh the \
                 baseline (`agar-lint --write-baseline`)\n  --> {fp}"
            ),
            Violation::RatchetUp {
                file,
                which,
                baseline,
                current,
            } => write!(
                f,
                "error[agar::ratchet]: `{which}()` count in {file} rose {baseline} -> \
                 {current} — new {which}s in non-test code are not allowed; propagate a \
                 Result or justify an expect and refresh the baseline"
            ),
            Violation::RatchetStale {
                file,
                which,
                baseline,
                current,
            } => write!(
                f,
                "error[agar::ratchet]: `{which}()` count in {file} fell {baseline} -> \
                 {current} — good! commit the tightened baseline \
                 (`agar-lint --write-baseline`) so it cannot drift back up"
            ),
        }
    }
}

/// Walks the workspace at `root`, parses every target `.rs` file and
/// runs all registered passes.
pub fn analyze(root: &Path) -> Result<Report, String> {
    let files = collect_files(root)?;
    let mut models = Vec::with_capacity(files.len());
    for path in files {
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        models.push(FileModel::parse(&rel, &source));
    }
    Ok(analyze_models(models))
}

/// Runs all passes over already-parsed files (fixture tests enter
/// here).
pub fn analyze_models(files: Vec<FileModel>) -> Report {
    let workspace = Workspace { files };
    let mut findings = Vec::new();
    for pass in passes::registry() {
        pass.check(&workspace, &mut findings);
    }
    findings.sort();
    let mut ratchet = BTreeMap::new();
    for file in &workspace.files {
        let counts = passes::unsafe_hygiene::ratchet_counts(file);
        if counts != RatchetCounts::default() {
            ratchet.insert(file.path.clone(), counts);
        }
    }
    Report { findings, ratchet }
}

/// Compares a report against the committed baseline. Empty result =
/// gate passes.
pub fn gate(report: &Report, baseline: &Baseline) -> Vec<Violation> {
    let mut violations = Vec::new();
    let current = fingerprints(&report.findings);
    for (fp, finding) in &current {
        if !baseline.waived.contains(fp) {
            violations.push(Violation::New((*finding).clone()));
        }
    }
    let current_fps: std::collections::BTreeSet<&String> =
        current.iter().map(|(fp, _)| fp).collect();
    for waived in &baseline.waived {
        if !current_fps.contains(waived) {
            violations.push(Violation::StaleWaiver(waived.clone()));
        }
    }
    let zero = RatchetCounts::default();
    let files: std::collections::BTreeSet<&String> = report
        .ratchet
        .keys()
        .chain(baseline.ratchet.keys())
        .collect();
    for file in files {
        let now = report.ratchet.get(file).copied().unwrap_or(zero);
        let base = baseline.ratchet.get(file).copied().unwrap_or(zero);
        for (which, n, b) in [
            ("unwrap", now.unwrap, base.unwrap),
            ("expect", now.expect, base.expect),
        ] {
            use std::cmp::Ordering;
            match n.cmp(&b) {
                Ordering::Greater => violations.push(Violation::RatchetUp {
                    file: file.clone(),
                    which,
                    baseline: b,
                    current: n,
                }),
                Ordering::Less => violations.push(Violation::RatchetStale {
                    file: file.clone(),
                    which,
                    baseline: b,
                    current: n,
                }),
                Ordering::Equal => {}
            }
        }
    }
    violations
}

/// Every `.rs` file under `crates/*/src` and `src/`, sorted.
fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_roots: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_roots.sort();
        for crate_root in crate_roots {
            let src = crate_root.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut out)?;
            }
        }
    }
    let src = root.join("src");
    if src.is_dir() {
        walk_rs(&src, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(path: &str, src: &str) -> FileModel {
        FileModel::parse(path, src)
    }

    #[test]
    fn gate_is_exact_match_in_both_directions() {
        let report = analyze_models(vec![model(
            "crates/x/src/a.rs",
            "fn f(&self) { let g = self.state.read(); self.backend.fetch_chunk(id); }",
        )]);
        assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);

        // Empty baseline: the finding is NEW.
        let empty = Baseline::default();
        let violations = gate(&report, &empty);
        assert!(matches!(violations.as_slice(), [Violation::New(_)]));

        // Baseline written from the report: clean.
        let written = report.as_baseline();
        assert!(gate(&report, &written).is_empty());

        // Finding fixed but baseline kept: stale waiver trips the gate.
        let clean = analyze_models(vec![model("crates/x/src/a.rs", "fn f() {}")]);
        let violations = gate(&clean, &written);
        assert!(matches!(violations.as_slice(), [Violation::StaleWaiver(_)]));
    }

    #[test]
    fn ratchet_trips_in_both_directions() {
        let two = analyze_models(vec![model(
            "crates/x/src/a.rs",
            "fn f() { a().unwrap(); b().unwrap(); }",
        )]);
        let one = analyze_models(vec![model("crates/x/src/a.rs", "fn f() { a().unwrap(); }")]);
        let base = one.as_baseline();
        assert!(gate(&one, &base).is_empty());
        assert!(matches!(
            gate(&two, &base).as_slice(),
            [Violation::RatchetUp { .. }]
        ));
        let base_two = two.as_baseline();
        assert!(matches!(
            gate(&one, &base_two).as_slice(),
            [Violation::RatchetStale { .. }]
        ));
    }

    #[test]
    fn test_code_is_exempt_from_the_ratchet() {
        let report = analyze_models(vec![model(
            "crates/x/src/a.rs",
            "#[cfg(test)]\nmod tests {\n fn f() { a().unwrap(); }\n}\n",
        )]);
        assert!(report.ratchet.is_empty());
    }
}
