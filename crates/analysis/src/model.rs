//! The per-file source model the passes consume: the token stream plus
//! extracted functions, struct definitions, `#[cfg(test)]` regions and
//! `agar-lint: allow(...)` directives — and the guard/scope scanner
//! that both lock passes share.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// One function item found in a file.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Token index range of the body, *excluding* the outer braces.
    pub body: Range<usize>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// True when the body lies inside a `#[cfg(test)]`/`#[test]` region.
    pub is_test: bool,
    /// True for `unsafe fn`.
    pub is_unsafe: bool,
}

/// One field of a struct definition.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    /// The field's type, rendered as the joined token text.
    pub ty: String,
    pub line: u32,
}

/// One struct definition with named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<Field>,
    pub line: u32,
    pub is_test: bool,
}

/// A parsed source file, ready for the passes.
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub functions: Vec<Function>,
    pub structs: Vec<StructDef>,
    /// Token index ranges that belong to test-only code.
    pub test_regions: Vec<Range<usize>>,
    /// Pass ids allowed for the whole file.
    pub file_allows: BTreeSet<String>,
    /// Pass id → lines carrying a line-scoped allow directive.
    pub line_allows: BTreeMap<String, BTreeSet<u32>>,
}

impl FileModel {
    /// Lexes and models `source` as `path`.
    pub fn parse(path: &str, source: &str) -> FileModel {
        let Lexed { tokens, comments } = lex(source);
        let test_regions = find_test_regions(&tokens);
        let functions = find_functions(&tokens, &test_regions);
        let structs = find_structs(&tokens, &test_regions);
        let first_code_line = tokens.first().map(|t| t.line).unwrap_or(u32::MAX);
        let (file_allows, line_allows) = find_allows(&comments, first_code_line);
        FileModel {
            path: path.to_string(),
            tokens,
            comments,
            functions,
            structs,
            test_regions,
            file_allows,
            line_allows,
        }
    }

    /// True when token index `i` lies inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&i))
    }

    /// True when a finding from `pass` at `line` is waived by an
    /// allow directive (file-level, same-line, or the line above).
    pub fn allowed(&self, pass: &str, line: u32) -> bool {
        if self.file_allows.contains(pass) {
            return true;
        }
        self.line_allows
            .get(pass)
            .is_some_and(|lines| lines.contains(&line) || lines.contains(&line.saturating_sub(1)))
    }

    /// True when any comment mentioning `needle` ends within `window`
    /// lines above `line` (or on `line` itself).
    pub fn comment_near(&self, needle: &str, line: u32, window: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.text.contains(needle) && c.end_line <= line && c.end_line + window >= line)
    }
}

/// Finds `#[cfg(test)]` / `#[test]` / `#[cfg(all(test, …))]`-guarded
/// items and returns the token ranges of their bodies.
fn find_test_regions(tokens: &[Token]) -> Vec<Range<usize>> {
    let mut regions: Vec<Range<usize>> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Collect the attribute tokens up to the matching `]`.
            let attr_start = i + 2;
            let mut depth = 1usize;
            let mut j = attr_start;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            let attr = &tokens[attr_start..j.saturating_sub(1)];
            if is_test_attr(attr) {
                // The guarded item's body is the next top-level brace
                // block; skip over parenthesised and bracketed groups
                // (more attributes, parameter lists) on the way.
                if let Some(body) = next_brace_block(tokens, j) {
                    regions.push(body);
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// True for `test`, `cfg(test)`, `cfg(all(test, …))`, `cfg(any(test, …))`.
fn is_test_attr(attr: &[Token]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("test") && attr.len() == 1 => true,
        Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// The token range (exclusive of braces) of the next `{ … }` block at
/// or after `from`, skipping `( … )` and `[ … ]` groups.
fn next_brace_block(tokens: &[Token], from: usize) -> Option<Range<usize>> {
    let mut i = from;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            let start = i + 1;
            let mut depth = 1usize;
            let mut j = start;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct("{") {
                    depth += 1;
                } else if tokens[j].is_punct("}") {
                    depth -= 1;
                }
                j += 1;
            }
            return Some(start..j.saturating_sub(1));
        }
        if t.is_punct(";") {
            return None; // item without a body (e.g. `#[cfg(test)] use …;`)
        }
        if t.is_punct("(") || t.is_punct("[") {
            let open = t.text.clone();
            let close = if open == "(" { ")" } else { "]" };
            let mut depth = 1usize;
            i += 1;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct(&open) {
                    depth += 1;
                } else if tokens[i].is_punct(close) {
                    depth -= 1;
                }
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    None
}

fn find_functions(tokens: &[Token], test_regions: &[Range<usize>]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            let is_unsafe = i > 0 && tokens[i - 1].is_ident("unsafe");
            // Find the parameter list, then the body `{` (or `;` for
            // a bodiless trait method / extern decl).
            let mut j = i + 2;
            // Skip generics `<…>` between name and `(`.
            if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
                let mut depth = 1usize;
                j += 1;
                while j < tokens.len() && depth > 0 {
                    if tokens[j].is_punct("<") {
                        depth += 1;
                    } else if tokens[j].is_punct(">") {
                        depth -= 1;
                    }
                    j += 1;
                }
            }
            if let Some(body) = next_brace_block(tokens, j) {
                let in_test = test_regions.iter().any(|r| r.contains(&body.start));
                out.push(Function {
                    name,
                    body: body.clone(),
                    line,
                    is_test: in_test,
                    is_unsafe,
                });
                // Continue scanning *inside* the body too (nested fns
                // are found because the scan is linear).
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn find_structs(tokens: &[Token], test_regions: &[Range<usize>]) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("struct") && tokens.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident)
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            let mut j = i + 2;
            // Skip generics.
            if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
                let mut depth = 1usize;
                j += 1;
                while j < tokens.len() && depth > 0 {
                    if tokens[j].is_punct("<") {
                        depth += 1;
                    } else if tokens[j].is_punct(">") {
                        depth -= 1;
                    }
                    j += 1;
                }
            }
            // Only braced structs have named fields; tuple structs and
            // unit structs are skipped (`(` or `;` next).
            if tokens.get(j).is_some_and(|t| t.is_punct("{")) {
                let body = next_brace_block(tokens, j).unwrap_or(j..j);
                let fields = parse_fields(&tokens[body.clone()]);
                let is_test = test_regions.iter().any(|r| r.contains(&body.start));
                out.push(StructDef {
                    name,
                    fields,
                    line,
                    is_test,
                });
                i = body.end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses `name: Type, …` fields from a struct body token slice.
fn parse_fields(body: &[Token]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Skip attributes and visibility.
        if body[i].is_punct("#") {
            // `#[…]`
            let mut depth = 0usize;
            i += 1;
            if i < body.len() && body[i].is_punct("[") {
                depth = 1;
                i += 1;
                while i < body.len() && depth > 0 {
                    if body[i].is_punct("[") {
                        depth += 1;
                    } else if body[i].is_punct("]") {
                        depth -= 1;
                    }
                    i += 1;
                }
            }
            let _ = depth;
            continue;
        }
        if body[i].is_ident("pub") {
            i += 1;
            if i < body.len() && body[i].is_punct("(") {
                let mut depth = 1usize;
                i += 1;
                while i < body.len() && depth > 0 {
                    if body[i].is_punct("(") {
                        depth += 1;
                    } else if body[i].is_punct(")") {
                        depth -= 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        if body[i].kind == TokKind::Ident && body.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            let name = body[i].text.clone();
            let line = body[i].line;
            let mut j = i + 2;
            let mut ty = String::new();
            let mut angle = 0i32;
            let mut paren = 0i32;
            while j < body.len() {
                let t = &body[j];
                if t.is_punct(",") && angle <= 0 && paren == 0 {
                    break;
                }
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    _ => {}
                }
                if !ty.is_empty() && t.kind == TokKind::Ident {
                    ty.push(' ');
                }
                ty.push_str(&t.text);
                j += 1;
            }
            fields.push(Field { name, ty, line });
            i = j + 1;
            continue;
        }
        i += 1;
    }
    fields
}

/// Extracts `agar-lint: allow(pass-a, pass-b)` directives. A
/// directive in the file header (any comment ending before the first
/// code token, e.g. the `//!` docs) applies file-wide; elsewhere it
/// applies to its own line and the next.
fn find_allows(
    comments: &[Comment],
    first_code_line: u32,
) -> (BTreeSet<String>, BTreeMap<String, BTreeSet<u32>>) {
    let mut file_allows = BTreeSet::new();
    let mut line_allows: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    for c in comments {
        let Some(pos) = c.text.find("agar-lint: allow(") else {
            continue;
        };
        let rest = &c.text[pos + "agar-lint: allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        for pass in rest[..end].split(',') {
            let pass = pass.trim().to_string();
            if pass.is_empty() {
                continue;
            }
            if c.end_line < first_code_line {
                file_allows.insert(pass);
            } else {
                line_allows.entry(pass).or_default().insert(c.end_line);
            }
        }
    }
    (file_allows, line_allows)
}

// ---------------------------------------------------------------------------
// Guard/scope scanning (shared by the two lock passes)
// ---------------------------------------------------------------------------

/// How a guard came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// `let g = x.lock();` — lives until end of scope or `drop(g)`.
    Named,
    /// `x.lock().foo()` — lives until the end of the statement.
    Temp,
}

/// A live lock guard during a [`scan_function`] walk.
#[derive(Debug, Clone)]
pub struct Guard {
    /// The `let` binding name (empty for temporaries).
    pub name: String,
    /// The receiver expression, e.g. `self.inner` or `slot.held`.
    pub receiver: String,
    /// The acquiring method: `lock`, `read` or `write`.
    pub method: String,
    /// True when the receiver was indexed (`self.shards[i].lock()`),
    /// i.e. one of many same-named locks.
    pub indexed: bool,
    pub kind: GuardKind,
    /// Brace depth at acquisition; the guard dies when the scope
    /// unwinds past it.
    pub depth: usize,
    pub line: u32,
}

/// One event from walking a function body with guard tracking.
#[derive(Debug)]
pub enum Event<'a> {
    /// A guard was acquired; `live` includes the new guard (last).
    Acquire { guard: Guard, live: &'a [Guard] },
    /// A call `name(…)` or `.name(…)` was made while `live` guards
    /// were held (possibly none).
    Call {
        name: String,
        line: u32,
        /// True when the call was written as a method (`.name(…)`).
        method: bool,
        /// True when the argument list is non-empty.
        has_args: bool,
        live: &'a [Guard],
    },
}

/// Walks a function body, tracking lock guards, and invokes `visit`
/// for every acquisition and call. This is the single shared
/// interpretation of "which guards are live here" used by both lock
/// passes, so their findings can never disagree about scope.
pub fn scan_function(model: &FileModel, f: &Function, visit: &mut dyn FnMut(Event<'_>)) {
    let tokens = &model.tokens[f.body.clone()];
    let mut live: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // The name bound by the `let` whose initializer we are inside, if
    // any, together with the token index just past its `=` sign. Only
    // an acquisition whose receiver chain *starts* the initializer
    // binds the guard to the name — `let c = Arc::clone(&x.read());`
    // binds an `Arc`, and the guard is a temporary.
    let mut pending_let: Option<(String, usize)> = None;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                i += 1;
                continue;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.depth <= depth);
                pending_let = None;
                i += 1;
                continue;
            }
            ";" => {
                live.retain(|g| g.kind != GuardKind::Temp || g.depth != depth);
                pending_let = None;
                i += 1;
                continue;
            }
            "let" if t.kind == TokKind::Ident => {
                // `let [mut] NAME [: Type] =` — only simple bindings
                // can bind a guard; destructuring patterns never do in
                // this codebase.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name_tok) = tokens.get(j) {
                    // Lowercase start only: `if let Some(x) = …` is a
                    // destructuring pattern, not a binding of a guard.
                    if name_tok.kind == TokKind::Ident
                        && name_tok
                            .text
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_lowercase() || c == '_')
                    {
                        // Find the `=` of the initializer (skipping a
                        // type ascription), bounded by the statement.
                        let name = name_tok.text.clone();
                        let mut k = j + 1;
                        while k < tokens.len()
                            && !tokens[k].is_punct("=")
                            && !tokens[k].is_punct(";")
                            && !tokens[k].is_punct("{")
                        {
                            k += 1;
                        }
                        if tokens.get(k).is_some_and(|t| t.is_punct("=")) {
                            pending_let = Some((name, k + 1));
                        }
                    }
                }
                i += 1;
                continue;
            }
            _ => {}
        }

        // A call: `.name(` or bare `name(`.
        let is_call = t.kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !t.is_ident("fn");
        if is_call {
            let name = t.text.clone();
            let preceded_by_dot = i > 0 && tokens[i - 1].is_punct(".");
            let zero_arg = tokens.get(i + 2).is_some_and(|n| n.is_punct(")"));

            // Guard acquisition: `.lock()`, `.read()`, `.write()` with
            // no arguments.
            if preceded_by_dot && zero_arg && matches!(name.as_str(), "lock" | "read" | "write") {
                let (receiver, indexed, recv_start) = receiver_of(tokens, i - 1);
                // Look ahead past the argument list: a chain of only
                // `.unwrap()` / `.expect(…)` keeps guard-ness (std
                // Mutex); any other trailing method call makes this a
                // temporary whose guard dies at the statement end.
                let mut k = i + 3;
                let mut only_poison_adapters = true;
                while tokens.get(k).is_some_and(|t| t.is_punct(".")) {
                    let m = tokens.get(k + 1);
                    let Some(m) = m else { break };
                    if m.kind != TokKind::Ident
                        || !tokens.get(k + 2).is_some_and(|t| t.is_punct("("))
                    {
                        break;
                    }
                    if !matches!(m.text.as_str(), "unwrap" | "expect") {
                        only_poison_adapters = false;
                        break;
                    }
                    // Skip the adapter's argument list.
                    let mut d = 1usize;
                    k += 3;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct("(") {
                            d += 1;
                        } else if tokens[k].is_punct(")") {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                // The let binds the guard only when the receiver chain
                // starts the initializer (modulo `&`/`*`/parens) and
                // nothing but poison adapters trails the acquisition.
                let direct_init = pending_let.as_ref().is_some_and(|(_, init_start)| {
                    *init_start <= recv_start
                        && tokens[*init_start..recv_start]
                            .iter()
                            .all(|t| t.is_punct("&") || t.is_punct("*") || t.is_punct("("))
                });
                let named = direct_init && only_poison_adapters;
                let guard = Guard {
                    name: if named {
                        pending_let
                            .as_ref()
                            .map(|(n, _)| n.clone())
                            .unwrap_or_default()
                    } else {
                        String::new()
                    },
                    receiver,
                    method: name.clone(),
                    indexed,
                    kind: if named {
                        GuardKind::Named
                    } else {
                        GuardKind::Temp
                    },
                    depth,
                    line: t.line,
                };
                live.push(guard.clone());
                visit(Event::Acquire { guard, live: &live });
                i += 1;
                continue;
            }

            // `drop(g)` / `mem::drop(g)` releases a named guard.
            if name == "drop" && !preceded_by_dot {
                if let Some(arg) = tokens.get(i + 2) {
                    if arg.kind == TokKind::Ident
                        && tokens.get(i + 3).is_some_and(|t| t.is_punct(")"))
                    {
                        let victim = &arg.text;
                        if let Some(pos) = live.iter().rposition(|g| &g.name == victim) {
                            live.remove(pos);
                        }
                    }
                }
            }

            visit(Event::Call {
                name,
                line: t.line,
                method: preceded_by_dot,
                has_args: !zero_arg,
                live: &live,
            });
        }
        i += 1;
    }
}

/// Walks backwards from the `.` before an acquisition to render the
/// receiver expression (`self.inner`, `slot.held`, …) and the token
/// index where it starts. An index group `[…]` is skipped and
/// reported via the `indexed` flag.
fn receiver_of(tokens: &[Token], dot: usize) -> (String, bool, usize) {
    let mut parts: Vec<String> = Vec::new();
    let mut indexed = false;
    let mut start = dot;
    let mut i = dot; // points at the `.`
    loop {
        if i == 0 {
            break;
        }
        i -= 1;
        let t = &tokens[i];
        if t.is_punct("]") {
            // Skip the index group.
            indexed = true;
            let mut depth = 1usize;
            while i > 0 && depth > 0 {
                i -= 1;
                if tokens[i].is_punct("]") {
                    depth += 1;
                } else if tokens[i].is_punct("[") {
                    depth -= 1;
                }
            }
            continue;
        }
        if t.is_punct(")") {
            // A call in the receiver chain (`self.inner().lock()`):
            // skip the arguments and keep collecting.
            let mut depth = 1usize;
            while i > 0 && depth > 0 {
                i -= 1;
                if tokens[i].is_punct(")") {
                    depth += 1;
                } else if tokens[i].is_punct("(") {
                    depth -= 1;
                }
            }
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                parts.push(t.text.clone());
                start = i;
            }
            TokKind::Punct if t.text == "." || t.text == "::" => continue,
            _ => break,
        }
        // After an identifier, only continue through `.`/`::`.
        if i == 0 {
            break;
        }
        let prev = &tokens[i - 1];
        if !(prev.is_punct(".") || prev.is_punct("::")) {
            break;
        }
    }
    parts.reverse();
    (parts.join("."), indexed, start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_and_test_regions() {
        let src = r#"
            fn live() { body(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn in_test() { body(); }
            }
        "#;
        let m = FileModel::parse("x.rs", src);
        let names: Vec<(&str, bool)> = m
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f.is_test))
            .collect();
        assert!(names.contains(&("live", false)));
        assert!(names.contains(&("in_test", true)));
    }

    #[test]
    fn struct_fields_with_generics() {
        let src = "pub struct S<T> { pub a: Mutex<HashMap<K, V>>, b: Counter, }";
        let m = FileModel::parse("x.rs", src);
        assert_eq!(m.structs.len(), 1);
        let s = &m.structs[0];
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "a");
        assert!(s.fields[0].ty.contains("Mutex"));
        assert_eq!(s.fields[1].ty, "Counter");
    }

    #[test]
    fn guard_scopes_and_drop() {
        let src = r#"
            fn f(&self) {
                let g = self.inner.lock();
                before();
                drop(g);
                after();
                {
                    let h = self.other.read();
                    nested();
                }
                outside();
            }
        "#;
        let m = FileModel::parse("x.rs", src);
        let f = &m.functions[0];
        let mut at: Vec<(String, usize)> = Vec::new();
        scan_function(&m, f, &mut |ev| {
            if let Event::Call { name, live, .. } = ev {
                at.push((name, live.len()));
            }
        });
        let lookup = |n: &str| at.iter().find(|(name, _)| name == n).map(|(_, l)| *l);
        assert_eq!(lookup("before"), Some(1));
        assert_eq!(lookup("after"), Some(0));
        assert_eq!(lookup("nested"), Some(1));
        assert_eq!(lookup("outside"), Some(0));
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let src = r#"
            fn f(&self) {
                self.map.lock().insert(k, v);
                later();
            }
        "#;
        let m = FileModel::parse("x.rs", src);
        let mut at: Vec<(String, usize)> = Vec::new();
        scan_function(&m, &m.functions[0], &mut |ev| {
            if let Event::Call { name, live, .. } = ev {
                at.push((name, live.len()));
            }
        });
        let lookup = |n: &str| at.iter().find(|(name, _)| name == n).map(|(_, l)| *l);
        assert_eq!(lookup("insert"), Some(1));
        assert_eq!(lookup("later"), Some(0));
    }

    #[test]
    fn std_mutex_unwrap_still_binds_a_named_guard() {
        let src = r#"
            fn f(&self) {
                let inner = self.inner.lock().unwrap();
                uses(inner);
            }
        "#;
        let m = FileModel::parse("x.rs", src);
        let mut named = 0;
        scan_function(&m, &m.functions[0], &mut |ev| {
            if let Event::Acquire { guard, .. } = ev {
                if guard.kind == GuardKind::Named {
                    named += 1;
                    assert_eq!(guard.name, "inner");
                    assert_eq!(guard.receiver, "self.inner");
                }
            }
        });
        assert_eq!(named, 1);
    }

    #[test]
    fn indexed_receivers_are_flagged() {
        let src = "fn f(&self) { let s = self.shards[i % n].lock(); s.get(k); }";
        let m = FileModel::parse("x.rs", src);
        let mut seen = false;
        scan_function(&m, &m.functions[0], &mut |ev| {
            if let Event::Acquire { guard, .. } = ev {
                assert!(guard.indexed);
                assert_eq!(guard.receiver, "self.shards");
                seen = true;
            }
        });
        assert!(seen);
    }

    #[test]
    fn allow_directives() {
        let src = "//! Header docs.\n//! agar-lint: allow(determinism)\nfn f() {\n    x(); // agar-lint: allow(lock-across-blocking)\n}\n";
        let m = FileModel::parse("x.rs", src);
        assert!(m.allowed("determinism", 99));
        assert!(m.allowed("lock-across-blocking", 4));
        assert!(m.allowed("lock-across-blocking", 5));
        assert!(!m.allowed("lock-across-blocking", 3));
        assert!(!m.allowed("lock-order", 4));
    }
}
