//! Pass 3: **determinism** — sim-clock crates must not read the wall
//! clock, draw from an OS-seeded RNG, or let unordered `HashMap`/
//! `HashSet` iteration feed order-carrying output.
//!
//! Every experiment and every race test in this workspace is
//! reproducible because latencies come from the simulated clock and
//! randomness from explicit seeds (`tests/determinism.rs` pins
//! byte-identical runs). One stray `Instant::now()` silently breaks
//! that without failing any test — which is exactly the kind of
//! regression a grep-shaped pass catches and review does not.
//!
//! The wall-clock bench harness (`crates/bench`) is exempt by
//! configuration: it *measures* real time by design. Anything else
//! opts out per file or per line with
//! `// agar-lint: allow(determinism)`.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::passes::{Pass, Workspace};
use std::collections::BTreeSet;

pub const PASS_ID: &str = "determinism";

/// Path prefixes exempt from this pass (the wall-clock harness and the
/// analyzer itself, which runs on the host, not in the simulation).
const EXEMPT_PREFIXES: &[&str] = &["crates/bench/", "crates/analysis/"];

/// Method names whose result order carries into output.
const ORDER_SINKS: &[&str] = &[
    "push",
    "push_back",
    "push_str",
    "extend",
    "write",
    "writeln",
    "print",
    "println",
    "format",
    "send",
    "collect",
];

/// Names that make an iteration order-insensitive (reductions) or
/// re-ordered (sorts, ordered collections).
const ORDER_NEUTRALIZERS: &[&str] = &[
    "sum",
    "count",
    "fold",
    "all",
    "any",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
];

pub struct Determinism;

impl Pass for Determinism {
    fn id(&self) -> &'static str {
        PASS_ID
    }

    fn description(&self) -> &'static str {
        "no wall clock, OS-seeded RNG, or order-carrying HashMap iteration in sim-clock crates"
    }

    fn check(&self, workspace: &Workspace, out: &mut Vec<Finding>) {
        for file in &workspace.files {
            if EXEMPT_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
                continue;
            }
            check_wall_clock_and_rng(file, out);
            check_hash_iteration(file, out);
        }
    }
}

fn check_wall_clock_and_rng(file: &FileModel, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if file.in_test(i) {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged: Option<(String, &str)> = match t.text.as_str() {
            "Instant" | "SystemTime" => {
                if tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && tokens.get(i + 2).is_some_and(|n| n.is_ident("now"))
                {
                    Some((
                        format!("{}::now()", t.text),
                        "wall-clock read; use the simulated clock (SimTime / LatencyModel)",
                    ))
                } else {
                    None
                }
            }
            "thread_rng" | "from_entropy" | "random" => {
                // `random` only as `rand::random`.
                let qualified = t.text != "random"
                    || (i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].is_ident("rand"));
                if qualified && tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                    Some((
                        format!("{}()", t.text),
                        "OS-seeded RNG; derive from an explicit seed instead",
                    ))
                } else {
                    None
                }
            }
            _ => None,
        };
        let Some((what, why)) = flagged else { continue };
        if file.allowed(PASS_ID, t.line) {
            continue;
        }
        out.push(Finding {
            pass: PASS_ID,
            file: file.path.clone(),
            line: t.line,
            message: format!("`{what}` in a sim-clock crate — {why}"),
            key: format!("{what} at occurrence"),
        });
    }
}

/// Flags `for … in &map` / `map.iter()…` chains over `HashMap`/
/// `HashSet`-typed locals or fields when the surrounding statement
/// contains an order sink (push/collect/write/…) and no neutralizer
/// (sort/reduction/ordered collection).
fn check_hash_iteration(file: &FileModel, out: &mut Vec<Finding>) {
    let hashy = hashy_names(file);
    if hashy.is_empty() {
        return;
    }
    let tokens = &file.tokens;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        let is_iter_method = t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "iter" | "iter_mut" | "keys" | "values" | "values_mut" | "into_iter" | "drain"
            )
            && i >= 2
            && tokens[i - 1].is_punct(".")
            && tokens[i - 2].kind == TokKind::Ident
            && hashy.contains(&tokens[i - 2].text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
        if !is_iter_method || file.in_test(i) {
            i += 1;
            continue;
        }
        let receiver = tokens[i - 2].text.clone();
        // Examine the enclosing statement: back to the previous `;`
        // or `{`, forward to the matching end. A `for` statement
        // extends through its whole body.
        let start = statement_start(tokens, i);
        let end = statement_end(tokens, i, start);
        let window = &tokens[start..end.min(tokens.len())];
        let names: Vec<&str> = window
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let has_sink = names.iter().any(|n| ORDER_SINKS.contains(n));
        let neutralized = names.iter().any(|n| ORDER_NEUTRALIZERS.contains(n))
            || sorted_in_next_statement(tokens, start, end);
        if has_sink && !neutralized && !file.allowed(PASS_ID, t.line) {
            out.push(Finding {
                pass: PASS_ID,
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "iteration over unordered `{receiver}` feeds order-carrying output — \
                     sort first, or iterate a BTree collection"
                ),
                key: format!("unordered iteration of {receiver}"),
            });
        }
        i += 1;
    }
}

/// Local and field names whose type is `HashMap`/`HashSet` in this
/// file: struct fields, `let x: HashMap<…>` ascriptions, and
/// `let x = HashMap::new()/with_capacity(…)` initializers.
fn hashy_names(file: &FileModel) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for s in &file.structs {
        for field in &s.fields {
            if field.ty.contains("HashMap") || field.ty.contains("HashSet") {
                names.insert(field.name.clone());
            }
        }
    }
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = tokens.get(j) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Look ahead to the end of the statement for a HashMap/HashSet
        // constructor or ascription.
        let mut k = j + 1;
        let mut seen_hash = false;
        while k < tokens.len() && !tokens[k].is_punct(";") {
            if tokens[k].is_ident("HashMap") || tokens[k].is_ident("HashSet") {
                seen_hash = true;
            }
            k += 1;
        }
        if seen_hash {
            names.insert(name_tok.text.clone());
        }
    }
    names
}

/// Recognises the collect-then-sort idiom: a `let [mut] v = …` whose
/// *next* statement is `v.sort…()`. The collecting statement itself has
/// no neutralizer, but the order never escapes unsorted.
fn sorted_in_next_statement(tokens: &[crate::lexer::Token], start: usize, end: usize) -> bool {
    if !tokens.get(start).is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    let mut j = start + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let Some(binding) = tokens.get(j) else {
        return false;
    };
    if binding.kind != TokKind::Ident {
        return false;
    }
    tokens.get(end).is_some_and(|t| t.text == binding.text)
        && tokens.get(end + 1).is_some_and(|t| t.is_punct("."))
        && tokens
            .get(end + 2)
            .is_some_and(|t| ORDER_NEUTRALIZERS.contains(&t.text.as_str()))
}

/// Index of the token starting the statement containing `i`.
fn statement_start(tokens: &[crate::lexer::Token], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        j -= 1;
    }
    // If this statement is the header of a `for` loop, extend the
    // window over the loop body by leaving `statement_end` to run
    // through the brace block.
    j
}

/// Index one past the end of the statement (or loop body) containing `i`.
fn statement_end(tokens: &[crate::lexer::Token], i: usize, start: usize) -> usize {
    let is_for = tokens[start..=i.min(tokens.len() - 1)]
        .iter()
        .any(|t| t.is_ident("for") || t.is_ident("while"));
    let mut j = i;
    if is_for {
        // Run to the loop's opening brace, then through the matching
        // close brace.
        while j < tokens.len() && !tokens[j].is_punct("{") {
            j += 1;
        }
        let mut depth = 0usize;
        while j < tokens.len() {
            if tokens[j].is_punct("{") {
                depth += 1;
            } else if tokens[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        return j;
    }
    // A `}` ends the window too: a trailing expression (e.g. an
    // accessor body `self.entries.keys()`) must not pull the next
    // item's tokens into its statement.
    while j < tokens.len() && !tokens[j].is_punct(";") && !tokens[j].is_punct("}") {
        j += 1;
    }
    j + 1
}
