//! Pass 1: **lock-across-blocking** — no backend fetch, RS
//! encode/decode, or disk I/O while any lock guard is live.
//!
//! This is the PR 2 / PR 4 invariant ("no backend fetch or RS decode
//! under any lock", "never hold `state.read()` across backend I/O")
//! turned from convention into a gate. The pass walks every function
//! with the shared guard scanner and flags any call whose name is in
//! the blocking set while at least one guard is live — including
//! temporary guards (`self.state.read().fetch(…)` is exactly the bug
//! the convention exists to prevent).

use crate::diag::Finding;
use crate::model::{Event, FileModel};
use crate::passes::{Pass, Workspace};

pub const PASS_ID: &str = "lock-across-blocking";

/// Call names that block on I/O or burn unbounded CPU: backend and
/// fetcher entry points, RS codec entry points, disk-store frame I/O
/// and raw file I/O.
const DEFAULT_BLOCKING: &[&str] = &[
    // Backend / fetcher entry points.
    "fetch",
    "fetch_chunk",
    "fetch_chunks",
    "fetch_object",
    "put_object",
    "delete_object",
    // RS codec entry points (decode under a lock stalls every reader).
    "encode",
    "encode_object",
    "reconstruct",
    "reconstruct_object",
    "reconstruct_object_report",
    "reconstruct_data",
    // DiskStore frame I/O and raw file I/O.
    "append_frame",
    "read_frame",
    "write_all",
    "read_exact",
    "sync_all",
    "sync_data",
    // Channel receive (unbounded block).
    "recv",
];

/// The pass, with a configurable blocking set (tests inject smaller
/// ones; the CLI uses the default).
pub struct LockAcrossBlocking {
    blocking: Vec<&'static str>,
}

impl Default for LockAcrossBlocking {
    fn default() -> Self {
        LockAcrossBlocking {
            blocking: DEFAULT_BLOCKING.to_vec(),
        }
    }
}

impl Pass for LockAcrossBlocking {
    fn id(&self) -> &'static str {
        PASS_ID
    }

    fn description(&self) -> &'static str {
        "no backend fetch, RS encode/decode or disk I/O while a lock guard is live"
    }

    fn check(&self, workspace: &Workspace, out: &mut Vec<Finding>) {
        for file in &workspace.files {
            self.check_file(file, out);
        }
    }
}

impl LockAcrossBlocking {
    fn check_file(&self, file: &FileModel, out: &mut Vec<Finding>) {
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            crate::model::scan_function(file, f, &mut |ev| {
                let Event::Call {
                    name, line, live, ..
                } = ev
                else {
                    return;
                };
                if live.is_empty() || !self.blocking.contains(&name.as_str()) {
                    return;
                }
                if file.allowed(PASS_ID, line) {
                    return;
                }
                let guard = live.last().expect("checked non-empty");
                out.push(Finding {
                    pass: PASS_ID,
                    file: file.path.clone(),
                    line,
                    message: format!(
                        "blocking call `{name}()` in `{}` while guard on `{}.{}()` \
                         (acquired line {}) is live — drop the guard before \
                         backend/codec/disk work",
                        f.name, guard.receiver, guard.method, guard.line
                    ),
                    key: format!("fn {} calls {name} under {}", f.name, guard.receiver),
                });
            });
        }
    }
}
