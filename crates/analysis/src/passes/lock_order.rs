//! Pass 2: **lock-order** — a global lock-acquisition ordering graph
//! with three finding kinds:
//!
//! 1. **cycle** — two locks acquired in both orders anywhere in the
//!    workspace (classic ABBA deadlock risk). Edges come from direct
//!    nesting (`a` held while `b.lock()` runs) and from calls made
//!    while holding a lock into functions that acquire locks
//!    themselves (resolved by name when the name is unique in the
//!    workspace; ambiguous names are skipped — under-approximate,
//!    never noisy).
//! 2. **reentrant** — the same (non-indexed) lock acquired while
//!    already held; `parking_lot` and `std` mutexes both deadlock.
//!    Same-named *indexed* locks (`self.shards[i]`) are exempt: the
//!    indices are statically unknowable and the sharded cache
//!    deliberately locks at most one shard at a time.
//! 3. **condvar-wait** — a `wait(guard)` that parks while a *second*
//!    guard stays held (the waker can never run), or a bare `.wait()`
//!    (barrier/flight) while any guard is held.

use crate::diag::Finding;
use crate::model::Event;
use crate::passes::{Pass, Workspace};
use std::collections::{BTreeMap, BTreeSet};

pub const PASS_ID: &str = "lock-order";

pub struct LockOrder;

/// A directed edge `from` → `to`: `to` was acquired while `from` held.
#[derive(Debug, Clone)]
struct EdgeSite {
    file: String,
    line: u32,
    via: String,
}

impl Pass for LockOrder {
    fn id(&self) -> &'static str {
        PASS_ID
    }

    fn description(&self) -> &'static str {
        "lock acquisition order must be acyclic; no reentrant locks; no condvar wait with a second guard held"
    }

    fn check(&self, workspace: &Workspace, out: &mut Vec<Finding>) {
        // Function name → (file index, function index), or None when
        // the name is ambiguous across the workspace.
        let mut by_name: BTreeMap<&str, Option<(usize, usize)>> = BTreeMap::new();
        for (fi, file) in workspace.files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                by_name
                    .entry(f.name.as_str())
                    .and_modify(|slot| *slot = None)
                    .or_insert(Some((fi, gi)));
            }
        }

        // Per function: locks acquired directly, and callees invoked.
        let mut acquired: BTreeMap<(usize, usize), BTreeSet<String>> = BTreeMap::new();
        let mut callees: BTreeMap<(usize, usize), BTreeSet<String>> = BTreeMap::new();
        // Direct nesting edges and call-sites-under-guard, collected in
        // one scan so both lock passes share guard-liveness semantics.
        let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
        let mut calls_under_guard: Vec<(String, String, EdgeSite)> = Vec::new(); // (held lock, callee, site)

        for (fi, file) in workspace.files.iter().enumerate() {
            let stem = file_stem(&file.path);
            for (gi, f) in file.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                crate::model::scan_function(file, f, &mut |ev| match ev {
                    Event::Acquire { guard, live } => {
                        let id = lock_id(stem, &guard.receiver);
                        acquired.entry((fi, gi)).or_default().insert(id.clone());
                        // `live` includes the new guard as its last element.
                        for held in &live[..live.len() - 1] {
                            let held_id = lock_id(stem, &held.receiver);
                            if held_id == id {
                                let both_indexed = guard.indexed && held.indexed;
                                if !both_indexed && !file.allowed(PASS_ID, guard.line) {
                                    out.push(Finding {
                                        pass: PASS_ID,
                                        file: file.path.clone(),
                                        line: guard.line,
                                        message: format!(
                                            "reentrant acquisition of `{}` in `{}` — \
                                             already held since line {}",
                                            held.receiver, f.name, held.line
                                        ),
                                        key: format!("fn {} reacquires {}", f.name, held.receiver),
                                    });
                                }
                                continue;
                            }
                            edges.entry((held_id, id.clone())).or_insert(EdgeSite {
                                file: file.path.clone(),
                                line: guard.line,
                                via: format!("`{}`", f.name),
                            });
                        }
                    }
                    Event::Call {
                        name,
                        line,
                        method,
                        has_args,
                        live,
                    } => {
                        if matches!(
                            name.as_str(),
                            "wait" | "wait_while" | "wait_timeout" | "wait_timeout_while"
                        ) && method
                        {
                            let threshold = if has_args { 2 } else { 1 };
                            if live.len() >= threshold && !file.allowed(PASS_ID, line) {
                                let held: Vec<&str> =
                                    live.iter().map(|g| g.receiver.as_str()).collect();
                                out.push(Finding {
                                    pass: PASS_ID,
                                    file: file.path.clone(),
                                    line,
                                    message: format!(
                                        "`{name}()` parks in `{}` while guards on [{}] are \
                                         live — a waiter that sleeps holding a second lock \
                                         can never be woken",
                                        f.name,
                                        held.join(", ")
                                    ),
                                    key: format!("fn {} waits holding {}", f.name, held.join("+")),
                                });
                            }
                        }
                        callees.entry((fi, gi)).or_default().insert(name.clone());
                        for held in live {
                            calls_under_guard.push((
                                lock_id(stem, &held.receiver),
                                name.clone(),
                                EdgeSite {
                                    file: file.path.clone(),
                                    line,
                                    via: format!("`{}` → `{name}`", f.name),
                                },
                            ));
                        }
                    }
                });
            }
        }

        // Transitive closure of "locks this function may acquire",
        // through uniquely-resolved callees.
        let mut closure: BTreeMap<(usize, usize), BTreeSet<String>> = acquired.clone();
        loop {
            let mut changed = false;
            let keys: Vec<(usize, usize)> = callees.keys().copied().collect();
            for key in keys {
                let mut gained: BTreeSet<String> = BTreeSet::new();
                for callee in callees.get(&key).into_iter().flatten() {
                    if let Some(Some(target)) = by_name.get(callee.as_str()) {
                        if let Some(locks) = closure.get(target) {
                            gained.extend(locks.iter().cloned());
                        }
                    }
                }
                let own = closure.entry(key).or_default();
                let before = own.len();
                own.extend(gained);
                if own.len() != before {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Cross-function edges: a call under guard to a function whose
        // closure acquires locks.
        for (held_id, callee, site) in calls_under_guard {
            let Some(Some(target)) = by_name.get(callee.as_str()) else {
                continue;
            };
            for lock in closure.get(target).into_iter().flatten() {
                if *lock == held_id {
                    continue; // cross-function reentrancy is too alias-prone to assert
                }
                edges
                    .entry((held_id.clone(), lock.clone()))
                    .or_insert_with(|| site.clone());
            }
        }

        // Cycle detection: for every edge a→b, a path b→…→a closes a
        // cycle. The graph is tiny (tens of nodes), so a DFS per edge
        // is plenty.
        let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            adjacency.entry(a.as_str()).or_default().push(b.as_str());
        }
        let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
        for ((a, b), site) in &edges {
            if !reaches(&adjacency, b, a) {
                continue;
            }
            // Canonical cycle key: the sorted set of participants.
            let mut participants: Vec<String> = vec![a.clone(), b.clone()];
            participants.sort();
            participants.dedup();
            if !reported.insert(participants.clone()) {
                continue;
            }
            let file = site.file.clone();
            if workspace
                .files
                .iter()
                .find(|f| f.path == file)
                .is_some_and(|f| f.allowed(PASS_ID, site.line))
            {
                continue;
            }
            out.push(Finding {
                pass: PASS_ID,
                file,
                line: site.line,
                message: format!(
                    "lock-order cycle: `{a}` → `{b}` here (via {}), but `{b}` → … → `{a}` \
                     elsewhere — two threads taking the two orders deadlock",
                    site.via
                ),
                key: format!("cycle {}", participants.join(" <-> ")),
            });
        }
    }
}

/// DFS reachability in the edge graph.
fn reaches(adjacency: &BTreeMap<&str, Vec<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        stack.extend(adjacency.get(node).into_iter().flatten());
    }
    false
}

/// Identity of a lock for ordering purposes: the defining file's stem
/// plus the receiver with any leading `self.` stripped, so `monitor`
/// in `node.rs` and `monitor` in another file are distinct locks.
fn lock_id(stem: &str, receiver: &str) -> String {
    let base = receiver.strip_prefix("self.").unwrap_or(receiver);
    let base = if base.is_empty() { "<expr>" } else { base };
    format!("{stem}:{base}")
}

fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|name| name.strip_suffix(".rs"))
        .unwrap_or(path)
}
