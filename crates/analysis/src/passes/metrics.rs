//! Pass 4: **metrics-discipline** — every `Counter`/`Gauge`/
//! `Histogram` field must be late-bound into the registry.
//!
//! PR 8's convention: a stat cell that never reaches a
//! `register_*` call is invisible to every scrape, so a counter that
//! looks wired (it increments!) silently exports nothing. This pass
//! machine-checks what PR 8 did by hand, complementing the dynamic
//! `ci/check_exposition.py` linter: for each struct field typed as an
//! obs handle, some `register*` function in the same file must
//! mention the field.

use crate::diag::Finding;
use crate::model::FileModel;
use crate::passes::{Pass, Workspace};

pub const PASS_ID: &str = "metrics-discipline";

/// The metrics library itself defines and plumbs the handle types;
/// requiring it to "register" its own internals is circular.
const EXEMPT_PREFIXES: &[&str] = &["crates/obs/src/"];

const HANDLE_TYPES: &[&str] = &["Counter", "Gauge", "Histogram"];

pub struct MetricsDiscipline;

impl Pass for MetricsDiscipline {
    fn id(&self) -> &'static str {
        PASS_ID
    }

    fn description(&self) -> &'static str {
        "every Counter/Gauge/Histogram field has a register_* binding in its file"
    }

    fn check(&self, workspace: &Workspace, out: &mut Vec<Finding>) {
        for file in &workspace.files {
            if EXEMPT_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
                continue;
            }
            check_file(file, out);
        }
    }
}

fn check_file(file: &FileModel, out: &mut Vec<Finding>) {
    // Idents appearing inside the body of any `register*` function.
    let mut registered: Vec<&str> = Vec::new();
    for f in &file.functions {
        if !f.name.starts_with("register") {
            continue;
        }
        for t in &file.tokens[f.body.clone()] {
            if t.kind == crate::lexer::TokKind::Ident {
                registered.push(&t.text);
            }
        }
    }
    for s in &file.structs {
        if s.is_test {
            continue;
        }
        for field in &s.fields {
            if !is_handle_type(&field.ty) {
                continue;
            }
            if registered.iter().any(|name| *name == field.name) {
                continue;
            }
            if file.allowed(PASS_ID, field.line) {
                continue;
            }
            out.push(Finding {
                pass: PASS_ID,
                file: file.path.clone(),
                line: field.line,
                message: format!(
                    "`{}.{}` is a `{}` but no `register*` function in this file binds it — \
                     the cell will never appear in a scrape",
                    s.name, field.name, field.ty
                ),
                key: format!("{}.{} unregistered", s.name, field.name),
            });
        }
    }
}

/// True when the rendered field type is exactly an obs handle (the
/// last path segment, so `obs :: Counter` and `Counter` both match,
/// while `AtomicCacheStats` or `Mutex<Counter>` do not).
fn is_handle_type(ty: &str) -> bool {
    let last = ty.rsplit("::").next().unwrap_or(ty).trim();
    HANDLE_TYPES.contains(&last)
}
