//! The pass registry. Each pass checks one workspace invariant and
//! reports [`Finding`]s; the driver in `lib.rs` runs every registered
//! pass over the parsed workspace.

use crate::diag::Finding;
use crate::model::FileModel;

pub mod determinism;
pub mod lock_blocking;
pub mod lock_order;
pub mod metrics;
pub mod unsafe_hygiene;

/// A parsed workspace: every `.rs` file under `crates/*/src` and
/// `src/`, in sorted path order.
pub struct Workspace {
    pub files: Vec<FileModel>,
}

/// One invariant checker.
pub trait Pass {
    /// Stable pass id, used in diagnostics, fingerprints and
    /// `agar-lint: allow(...)` directives.
    fn id(&self) -> &'static str;
    /// One-line description for `--help` and the README.
    fn description(&self) -> &'static str;
    /// Runs the pass over the whole workspace.
    fn check(&self, workspace: &Workspace, out: &mut Vec<Finding>);
}

/// All registered passes, in diagnostic order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(lock_blocking::LockAcrossBlocking::default()),
        Box::new(lock_order::LockOrder),
        Box::new(determinism::Determinism),
        Box::new(metrics::MetricsDiscipline),
        Box::new(unsafe_hygiene::UnsafeHygiene),
    ]
}
