//! Pass 5: **unsafe-hygiene** — two ratchets on footguns.
//!
//! 1. Every `unsafe` block, `unsafe fn` and `unsafe impl` must carry a
//!    `// SAFETY:` comment on the same line or within the three lines
//!    above it, stating the invariant that makes the code sound. This
//!    applies to test code too: the GF(2^8) kernels' test probes touch
//!    raw pointers just as unsafely as the kernels themselves.
//! 2. `unwrap()` / `expect()` in non-test code are counted per file
//!    and compared *exactly* against `ci/lint_baseline.json` — new
//!    ones fail the gate, and removing one without refreshing the
//!    baseline (`agar-lint --write-baseline`) also fails, so the count
//!    ratchets down deliberately and never silently drifts back up.
//!    (The counting lives in [`ratchet_counts`]; the comparison is the
//!    driver's job because it needs the baseline.)

use crate::baseline::RatchetCounts;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::passes::{Pass, Workspace};

pub const PASS_ID: &str = "unsafe-hygiene";

/// How many lines above an `unsafe` keyword a `SAFETY:` comment may
/// sit. Three covers rustfmt wrapping a long comment plus one
/// attribute line.
const SAFETY_WINDOW: u32 = 3;

pub struct UnsafeHygiene;

impl Pass for UnsafeHygiene {
    fn id(&self) -> &'static str {
        PASS_ID
    }

    fn description(&self) -> &'static str {
        "every unsafe block/fn carries a SAFETY: comment; unwrap/expect counts only ratchet down"
    }

    fn check(&self, workspace: &Workspace, out: &mut Vec<Finding>) {
        for file in &workspace.files {
            check_safety_comments(file, out);
        }
    }
}

fn check_safety_comments(file: &FileModel, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        // Classify the construct for the message; skip `unsafe` inside
        // an attribute or similar degenerate position.
        let next = tokens.get(i + 1);
        let construct = match next {
            Some(n) if n.is_punct("{") => "unsafe block",
            Some(n) if n.is_ident("fn") => "unsafe fn",
            Some(n) if n.is_ident("impl") => "unsafe impl",
            Some(n) if n.is_ident("extern") => "unsafe extern block",
            _ => continue,
        };
        if file.comment_near("SAFETY:", t.line, SAFETY_WINDOW) {
            continue;
        }
        if file.allowed(PASS_ID, t.line) {
            continue;
        }
        out.push(Finding {
            pass: PASS_ID,
            file: file.path.clone(),
            line: t.line,
            message: format!(
                "{construct} without a `// SAFETY:` comment — state the invariant that \
                 makes this sound (within {SAFETY_WINDOW} lines above)"
            ),
            key: format!("{construct} missing SAFETY"),
        });
    }
}

/// Counts `.unwrap()` / `.expect(` calls in non-test code. The driver
/// compares these against the committed baseline.
pub fn ratchet_counts(file: &FileModel) -> RatchetCounts {
    let tokens = &file.tokens;
    let mut counts = RatchetCounts::default();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_call = i >= 1
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
        if !is_call || file.in_test(i) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" => counts.unwrap += 1,
            "expect" => counts.expect += 1,
            _ => {}
        }
    }
    counts
}
