//! Fixture-driven pass tests plus the live-workspace gate.
//!
//! Each pass has a `firing.rs` fixture that must produce findings and a
//! `passing.rs` fixture that must stay silent; the final test runs the
//! analyzer over this repository itself and requires an exact match
//! against the committed `ci/lint_baseline.json` — the same check CI
//! runs, so `cargo test` catches drift before the pipeline does.

use agar_analysis::baseline::Baseline;
use agar_analysis::diag::Finding;
use agar_analysis::model::FileModel;
use agar_analysis::{analyze, analyze_models, gate};
use std::path::Path;

/// Parses a fixture under a virtual in-workspace path so no pass
/// exemption (bench, obs, the analyzer itself) applies to it.
fn fixture(dir: &str, name: &str) -> FileModel {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    FileModel::parse(&format!("crates/fixture/src/{dir}.rs"), &source)
}

fn findings_for(pass: &str, model: FileModel) -> Vec<Finding> {
    let mut findings = analyze_models(vec![model]).findings;
    findings.retain(|f| f.pass == pass);
    findings
}

/// Asserts the firing fixture produces exactly `expect` findings for
/// `pass` and the passing fixture produces none.
fn check_pass(pass: &str, dir: &str, expect: usize) {
    let firing = findings_for(pass, fixture(dir, "firing.rs"));
    assert_eq!(
        firing.len(),
        expect,
        "{pass}: firing fixture should produce {expect} findings, got {:#?}",
        firing
    );
    let passing = findings_for(pass, fixture(dir, "passing.rs"));
    assert!(
        passing.is_empty(),
        "{pass}: passing fixture should be silent, got {passing:#?}"
    );
}

#[test]
fn lock_blocking_fixtures() {
    check_pass("lock-across-blocking", "lock_blocking", 2);
}

#[test]
fn lock_order_fixtures() {
    // One deadlock cycle plus one condvar wait with a second guard.
    check_pass("lock-order", "lock_order", 2);
}

#[test]
fn determinism_fixtures() {
    // Instant::now, thread_rng, and one order-carrying iteration.
    check_pass("determinism", "determinism", 3);
}

#[test]
fn metrics_fixtures() {
    check_pass("metrics-discipline", "metrics", 1);
}

#[test]
fn unsafe_hygiene_fixtures() {
    // One bare unsafe block, one bare unsafe fn.
    check_pass("unsafe-hygiene", "unsafe_hygiene", 2);
}

#[test]
fn firing_fixtures_name_the_right_sites() {
    let lock = findings_for(
        "lock-across-blocking",
        fixture("lock_blocking", "firing.rs"),
    );
    assert!(lock.iter().any(|f| f.message.contains("fetch_chunk")));
    assert!(lock.iter().any(|f| f.message.contains("reconstruct_data")));

    let order = findings_for("lock-order", fixture("lock_order", "firing.rs"));
    assert!(order.iter().any(|f| f.key.starts_with("cycle ")));
    assert!(order.iter().any(|f| f.message.contains("wait")));

    let det = findings_for("determinism", fixture("determinism", "firing.rs"));
    assert!(det.iter().any(|f| f.message.contains("Instant::now")));
    assert!(det.iter().any(|f| f.message.contains("thread_rng")));
    assert!(det.iter().any(|f| f.message.contains("counts")));

    let metrics = findings_for("metrics-discipline", fixture("metrics", "firing.rs"));
    assert!(metrics.iter().any(|f| f.message.contains("misses")));
}

/// The analyzer over this repository must match the committed baseline
/// exactly: no new findings, no stale waivers, no ratchet drift.
#[test]
fn live_workspace_matches_committed_baseline_exactly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the workspace root");
    let report = analyze(root).expect("analyzing the live workspace");
    let baseline_path = root.join("ci/lint_baseline.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", baseline_path.display()));
    let baseline = Baseline::from_json(&text).expect("parsing ci/lint_baseline.json");
    let violations = gate(&report, &baseline);
    assert!(
        violations.is_empty(),
        "the live workspace deviates from ci/lint_baseline.json:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n\n")
    );
}
