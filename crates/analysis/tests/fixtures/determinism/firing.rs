//! Firing fixture: wall-clock reads, OS-seeded RNG, and unordered
//! iteration feeding order-carrying output in a sim-clock crate.

struct Tracker {
    counts: HashMap<ObjectId, u64>,
}

impl Tracker {
    fn sample(&mut self) -> Duration {
        let start = Instant::now();
        self.jitter = thread_rng().gen_range(0..10);
        start.elapsed()
    }

    fn dump(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (_, v) in self.counts.iter() {
            out.push(*v);
        }
        out
    }
}
