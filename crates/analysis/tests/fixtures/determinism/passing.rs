//! Passing fixture: seeded RNG, simulated clock, and every unordered
//! iteration is either reduced, sorted, or routed through a BTree
//! collection before its order can escape.

struct Tracker {
    counts: HashMap<ObjectId, u64>,
}

impl Tracker {
    fn sample(&mut self, clock: &SimClock, rng: &mut StdRng) -> Duration {
        self.jitter = rng.gen_range(0..10);
        clock.now()
    }

    /// A reduction is order-insensitive.
    fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The collect-then-sort idiom: order never escapes unsorted.
    fn dump(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.counts.values().copied().collect();
        out.sort_unstable();
        out
    }

    /// Collecting into an ordered set neutralises in one statement.
    fn ids(&self) -> BTreeSet<ObjectId> {
        self.counts.keys().copied().collect::<BTreeSet<ObjectId>>()
    }
}
