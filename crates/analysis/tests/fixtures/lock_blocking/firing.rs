//! Firing fixture: backend and disk work under live lock guards.

impl Node {
    /// Named guard held across a backend fetch.
    fn read_through(&self, id: ChunkId) -> Option<Chunk> {
        let state = self.state.lock();
        let chunk = self.backend.fetch_chunk(id);
        state.note(id);
        chunk
    }

    /// Temporary guard (dies at the semicolon) is fine, but this one
    /// wraps the blocking call itself inside the guard expression.
    fn decode_under_lock(&self) {
        let guard = self.table.write();
        self.codec.reconstruct_data(&mut self.shards);
        drop(guard);
    }
}
