//! Passing fixture: guards are dropped (or scoped out) before any
//! backend/codec/disk call.

impl Node {
    /// The guard's scope ends before the fetch.
    fn read_through(&self, id: ChunkId) -> Option<Chunk> {
        {
            let state = self.state.lock();
            state.note(id);
        }
        self.backend.fetch_chunk(id)
    }

    /// Explicit drop before the blocking call.
    fn decode_after_drop(&self) {
        let guard = self.table.write();
        let plan = guard.plan();
        drop(guard);
        self.codec.reconstruct_data(&mut self.shards);
        plan.apply();
    }

    /// A temp guard dies at its semicolon: the fetch is lock-free.
    fn peek_then_fetch(&self, id: ChunkId) -> Option<Chunk> {
        let hot = self.state.lock().contains(&id);
        if hot {
            return None;
        }
        self.backend.fetch_chunk(id)
    }
}
