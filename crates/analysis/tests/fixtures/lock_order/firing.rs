//! Firing fixture: two functions acquire the same pair of locks in
//! opposite orders (a deadlock cycle), and a condvar wait happens with
//! a second guard still live.

impl Coordinator {
    fn promote(&self) {
        let leases = self.leases.lock();
        let stats = self.stats.lock();
        stats.bump(leases.len());
    }

    fn demote(&self) {
        let stats = self.stats.lock();
        let leases = self.leases.lock();
        stats.bump(leases.len());
    }

    fn wait_holding_two(&self) {
        let stats = self.stats.lock();
        let guard = self.queue.lock();
        let guard = self.ready.wait(guard);
        stats.bump(guard.len());
    }
}
