//! Passing fixture: both functions take the pair in the same order,
//! and the condvar wait holds only the guard it atomically releases.

impl Coordinator {
    fn promote(&self) {
        let leases = self.leases.lock();
        let stats = self.stats.lock();
        stats.bump(leases.len());
    }

    fn demote(&self) {
        let leases = self.leases.lock();
        let stats = self.stats.lock();
        stats.drop_one(leases.len());
    }

    fn wait_alone(&self) {
        let guard = self.queue.lock();
        let guard = self.ready.wait(guard);
        guard.len();
    }
}
