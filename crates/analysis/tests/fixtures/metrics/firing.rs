//! Firing fixture: a metric cell field with no `register_*` binding —
//! it would tick forever without ever appearing in an exposition page.

pub struct ReadStats {
    pub hits: Counter,
    pub misses: Counter,
    pub depth: Gauge,
}

impl ReadStats {
    pub fn register_metrics(&self, registry: &Registry) {
        registry.bind("read_hits", &self.hits);
        registry.bind("read_depth", &self.depth);
        // `misses` is never bound: the pass must flag it.
    }
}
