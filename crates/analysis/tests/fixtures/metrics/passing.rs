//! Passing fixture: every Counter/Gauge/Histogram field appears in a
//! `register_*` function in the same file.

pub struct ReadStats {
    pub hits: Counter,
    pub misses: Counter,
    pub latency: Histogram,
}

impl ReadStats {
    pub fn register_metrics(&self, registry: &Registry) {
        registry.bind("read_hits", &self.hits);
        registry.bind("read_misses", &self.misses);
        registry.bind_histogram("read_latency", &self.latency);
    }
}
