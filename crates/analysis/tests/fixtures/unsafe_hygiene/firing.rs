//! Firing fixture: unsafe sites with no invariant comment at all.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}

#[target_feature(enable = "avx2")]
pub unsafe fn wide_xor(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}
