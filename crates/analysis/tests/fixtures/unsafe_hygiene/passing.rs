//! Passing fixture: every unsafe site states its invariant.

pub fn read_first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees at least one byte.
    unsafe { *bytes.as_ptr() }
}

// SAFETY: caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub unsafe fn wide_xor(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}
