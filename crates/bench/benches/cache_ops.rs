//! Cache and request-monitor hot-path costs — the paper's §VI claims
//! the monitor + manager add ~0.5 ms per request; our in-process
//! equivalents should be far below that.

use agar::RequestMonitor;
use agar_cache::{chunk_cache, CachedChunk, PolicyKind};
use agar_ec::{ChunkId, ObjectId};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cache_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache/insert_get_evict");
    let payload = Bytes::from(vec![0u8; 1_000]);
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Fifo,
        PolicyKind::Slru,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            // 100-entry cache under a rolling 1 000-key workload:
            // inserts evict constantly, gets mix hits and misses.
            let mut cache = chunk_cache(100 * 1_000, kind);
            let mut i = 0u64;
            b.iter(|| {
                let id = ChunkId::new(ObjectId::new(i % 1_000), (i % 12) as u8);
                cache.insert(id, CachedChunk::new(payload.clone(), 0));
                let probe = ChunkId::new(ObjectId::new((i / 2) % 1_000), (i % 12) as u8);
                black_box(cache.get(&probe).is_some());
                i += 1;
            })
        });
    }
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    group.bench_function("record_read", |b| {
        let mut monitor = RequestMonitor::new();
        let mut i = 0u64;
        b.iter(|| {
            monitor.record_read(ObjectId::new(i % 300));
            i += 1;
        })
    });
    group.bench_function("end_epoch_300_objects", |b| {
        b.iter_batched(
            || {
                let mut monitor = RequestMonitor::new();
                for i in 0..300u64 {
                    for _ in 0..(300 - i) / 10 + 1 {
                        monitor.record_read(ObjectId::new(i));
                    }
                }
                monitor
            },
            |mut monitor| {
                monitor.end_epoch();
                monitor
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_cache_policies, bench_monitor);
criterion_main!(benches);
