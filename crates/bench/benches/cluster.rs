//! Cluster-tier throughput (host execution time): `M` client threads
//! issuing routed reads against `K` ring-routed Agar nodes sharing one
//! fetch coordinator. Complements `concurrent_reads` (one node, many
//! threads) by scaling the node dimension; `experiments -- cluster`
//! prints the full M × K grid.

use agar_bench::{build_warm_cluster, run_cluster_threads, Deployment, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const OPS_PER_THREAD: usize = 200;
const HOT_OBJECTS: u64 = 8;

fn bench_cluster_reads(c: &mut Criterion) {
    let deployment = Deployment::build(Scale::tiny());
    let region = deployment.region("Frankfurt");
    let mut group = c.benchmark_group("cluster_reads");
    group.sample_size(10);
    for members in [1usize, 2, 4] {
        let router = build_warm_cluster(&deployment, region, members, 10.0, HOT_OBJECTS, 0xC105);
        group.throughput(Throughput::Elements((4 * OPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("4_threads_{members}_nodes")),
            &members,
            |b, _| {
                b.iter(|| black_box(run_cluster_threads(&router, 4, OPS_PER_THREAD, HOT_OBJECTS)))
            },
        );
    }
    group.finish();

    // Headline number: 4 threads across 1 vs 4 nodes.
    let one = build_warm_cluster(&deployment, region, 1, 10.0, HOT_OBJECTS, 0xC105);
    let four = build_warm_cluster(&deployment, region, 4, 10.0, HOT_OBJECTS, 0xC105);
    let a = run_cluster_threads(&one, 4, OPS_PER_THREAD, HOT_OBJECTS);
    let b = run_cluster_threads(&four, 4, OPS_PER_THREAD, HOT_OBJECTS);
    eprintln!(
        "cluster_reads: 4 threads x 1 node {:.0} ops/s, 4 threads x 4 nodes {:.0} ops/s ({:.2}x), {:.1}% cache hits",
        a.ops_per_sec,
        b.ops_per_sec,
        b.ops_per_sec / a.ops_per_sec,
        b.hit_fraction() * 100.0
    );
}

criterion_group!(benches, bench_cluster_reads);
criterion_main!(benches);
