//! Concurrent read throughput (host execution time): `M` OS-thread
//! clients hammering one shared Agar node on a cache-hit-heavy
//! workload. The pre-refactor node serialised the whole read path
//! behind one mutex, so added threads bought nothing; the sharded read
//! pipeline is expected to scale aggregate ops/s ≥ 2x from 1 to 4
//! threads (asserted by `tests/concurrent_reads.rs`; reported here).

use agar_bench::{build_warm_node, run_threads, throughput_scaling, Deployment, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const OPS_PER_THREAD: usize = 400;
const HOT_OBJECTS: u64 = 8;

fn bench_concurrent_reads(c: &mut Criterion) {
    let deployment = Deployment::build(Scale::tiny());
    let region = deployment.region("Frankfurt");
    let node = build_warm_node(&deployment, region, 10.0, HOT_OBJECTS, 0xBE4C);
    let mut group = c.benchmark_group("concurrent_reads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}_threads")),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(run_threads(&node, threads, OPS_PER_THREAD, HOT_OBJECTS)))
            },
        );
    }
    group.finish();

    // Headline number for the log: aggregate scaling 1 -> 4 threads.
    let runs = throughput_scaling(&deployment, region, &[1, 4], OPS_PER_THREAD);
    eprintln!(
        "concurrent_reads: 1 thread {:.0} ops/s, 4 threads {:.0} ops/s ({:.2}x), {:.1}% cache hits",
        runs[0].ops_per_sec,
        runs[1].ops_per_sec,
        runs[1].ops_per_sec / runs[0].ops_per_sec,
        runs[1].hit_fraction() * 100.0
    );
}

criterion_group!(benches, bench_concurrent_reads);
criterion_main!(benches);
