//! Coding-path throughput across (k, m), chunk sizes and erasure
//! patterns — the criterion twin of `experiments -- ec`.
//!
//! Covers the three decode regimes separately because they exercise
//! different machinery: systematic (no GF arithmetic at all), 1-erasure
//! (one decode-plan row) and m-erasure (the worst pattern the code
//! tolerates). Encode measures the single-buffer split + parity kernel.

use agar_ec::{CodingParams, ReedSolomon};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const CODES: [(usize, usize); 3] = [(4, 2), (6, 3), (10, 4)];
const CHUNK_SIZES: [usize; 2] = [64 * 1024, 1024 * 1024];

fn object(size: usize) -> Vec<u8> {
    (0..size).map(|i| (i % 251) as u8).collect()
}

fn label(k: usize, m: usize, chunk: usize) -> String {
    format!("rs{k}-{m}/{}k", chunk / 1024)
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ec_throughput/encode");
    for (k, m) in CODES {
        for chunk in CHUNK_SIZES {
            let rs = ReedSolomon::new(CodingParams::new(k, m).unwrap()).unwrap();
            let data = object(k * chunk);
            group.throughput(Throughput::Bytes(data.len() as u64));
            group.bench_function(BenchmarkId::from_parameter(label(k, m, chunk)), |b| {
                b.iter(|| rs.encode_object(black_box(&data)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    for (name, erase) in [
        ("systematic", 0usize),
        ("1-erasure", 1),
        ("m-erasure", usize::MAX),
    ] {
        let mut group = c.benchmark_group(format!("ec_throughput/decode/{name}"));
        for (k, m) in CODES {
            for chunk in CHUNK_SIZES {
                let rs = ReedSolomon::new(CodingParams::new(k, m).unwrap()).unwrap();
                let data = object(k * chunk);
                let mut shards: Vec<Option<Bytes>> = rs
                    .encode_object(&data)
                    .unwrap()
                    .into_iter()
                    .map(Some)
                    .collect();
                for slot in shards.iter_mut().take(erase.min(m)) {
                    *slot = None;
                }
                group.throughput(Throughput::Bytes(data.len() as u64));
                group.bench_function(BenchmarkId::from_parameter(label(k, m, chunk)), |b| {
                    b.iter(|| {
                        rs.reconstruct_object(black_box(&shards), data.len())
                            .unwrap()
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
