//! End-to-end read-path cost (host execution time, not simulated
//! latency): how fast the harness executes whole reads through Agar and
//! the baselines, at test scale.

use agar_bench::{run_once, Deployment, PolicySpec, RunConfig, Scale};
use agar_net::presets::FRANKFURT;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_run(c: &mut Criterion) {
    let deployment = Deployment::build(Scale::tiny());
    let mut group = c.benchmark_group("end_to_end/250_reads");
    group.sample_size(10);
    for policy in [
        PolicySpec::Backend,
        PolicySpec::Lru(5),
        PolicySpec::Lfu(7),
        PolicySpec::Agar,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &policy| {
                let mut config = RunConfig::paper_default(FRANKFURT, policy);
                config.workload.operations = 250;
                b.iter(|| black_box(run_once(&deployment, &config)).operations)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_run);
criterion_main!(benches);
