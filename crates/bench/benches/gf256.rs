//! Microbenchmarks for GF(2^8) arithmetic — the inner loop of every
//! encode and decode.

use agar_ec::gf256::{mul_add_slice, mul_slice, Gf256};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_scalar_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/scalar");
    group.bench_function("mul", |b| {
        b.iter(|| {
            let mut acc = Gf256::ONE;
            for v in 1..=255u8 {
                acc *= black_box(Gf256::new(v));
            }
            acc
        })
    });
    group.bench_function("inverse", |b| {
        b.iter(|| {
            let mut acc = Gf256::ZERO;
            for v in 1..=255u8 {
                acc += black_box(Gf256::new(v)).inverse();
            }
            acc
        })
    });
    group.finish();
}

fn bench_slice_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/slice");
    for size in [1_024usize, 111_112] {
        let src = vec![0xA5u8; size];
        let mut dst = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("mul_add_slice", size), &size, |b, _| {
            b.iter(|| mul_add_slice(black_box(&mut dst), black_box(&src), 29))
        });
        group.bench_with_input(BenchmarkId::new("mul_slice", size), &size, |b, _| {
            b.iter(|| mul_slice(black_box(&mut dst), black_box(&src), 29))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scalar_ops, bench_slice_kernels
}
criterion_main!(benches);
