//! Cache-manager algorithm runtime — the paper's §VI claims: ~5 ms per
//! reconfiguration, complexity O(C²) in the cache size (not the dataset
//! size) once early termination is enabled.

use agar::{generate_options, greedy, KnapsackSolver, ObjectOptions};
use agar_ec::{CodingParams, ObjectId};
use agar_net::RegionId;
use agar_store::ObjectManifest;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;

/// Builds the paper's 300-object option universe with Zipf-like values.
fn options(objects: u64) -> HashMap<ObjectId, ObjectOptions> {
    let latencies: Vec<Duration> = [80u64, 200, 600, 1400, 3400, 4600]
        .into_iter()
        .map(Duration::from_millis)
        .collect();
    let params = CodingParams::paper_default();
    (0..objects)
        .map(|i| {
            let object = ObjectId::new(i);
            let locations = (0..12).map(|c| RegionId::new(c % 6)).collect();
            let manifest = ObjectManifest::new(object, 1_000_000, 1, params, locations);
            let popularity = 1000.0 / (i + 1) as f64; // Zipf-ish
            (
                object,
                generate_options(&manifest, &latencies, Duration::from_millis(40), popularity),
            )
        })
        .collect()
}

fn bench_populate_vs_cache_size(c: &mut Criterion) {
    let all = options(300);
    let mut group = c.benchmark_group("knapsack/populate_by_cache_size");
    group.sample_size(10);
    for capacity in [45u32, 90, 180, 450] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &capacity| {
                let solver = KnapsackSolver::new();
                b.iter(|| solver.populate(black_box(&all), capacity))
            },
        );
    }
    group.finish();
}

fn bench_populate_vs_catalogue(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack/populate_by_catalogue");
    group.sample_size(10);
    for objects in [100u64, 300, 1000] {
        let all = options(objects);
        // §VI: with early termination, runtime depends on the cache
        // size, not the catalogue size.
        group.bench_with_input(
            BenchmarkId::new("early_termination", objects),
            &objects,
            |b, _| {
                let solver = KnapsackSolver::new()
                    .with_early_termination(5)
                    .with_passes(1);
                b.iter(|| solver.populate(black_box(&all), 90))
            },
        );
    }
    group.finish();
}

fn bench_greedy_and_generation(c: &mut Criterion) {
    let all = options(300);
    let mut group = c.benchmark_group("knapsack/alternatives");
    group.bench_function("greedy_300_objects", |b| {
        b.iter(|| greedy(black_box(&all), 90))
    });
    group.bench_function("option_generation_300_objects", |b| {
        let latencies: Vec<Duration> = [80u64, 200, 600, 1400, 3400, 4600]
            .into_iter()
            .map(Duration::from_millis)
            .collect();
        let params = CodingParams::paper_default();
        b.iter(|| {
            (0..300u64)
                .map(|i| {
                    let object = ObjectId::new(i);
                    let locations = (0..12).map(|c| RegionId::new(c % 6)).collect();
                    let manifest = ObjectManifest::new(object, 1_000_000, 1, params, locations);
                    generate_options(
                        &manifest,
                        black_box(&latencies),
                        Duration::from_millis(40),
                        1.0,
                    )
                })
                .count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_populate_vs_cache_size,
    bench_populate_vs_catalogue,
    bench_greedy_and_generation
);
criterion_main!(benches);
