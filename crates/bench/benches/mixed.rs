//! Mixed read/write cluster throughput (host execution time): `M`
//! client threads driving a `K`-node cluster at several write ratios
//! through the per-object-lease write path, with the stale-read
//! checker live. Complements `cluster` (read-only routed reads);
//! `experiments -- mixed` prints the full write-ratio table.

use agar_bench::{build_warm_cluster, run_mixed_cluster, Deployment, Scale};
use agar_workload::ReadWriteMix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const OPS_PER_THREAD: usize = 150;
const HOT_OBJECTS: u64 = 8;
const THREADS: usize = 4;
const MEMBERS: usize = 2;

fn bench_mixed_workload(c: &mut Criterion) {
    let deployment = Deployment::build(Scale::tiny());
    let region = deployment.region("Frankfurt");
    let base_size = deployment.scale.object_size;
    let mut group = c.benchmark_group("mixed_workload");
    group.sample_size(10);
    for ratio in [0.1_f64, 0.5] {
        let router = build_warm_cluster(
            &deployment,
            region,
            MEMBERS,
            10.0,
            HOT_OBJECTS,
            0xB0B ^ (ratio * 100.0) as u64,
        );
        let mix = ReadWriteMix::with_ratio(ratio);
        group.throughput(Throughput::Elements((THREADS * OPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}pct_writes", ratio * 100.0)),
            &ratio,
            |b, _| {
                b.iter(|| {
                    let run = run_mixed_cluster(
                        &router,
                        THREADS,
                        OPS_PER_THREAD,
                        HOT_OBJECTS,
                        base_size,
                        mix,
                        7,
                    );
                    assert_eq!(run.stale_reads, 0, "stale read under bench load");
                    black_box(run)
                })
            },
        );
    }
    group.finish();

    // Headline: what a 20% write mix costs vs pure reads.
    let reads = build_warm_cluster(&deployment, region, MEMBERS, 10.0, HOT_OBJECTS, 0xB0B);
    let writes = build_warm_cluster(&deployment, region, MEMBERS, 10.0, HOT_OBJECTS, 0xB0C);
    let a = run_mixed_cluster(
        &reads,
        THREADS,
        OPS_PER_THREAD,
        HOT_OBJECTS,
        base_size,
        ReadWriteMix::with_ratio(0.0),
        7,
    );
    let b = run_mixed_cluster(
        &writes,
        THREADS,
        OPS_PER_THREAD,
        HOT_OBJECTS,
        base_size,
        ReadWriteMix::with_ratio(0.2),
        7,
    );
    eprintln!(
        "mixed_workload: read-only {:.0} ops/s, 20% writes {:.0} ops/s, \
         {} lease wait(s), {:.2} invalidations/write, 0 stale in both",
        a.ops_per_sec,
        b.ops_per_sec,
        b.lease_contentions,
        b.invalidations_per_write()
    );
    assert_eq!(a.stale_reads + b.stale_reads, 0);
}

criterion_group!(benches, bench_mixed_workload);
criterion_main!(benches);
