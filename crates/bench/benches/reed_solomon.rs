//! Reed-Solomon codec throughput at the paper's RS(9, 3) over 1 MB
//! objects (the Longhair-equivalent data path).

use agar_ec::{CodingParams, ReedSolomon};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn object(size: usize) -> Vec<u8> {
    (0..size).map(|i| (i % 251) as u8).collect()
}

fn bench_encode(c: &mut Criterion) {
    let rs = ReedSolomon::new(CodingParams::paper_default()).unwrap();
    let mut group = c.benchmark_group("reed_solomon/encode");
    for size in [100_000usize, 1_000_000] {
        let data = object(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| rs.encode_object(black_box(&data)).unwrap())
        });
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let rs = ReedSolomon::new(CodingParams::paper_default()).unwrap();
    let mut group = c.benchmark_group("reed_solomon/reconstruct");
    for size in [100_000usize, 1_000_000] {
        let data = object(size);
        let shards: Vec<Bytes> = rs.encode_object(&data).unwrap();
        // Worst realistic case: three data shards missing.
        let mut degraded: Vec<Option<Bytes>> = shards.into_iter().map(Some).collect();
        degraded[0] = None;
        degraded[4] = None;
        degraded[8] = None;
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("3-data-lost", size), &size, |b, _| {
            b.iter(|| rs.reconstruct_object(black_box(&degraded), size).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode, bench_reconstruct
}
criterion_main!(benches);
