//! Host execution time of the tail-latency experiment cells: one
//! seeded closed-loop run (deployment build + 150 simulated reads)
//! per engine under the slow-spikes scenario. The *simulated* P99s the
//! cells report are asserted relative to each other — this bench keeps
//! the hedged engine's host-side cost visible (planning, racing and
//! discarding stragglers are real work even on a virtual clock), and
//! `experiments -- tail` prints the full scenario table.

use agar_bench::{tail_run, TailParams};
use agar_workload::StragglerScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const OPERATIONS: usize = 150;

fn bench_tail_cells(c: &mut Criterion) {
    let mut params = TailParams::tiny();
    params.operations = OPERATIONS;
    let scenario = StragglerScenario::slow_spikes();

    let mut group = c.benchmark_group("tail_cells");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPERATIONS as u64));
    for delta in [0usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("slow_spikes_delta_{delta}")),
            &delta,
            |b, &delta| b.iter(|| black_box(tail_run(&params, &scenario, delta))),
        );
    }
    group.finish();

    // Headline: the simulated-tail payoff the wall-clock cost buys.
    let unhedged = tail_run(&params, &scenario, 0);
    let hedged = tail_run(&params, &scenario, params.max_hedges);
    eprintln!(
        "tail: slow-spikes P99 unhedged {:.0} ms vs hedged {:.0} ms \
         ({} hedges, {} wins, {} -> {} fetches)",
        unhedged.latency.p99_ms,
        hedged.latency.p99_ms,
        hedged.hedged_requests,
        hedged.hedge_wins,
        unhedged.backend_fetches,
        hedged.backend_fetches,
    );
    assert!(
        hedged.latency.p99_ms < unhedged.latency.p99_ms,
        "hedging must cut the simulated P99 under spikes"
    );
}

criterion_group!(benches, bench_tail_cells);
criterion_main!(benches);
