//! Host execution time of the two-tier experiment cells: one seeded
//! closed-loop run (150 simulated reads) per engine at 16× catalogue
//! pressure against a shared deployment. The *simulated* latencies the
//! cells report are asserted relative to each other — this bench keeps
//! the disk tier's host-side cost visible (the append-log writes,
//! checksummed reads and promotion churn are real I/O even on a
//! virtual clock), and `experiments -- tiers` prints the full sweep.

use agar_bench::{tiers_run, Deployment, TiersParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const OPERATIONS: usize = 150;

fn bench_tiers_cells(c: &mut Criterion) {
    let mut params = TiersParams::tiny();
    params.operations = OPERATIONS;
    let deployment = Deployment::build(params.scale);

    let mut group = c.benchmark_group("tiers_cells");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPERATIONS as u64));
    for tiered in [false, true] {
        let label = if tiered { "tiered" } else { "ram_only" };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("catalogue_16x_{label}")),
            &tiered,
            |b, &tiered| b.iter(|| black_box(tiers_run(&deployment, &params, 16, tiered))),
        );
    }
    group.finish();

    // Headline: the simulated payoff the disk tier's host cost buys.
    let ram_only = tiers_run(&deployment, &params, 16, false);
    let tiered = tiers_run(&deployment, &params, 16, true);
    eprintln!(
        "tiers: catalogue 16x mean ram-only {:.0} ms vs tiered {:.0} ms \
         (P99 {:.0} vs {:.0}; {} disk hits, {}+{} chunk split)",
        ram_only.latency.mean_ms,
        tiered.latency.mean_ms,
        ram_only.latency.p99_ms,
        tiered.latency.p99_ms,
        tiered.disk_hits,
        tiered.ram_chunks,
        tiered.disk_chunks,
    );
    assert!(
        tiered.latency.mean_ms < ram_only.latency.mean_ms,
        "the disk tier must cut the simulated mean under catalogue pressure"
    );
}

criterion_group!(benches, bench_tiers_cells);
criterion_main!(benches);
