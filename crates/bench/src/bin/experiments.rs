//! CLI entry point regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run -p agar-bench --release --bin experiments -- [ids...] [--tiny] [--runs N] [--ops N]
//!
//! ids: fig2 table1 fig6 fig7 fig8a fig8b fig9 fig10 ablation all   (default: all)
//!      throughput   (multi-threaded wall-clock scaling; not part of `all`
//!                    because it measures the host, not the simulation)
//!      cluster      (M client threads x K ring-routed nodes; host
//!                    wall-clock, like throughput)
//!      mixed        (K-node cluster under a read/write mix at several
//!                    write ratios: lease write path, stale-read check)
//!      ec           (coding-path throughput: encode/decode MB/s across
//!                    (k, m), chunk sizes and erasure patterns)
//!      tail         (hedged vs unhedged P50/P95/P99/P999 across the
//!                    straggler scenario family; simulated clock, so the
//!                    JSON output is host-independent and CI-gateable)
//!      tiers        (RAM-only vs two-tier RAM+disk cache while the
//!                    catalogue outgrows RAM 1x/4x/16x; simulated clock,
//!                    CI-gateable like tail)
//!      chaos        (baseline vs hardened failure handling — retry
//!                    budgets, circuit breakers — under deterministic
//!                    injected partitions and fetch errors)
//! --tiny        run at test scale (fast, same shapes)
//! --runs N      repetitions to average (default 5, paper value)
//! --ops N       operations per run (default 1000, paper value)
//! --out DIR     also write CSVs under DIR (default results/)
//! --json FILE   also write every table (and tail percentiles) as JSON
//! --metrics FILE  also write the metrics registry (every counter and
//!                 stage histogram the tail/tiers/mixed cells bound)
//!                 as a JSON snapshot
//! ```

use agar_bench::experiments::{self, ExperimentParams};
use agar_bench::{Deployment, Table, TailParams, TailResult, TiersParams, TiersResult};
use agar_obs::MetricsRegistry;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut params = ExperimentParams::paper();
    let mut out_dir = PathBuf::from("results");
    let mut json_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut profile = agar_bench::LatencyProfile::Calibrated;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tiny" => {
                let ops = params.operations;
                params = ExperimentParams::tiny();
                params.operations = ops.min(300);
            }
            "--runs" => {
                params.runs = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--runs needs a number"));
            }
            "--ops" => {
                params.operations = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--ops needs a number"));
            }
            "--profile" => {
                profile = match iter.next().map(String::as_str) {
                    Some("calibrated") => agar_bench::LatencyProfile::Calibrated,
                    Some("table1") => agar_bench::LatencyProfile::PaperTable1,
                    _ => usage("--profile needs calibrated|table1"),
                };
            }
            "--out" => {
                out_dir = iter
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a directory"));
            }
            "--json" => {
                json_path = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| usage("--json needs a file path")),
                );
            }
            "--metrics" => {
                metrics_path = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| usage("--metrics needs a file path")),
                );
            }
            "--help" | "-h" => usage(""),
            id if !id.starts_with('-') => ids.push(id.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = [
            "fig2", "table1", "fig6", "fig7", "fig8a", "fig8b", "fig9", "fig10", "ablation",
        ]
        .map(String::from)
        .to_vec();
    }

    eprintln!(
        "deployment: {} objects x {} bytes, {} runs x {} ops",
        params.scale.object_count, params.scale.object_size, params.runs, params.operations
    );
    let start = std::time::Instant::now();
    let deployment = Deployment::build_with_profile(params.scale, profile);
    eprintln!("populated backend in {:.1?}\n", start.elapsed());

    let registry = MetricsRegistry::new();
    // Only wire the registry through when a dump was requested:
    // registration is cheap but pointless otherwise.
    let metrics = metrics_path.as_ref().map(|_| &registry);
    let mut emitted: Vec<Table> = Vec::new();
    let mut tail_cells: Vec<TailResult> = Vec::new();
    let mut tiers_cells: Vec<TiersResult> = Vec::new();
    let mut comparison: Option<Vec<(String, String, f64, f64)>> = None;
    for id in &ids {
        let start = std::time::Instant::now();
        let tables: Vec<Table> = match id.as_str() {
            "fig2" => vec![experiments::fig2(&deployment, &params)],
            "table1" => vec![experiments::table1(&deployment, &params)],
            "fig6" | "fig7" => {
                if comparison.is_none() {
                    comparison = Some(experiments::policy_comparison(&deployment, &params));
                }
                let rows = comparison.as_ref().expect("just computed");
                match id.as_str() {
                    "fig6" => vec![experiments::fig6(rows)],
                    _ => vec![experiments::fig7(rows)],
                }
            }
            "fig8a" => vec![experiments::fig8a(&deployment, &params)],
            "fig8b" => vec![experiments::fig8b(&deployment, &params)],
            "fig9" => vec![experiments::fig9(&deployment, &params)],
            "fig10" => vec![experiments::fig10(&deployment, &params)],
            "ablation" => vec![experiments::ablation(&deployment, &params)],
            "throughput" => vec![agar_bench::throughput::throughput_table(
                &deployment,
                params.operations,
            )],
            "cluster" => vec![agar_bench::cluster::cluster_table(
                &deployment,
                params.operations,
            )],
            "mixed" => vec![agar_bench::mixed::mixed_table_with(
                &deployment,
                params.operations,
                metrics,
            )],
            "ec" => vec![agar_bench::ec::ec_table()],
            "tail" => {
                let mut tail_params = TailParams::paper();
                tail_params.scale = params.scale;
                tail_params.operations = params.operations;
                let results = agar_bench::tail::tail_results_with(&tail_params, metrics);
                let table = agar_bench::tail_table(&results);
                tail_cells = results;
                vec![table]
            }
            "tiers" => {
                let mut tiers_params = TiersParams::paper();
                tiers_params.scale = params.scale;
                tiers_params.operations = params.operations;
                let results =
                    agar_bench::tiers::tiers_results_with(&deployment, &tiers_params, metrics);
                let table = agar_bench::tiers_table(&results);
                tiers_cells = results;
                vec![table]
            }
            "chaos" => {
                let mut chaos_params = agar_bench::ChaosParams::paper();
                chaos_params.scale = params.scale;
                chaos_params.operations = params.operations;
                let results = agar_bench::chaos::chaos_results_with(&chaos_params, metrics);
                vec![agar_bench::chaos_table(&results)]
            }
            other => usage(&format!("unknown experiment {other}")),
        };
        for table in tables {
            println!("{table}");
            let file = out_dir.join(format!("{id}.csv"));
            if let Err(e) = table.write_csv(&file) {
                eprintln!("warning: could not write {}: {e}", file.display());
            }
            emitted.push(table);
        }
        eprintln!("[{id}] done in {:.1?}\n", start.elapsed());
    }
    if let Some(path) = &metrics_path {
        match std::fs::write(path, registry.render_json()) {
            Ok(()) => eprintln!("wrote metrics snapshot to {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &json_path {
        match std::fs::write(path, results_json(&emitted, &tail_cells, &tiers_cells)) {
            Ok(()) => eprintln!("wrote JSON results to {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "all {} experiment(s) done in {:.1?}; CSVs under {}",
        emitted.len(),
        start.elapsed(),
        out_dir.display()
    );
}

/// Serialises every emitted table plus the tail and tiers percentile
/// cells as a JSON document. Both experiment families land in the
/// `tail` section — `ci/check_bench.py` gates any (scenario, policy,
/// p99_ms) cell list and the scenario namespaces are disjoint
/// (straggler names vs `catalogue Nx`). Hand-rolled: the vendored
/// serde stub has no serialisation backend.
fn results_json(tables: &[Table], tail: &[TailResult], tiers: &[TiersResult]) -> String {
    let mut out = String::from("{\n  \"tables\": [");
    for (i, table) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"title\": ");
        out.push_str(&json_string(table.title()));
        out.push_str(", \"headers\": ");
        json_string_array(&mut out, table.headers());
        out.push_str(", \"rows\": [");
        for (j, row) in table.rows().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            json_string_array(&mut out, row);
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n  \"tail\": [");
    for (i, cell) in tail.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"scenario\": {}, \"policy\": {}, \"max_hedges\": {}, \
             \"operations\": {}, \"errors\": {}, \"mean_ms\": {:.3}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"p999_ms\": {:.3}, \"max_ms\": {:.3}, \"backend_fetches\": {}, \
             \"hedged_requests\": {}, \"hedge_wins\": {}, \"hedges_cancelled\": {}, \
             \"plan_p99_ms\": {:.3}, \"lookup_p99_ms\": {:.3}, \"fetch_p99_ms\": {:.3}, \
             \"bind_p99_ms\": {:.3}, \"decode_p99_ms\": {:.3}}}",
            json_string(&cell.scenario),
            json_string(&cell.policy),
            cell.max_hedges,
            cell.operations,
            cell.errors,
            cell.latency.mean_ms,
            cell.latency.p50_ms,
            cell.latency.p95_ms,
            cell.latency.p99_ms,
            cell.latency.p999_ms,
            cell.latency.max_ms,
            cell.backend_fetches,
            cell.hedged_requests,
            cell.hedge_wins,
            cell.hedges_cancelled,
            cell.stages.plan.p99_ms,
            cell.stages.lookup.p99_ms,
            cell.stages.fetch.p99_ms,
            cell.stages.bind.p99_ms,
            cell.stages.decode.p99_ms,
        ));
    }
    for (i, cell) in tiers.iter().enumerate() {
        if i > 0 || !tail.is_empty() {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"scenario\": {}, \"policy\": {}, \"catalogue_multiple\": {}, \
             \"operations\": {}, \"errors\": {}, \"mean_ms\": {:.3}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"p999_ms\": {:.3}, \"max_ms\": {:.3}, \"ram_hits\": {}, \
             \"disk_hits\": {}, \"chunk_lookups\": {}, \"ram_hit_ratio\": {:.4}, \
             \"disk_hit_ratio\": {:.4}, \"ram_chunks\": {}, \"disk_chunks\": {}, \
             \"tier_promotions\": {}, \"disk_evictions\": {}, \
             \"plan_p99_ms\": {:.3}, \"lookup_p99_ms\": {:.3}, \"fetch_p99_ms\": {:.3}, \
             \"bind_p99_ms\": {:.3}, \"decode_p99_ms\": {:.3}}}",
            json_string(&cell.scenario),
            json_string(&cell.policy),
            cell.catalogue_multiple,
            cell.operations,
            cell.errors,
            cell.latency.mean_ms,
            cell.latency.p50_ms,
            cell.latency.p95_ms,
            cell.latency.p99_ms,
            cell.latency.p999_ms,
            cell.latency.max_ms,
            cell.ram_hits,
            cell.disk_hits,
            cell.chunk_lookups,
            cell.ram_hit_ratio(),
            cell.disk_hit_ratio(),
            cell.ram_chunks,
            cell.disk_chunks,
            cell.tier_promotions,
            cell.disk_evictions,
            cell.stages.plan.p99_ms,
            cell.stages.lookup.p99_ms,
            cell.stages.fetch.p99_ms,
            cell.stages.bind.p99_ms,
            cell.stages.decode.p99_ms,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn json_string_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(item));
    }
    out.push(']');
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: experiments [fig2|table1|fig6|fig7|fig8a|fig8b|fig9|fig10|ablation|throughput|cluster|mixed|ec|tail|tiers|chaos|all]... \
         [--tiny] [--runs N] [--ops N] [--out DIR] [--json FILE] [--metrics FILE]"
    );
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
