//! CLI entry point regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run -p agar-bench --release --bin experiments -- [ids...] [--tiny] [--runs N] [--ops N]
//!
//! ids: fig2 table1 fig6 fig7 fig8a fig8b fig9 fig10 ablation all   (default: all)
//!      throughput   (multi-threaded wall-clock scaling; not part of `all`
//!                    because it measures the host, not the simulation)
//!      cluster      (M client threads x K ring-routed nodes; host
//!                    wall-clock, like throughput)
//!      mixed        (K-node cluster under a read/write mix at several
//!                    write ratios: lease write path, stale-read check)
//!      ec           (coding-path throughput: encode/decode MB/s across
//!                    (k, m), chunk sizes and erasure patterns)
//! --tiny        run at test scale (fast, same shapes)
//! --runs N      repetitions to average (default 5, paper value)
//! --ops N       operations per run (default 1000, paper value)
//! --out DIR     also write CSVs under DIR (default results/)
//! ```

use agar_bench::experiments::{self, ExperimentParams};
use agar_bench::{Deployment, Table};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut params = ExperimentParams::paper();
    let mut out_dir = PathBuf::from("results");
    let mut profile = agar_bench::LatencyProfile::Calibrated;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tiny" => {
                let ops = params.operations;
                params = ExperimentParams::tiny();
                params.operations = ops.min(300);
            }
            "--runs" => {
                params.runs = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--runs needs a number"));
            }
            "--ops" => {
                params.operations = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--ops needs a number"));
            }
            "--profile" => {
                profile = match iter.next().map(String::as_str) {
                    Some("calibrated") => agar_bench::LatencyProfile::Calibrated,
                    Some("table1") => agar_bench::LatencyProfile::PaperTable1,
                    _ => usage("--profile needs calibrated|table1"),
                };
            }
            "--out" => {
                out_dir = iter
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a directory"));
            }
            "--help" | "-h" => usage(""),
            id if !id.starts_with('-') => ids.push(id.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = [
            "fig2", "table1", "fig6", "fig7", "fig8a", "fig8b", "fig9", "fig10", "ablation",
        ]
        .map(String::from)
        .to_vec();
    }

    eprintln!(
        "deployment: {} objects x {} bytes, {} runs x {} ops",
        params.scale.object_count, params.scale.object_size, params.runs, params.operations
    );
    let start = std::time::Instant::now();
    let deployment = Deployment::build_with_profile(params.scale, profile);
    eprintln!("populated backend in {:.1?}\n", start.elapsed());

    let mut emitted: Vec<Table> = Vec::new();
    let mut comparison: Option<Vec<(String, String, f64, f64)>> = None;
    for id in &ids {
        let start = std::time::Instant::now();
        let tables: Vec<Table> = match id.as_str() {
            "fig2" => vec![experiments::fig2(&deployment, &params)],
            "table1" => vec![experiments::table1(&deployment, &params)],
            "fig6" | "fig7" => {
                if comparison.is_none() {
                    comparison = Some(experiments::policy_comparison(&deployment, &params));
                }
                let rows = comparison.as_ref().expect("just computed");
                match id.as_str() {
                    "fig6" => vec![experiments::fig6(rows)],
                    _ => vec![experiments::fig7(rows)],
                }
            }
            "fig8a" => vec![experiments::fig8a(&deployment, &params)],
            "fig8b" => vec![experiments::fig8b(&deployment, &params)],
            "fig9" => vec![experiments::fig9(&deployment, &params)],
            "fig10" => vec![experiments::fig10(&deployment, &params)],
            "ablation" => vec![experiments::ablation(&deployment, &params)],
            "throughput" => vec![agar_bench::throughput::throughput_table(
                &deployment,
                params.operations,
            )],
            "cluster" => vec![agar_bench::cluster::cluster_table(
                &deployment,
                params.operations,
            )],
            "mixed" => vec![agar_bench::mixed::mixed_table(
                &deployment,
                params.operations,
            )],
            "ec" => vec![agar_bench::ec::ec_table()],
            other => usage(&format!("unknown experiment {other}")),
        };
        for table in tables {
            println!("{table}");
            let file = out_dir.join(format!("{id}.csv"));
            if let Err(e) = table.write_csv(&file) {
                eprintln!("warning: could not write {}: {e}", file.display());
            }
            emitted.push(table);
        }
        eprintln!("[{id}] done in {:.1?}\n", start.elapsed());
    }
    eprintln!(
        "all {} experiment(s) done in {:.1?}; CSVs under {}",
        emitted.len(),
        start.elapsed(),
        out_dir.display()
    );
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: experiments [fig2|table1|fig6|fig7|fig8a|fig8b|fig9|fig10|ablation|throughput|cluster|mixed|ec|all]... \
         [--tiny] [--runs N] [--ops N] [--out DIR]"
    );
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
