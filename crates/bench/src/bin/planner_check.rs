//! Diagnostic: expected steady-state latency of the knapsack's ideal
//! static configuration vs fixed-chunk allocations, under exact Zipf
//! popularity (no dynamics). Used to separate solver quality from
//! simulation dynamics when tuning the reproduction.

use agar::{CacheManager, KnapsackSolver, RegionManager, RequestMonitor};
use agar_bench::{Deployment, Scale};
use agar_ec::ObjectId;
use agar_net::presets::{FRANKFURT, SYDNEY};
use agar_workload::Zipfian;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let deployment = Deployment::build(Scale::tiny());
    let n = deployment.scale.object_count;
    let zipf = Zipfian::new(n, 1.1).unwrap();
    let capacity_chunks = 90u32;

    for (region, name) in [(FRANKFURT, "Frankfurt"), (SYDNEY, "Sydney")] {
        let mut monitor = RequestMonitor::new();
        // Feed exact popularity: 10_000 * p_i reads per object.
        for i in 0..n {
            let reads = (zipf.probability(i) * 10_000.0).round() as u64;
            for _ in 0..reads {
                monitor.record_read(ObjectId::new(i));
            }
        }
        monitor.end_epoch();
        let mut rm = RegionManager::new(region, deployment.preset.topology.clone());
        let mut rng = StdRng::seed_from_u64(1);
        rm.warm_up(
            &deployment.preset.latency,
            deployment.scale.chunk_size(),
            50,
            &mut rng,
        );

        let manager = CacheManager::new(deployment.scale.cache_bytes(10.0))
            .with_solver(KnapsackSolver::new());
        let options = manager.build_options(
            &monitor,
            &rm,
            &deployment.backend,
            deployment.preset.cache_read,
        );
        let config = KnapsackSolver::new().populate(&options, capacity_chunks);

        // Expected latency under a static config c(i) chunks for object i.
        let expect = |alloc: &dyn Fn(u64) -> u32| -> f64 {
            (0..n)
                .map(|i| {
                    let w = alloc(i);
                    let resid = options[&ObjectId::new(i)]
                        .by_weight(w)
                        .map(|o| o.expected_latency())
                        .unwrap_or(options[&ObjectId::new(i)].baseline_latency());
                    zipf.probability(i) * (100.0 + resid.as_secs_f64() * 1e3)
                })
                .sum()
        };

        // Agar's config
        let mut agar_alloc = std::collections::HashMap::new();
        for o in config.options() {
            agar_alloc.insert(o.object().index(), o.weight());
        }
        let agar = expect(&|i| agar_alloc.get(&i).copied().unwrap_or(0));
        println!(
            "{name}: knapsack weight={} value={:.0}",
            config.weight(),
            config.value()
        );
        let mut counts = std::collections::BTreeMap::new();
        for o in config.options() {
            *counts.entry(o.weight()).or_insert(0u32) += 1;
        }
        println!("  allocation: {counts:?}");
        println!("  Agar ideal static: {agar:.0} ms");
        for c in [5u32, 7, 9] {
            let top_n = (capacity_chunks / c) as u64;
            let fixed = expect(&|i| if i < top_n { c } else { 0 });
            println!("  top-{top_n} x w{c}: {fixed:.0} ms");
        }
    }
}
