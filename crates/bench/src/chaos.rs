//! The `chaos` experiment: hardened vs baseline failure handling under
//! deterministic fault injection.
//!
//! Every cell replays the same seeded closed-loop run against a fresh
//! deployment whose chunk fetches pass through an
//! [`agar_chaos::ChaosPlane`]: region partitions and per-fetch error
//! faults fail and heal on the simulated clock, drawn from the
//! scenario's seed — bit-identical per replay. Each scenario runs
//! twice: once with the `baseline` policy (the historical fixed
//! 3-attempt loop, breaker off — byte-identical to the pre-hardening
//! engine) and once `hardened` (retry budget with priced backoff plus
//! an enabled per-region circuit breaker), so every delta in the table
//! is attributable to the hardening alone.

use crate::harness::{Deployment, Scale};
use crate::table::{LatencyHistogram, LatencySummary, Table};
use agar::{AgarNode, AgarSettings, BreakerPolicy, CachingClient, DirectFetcher, RetryPolicy};
use agar_chaos::{ChaosClock, ChaosPlane, ChaosSpec, FetchFaultSpec, RegionOutage};
use agar_ec::ObjectId;
use agar_net::sim::Simulation;
use agar_net::{RegionId, SimTime};
use agar_obs::{Labels, MetricsRegistry};
use agar_workload::{Op, WorkloadSpec};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Parameters shared by every cell of the chaos experiment.
#[derive(Clone, Copy, Debug)]
pub struct ChaosParams {
    /// Deployment scale.
    pub scale: Scale,
    /// Operations per run.
    pub operations: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Cache size in paper MB units.
    pub cache_mb: f64,
    /// Seed shared by the baseline and hardened runs of each scenario.
    pub seed: u64,
}

impl ChaosParams {
    /// Full-scale defaults.
    pub fn paper() -> Self {
        ChaosParams {
            scale: Scale::paper(),
            operations: 1_000,
            clients: 2,
            cache_mb: 10.0,
            seed: 0xC4A0,
        }
    }

    /// Test-scale defaults (same shapes, small objects, fewer ops).
    pub fn tiny() -> Self {
        ChaosParams {
            scale: Scale::tiny(),
            operations: 300,
            ..ChaosParams::paper()
        }
    }
}

/// The failure-handling policy a cell runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosPolicy {
    /// Defaults: fixed 3-attempt loop, no backoff, breaker disabled —
    /// byte-identical to the pre-hardening engine.
    Baseline,
    /// Retry budget with capped exponential backoff plus an enabled
    /// per-region circuit breaker.
    Hardened,
}

impl ChaosPolicy {
    /// The policy's display label.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosPolicy::Baseline => "baseline",
            ChaosPolicy::Hardened => "hardened",
        }
    }

    /// The retry policy this cell runs with.
    pub fn retry(&self) -> RetryPolicy {
        match self {
            ChaosPolicy::Baseline => RetryPolicy::default(),
            ChaosPolicy::Hardened => RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(200),
                deadline: Duration::from_secs(2),
            },
        }
    }

    /// The breaker policy this cell runs with.
    pub fn breaker(&self) -> BreakerPolicy {
        match self {
            ChaosPolicy::Baseline => BreakerPolicy::default(),
            ChaosPolicy::Hardened => BreakerPolicy {
                failure_threshold: 3,
                cooldown: Duration::from_secs(10),
            },
        }
    }
}

/// A named fault schedule for one scenario row.
#[derive(Clone, Debug)]
pub struct ChaosScenario {
    /// Scenario name (table row key).
    pub name: &'static str,
    /// The fault schedule (the seed is filled in per run).
    pub spec: ChaosSpec,
}

impl ChaosScenario {
    /// The scenario family: calm control, a fail/heal region
    /// partition, probabilistic per-fetch errors, and both at once.
    /// `partitioned` is the region whose outages the partition rows
    /// schedule (pick one the client does not live in).
    pub fn family(partitioned: RegionId) -> Vec<ChaosScenario> {
        let outage = RegionOutage {
            region: partitioned,
            first_failure_s: 5,
            down_s: 20,
            period_s: 40,
        };
        let flaky = FetchFaultSpec {
            per_1024: 200,
            first_failure_s: 5,
            down_s: 15,
            period_s: 30,
        };
        vec![
            ChaosScenario {
                name: "calm",
                spec: ChaosSpec::quiet(),
            },
            ChaosScenario {
                name: "partition",
                spec: ChaosSpec {
                    outages: vec![outage],
                    ..ChaosSpec::quiet()
                },
            },
            ChaosScenario {
                name: "flaky-fetch",
                spec: ChaosSpec {
                    fetch_faults: Some(flaky),
                    ..ChaosSpec::quiet()
                },
            },
            ChaosScenario {
                name: "combined",
                spec: ChaosSpec {
                    outages: vec![outage],
                    fetch_faults: Some(flaky),
                    ..ChaosSpec::quiet()
                },
            },
        ]
    }
}

/// One (scenario, policy) cell of the chaos experiment.
#[derive(Clone, Debug)]
pub struct ChaosResult {
    /// Scenario name.
    pub scenario: String,
    /// Policy label (`baseline` or `hardened`).
    pub policy: String,
    /// Operations completed.
    pub operations: usize,
    /// Reads that failed outright (counted as 2 s penalty ops).
    pub errors: usize,
    /// Percentile summary of per-read simulated latency.
    pub latency: LatencySummary,
    /// Faults the chaos plane injected.
    pub faults_injected: u64,
    /// Replans charged against the retry budget.
    pub retries: u64,
    /// Reads that fell back to an ungated plan after breaker exclusion
    /// left fewer than `k` reachable chunks.
    pub degraded_reads: u64,
    /// Circuit-breaker open transitions.
    pub breaker_opens: u64,
}

struct ChaosState {
    node: Arc<AgarNode>,
    clock: ChaosClock,
    pending: VecDeque<Op>,
    latencies: Vec<Duration>,
    in_flight: usize,
    errors: usize,
}

fn chaos_client_loop(state: &mut ChaosState, sched: &mut agar_net::Scheduler<ChaosState>) {
    let Some(op) = state.pending.pop_front() else {
        state.in_flight -= 1;
        return;
    };
    // Both clocks advance together: the fault schedule and the
    // breaker/backoff pricing see the same simulated instant.
    state.clock.set(sched.now());
    state.node.set_sim_now(sched.now());
    let latency = match state.node.read(ObjectId::new(op.key())) {
        Ok(metrics) => metrics.latency,
        Err(_) => {
            state.errors += 1;
            // Same closed-loop pacing as the tail harness: a failed op
            // costs a backend-style slow round trip.
            Duration::from_secs(2)
        }
    };
    state.latencies.push(latency);
    sched.schedule_in(latency, chaos_client_loop);
}

/// Once per simulated second: advance the chaos clock and give the
/// node its reconfiguration chance (same cadence as the main harness).
fn chaos_tick(state: &mut ChaosState, sched: &mut agar_net::Scheduler<ChaosState>) {
    state.clock.set(sched.now());
    state.node.set_sim_now(sched.now());
    state.node.maybe_reconfigure(sched.now());
    if state.in_flight > 0 {
        sched.schedule_in(Duration::from_secs(1), chaos_tick);
    }
}

/// Runs one (scenario, policy) cell: fresh deployment, fresh node
/// behind a fresh chaos plane, seeded closed-loop clients on the
/// simulated clock.
///
/// # Panics
///
/// Panics on invalid parameters (caller bugs).
pub fn chaos_run(
    params: &ChaosParams,
    scenario: &ChaosScenario,
    policy: ChaosPolicy,
) -> ChaosResult {
    chaos_run_with(params, scenario, policy, None)
}

/// [`chaos_run`] with an optional metrics registry: when given, the
/// cell's node and chaos plane bind their counters into it under
/// `{scenario, policy}` labels.
pub fn chaos_run_with(
    params: &ChaosParams,
    scenario: &ChaosScenario,
    policy: ChaosPolicy,
    registry: Option<&MetricsRegistry>,
) -> ChaosResult {
    let deployment = Deployment::build(params.scale);
    let preset = &deployment.preset;
    let mut settings = AgarSettings::paper_default(deployment.scale.cache_bytes(params.cache_mb));
    settings.cache_read = preset.cache_read;
    settings.client_overhead = preset.client_overhead;
    settings.retry = policy.retry();
    settings.breaker = policy.breaker();
    let node = Arc::new(
        AgarNode::new(
            preset.region("Frankfurt"),
            Arc::clone(&deployment.backend),
            settings,
            params.seed ^ 0x5EED,
        )
        .expect("paper settings are valid"),
    );
    let mut spec = scenario.spec.clone();
    spec.seed = params.seed;
    let clock = ChaosClock::new();
    let plane = Arc::new(ChaosPlane::new(
        Arc::new(DirectFetcher::new(Arc::clone(&deployment.backend))),
        spec,
        clock.clone(),
    ));
    node.set_chunk_fetcher(Arc::clone(&plane) as _);
    if let Some(registry) = registry {
        let labels = Labels::new()
            .with("scenario", scenario.name)
            .with("policy", policy.label());
        node.register_metrics(registry, &labels);
        plane.register_metrics(registry, labels);
    }

    let mut workload = WorkloadSpec::paper_default();
    workload.operations = params.operations;
    workload.object_count = workload.object_count.min(deployment.scale.object_count);
    workload.object_size = deployment.scale.object_size;
    let ops: VecDeque<Op> = workload
        .stream(params.seed)
        .expect("workload spec validated")
        .collect();

    let mut sim = Simulation::new(ChaosState {
        node: Arc::clone(&node),
        clock,
        pending: ops,
        latencies: Vec::with_capacity(params.operations),
        in_flight: params.clients.max(1),
        errors: 0,
    });
    sim.schedule_at(SimTime::ZERO, chaos_tick);
    for _ in 0..params.clients.max(1) {
        sim.schedule_at(SimTime::ZERO, chaos_client_loop);
    }
    sim.run();
    let state = sim.into_world();

    let mut histogram = LatencyHistogram::new();
    state.latencies.iter().for_each(|&l| histogram.record(l));
    ChaosResult {
        scenario: scenario.name.to_string(),
        policy: policy.label().to_string(),
        operations: state.latencies.len(),
        errors: state.errors,
        latency: histogram.summary(),
        faults_injected: plane.faults_injected(),
        retries: node.retries(),
        degraded_reads: node.degraded_reads(),
        breaker_opens: node.breaker().opens(),
    }
}

/// Runs the full scenario family, baseline and hardened per scenario.
pub fn chaos_results(params: &ChaosParams) -> Vec<ChaosResult> {
    chaos_results_with(params, None)
}

/// [`chaos_results`] with an optional metrics registry (see
/// [`chaos_run_with`]).
pub fn chaos_results_with(
    params: &ChaosParams,
    registry: Option<&MetricsRegistry>,
) -> Vec<ChaosResult> {
    // Partition a region the Frankfurt client does not live in; Tokyo
    // is far enough that its chunks are marginal in calm plans, so the
    // outage's effect is isolated to the fault path under test.
    let partitioned = agar_net::presets::TOKYO;
    let mut results = Vec::new();
    for scenario in ChaosScenario::family(partitioned) {
        for policy in [ChaosPolicy::Baseline, ChaosPolicy::Hardened] {
            let result = chaos_run_with(params, &scenario, policy, registry);
            eprintln!(
                "  [chaos] {:<12} {:<9} P99 {:6.0} ms (P50 {:4.0}), \
                 {} faults, {} retries, {} degraded, {} opens, {} errors",
                result.scenario,
                result.policy,
                result.latency.p99_ms,
                result.latency.p50_ms,
                result.faults_injected,
                result.retries,
                result.degraded_reads,
                result.breaker_opens,
                result.errors,
            );
            results.push(result);
        }
    }
    results
}

/// Renders chaos results as the `chaos` experiment table.
pub fn chaos_table(results: &[ChaosResult]) -> Table {
    let mut headers: Vec<String> = vec!["scenario".into(), "policy".into(), "mean (ms)".into()];
    headers.extend(LatencySummary::percentile_headers());
    headers.extend([
        "max (ms)".into(),
        "faults".into(),
        "retries".into(),
        "degraded".into(),
        "opens".into(),
        "errors".into(),
    ]);
    let mut table = Table::new(
        "Chaos — baseline vs hardened failure handling under injected faults (Frankfurt, Zipf 1.1)",
        headers,
    );
    for r in results {
        let mut row = vec![
            r.scenario.clone(),
            r.policy.clone(),
            format!("{:.0}", r.latency.mean_ms),
        ];
        row.extend(r.latency.percentile_cells());
        row.extend([
            format!("{:.0}", r.latency.max_ms),
            r.faults_injected.to_string(),
            r.retries.to_string(),
            r.degraded_reads.to_string(),
            r.breaker_opens.to_string(),
            r.errors.to_string(),
        ]);
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> ChaosParams {
        let mut params = ChaosParams::tiny();
        params.operations = 120;
        params
    }

    #[test]
    fn calm_cells_inject_nothing_and_err_nothing() {
        let params = quick_params();
        let scenario = &ChaosScenario::family(RegionId::new(4))[0];
        assert_eq!(scenario.name, "calm");
        for policy in [ChaosPolicy::Baseline, ChaosPolicy::Hardened] {
            let result = chaos_run(&params, scenario, policy);
            assert_eq!(result.operations, 120);
            assert_eq!(result.errors, 0);
            assert_eq!(result.faults_injected, 0);
            assert_eq!(result.breaker_opens, 0);
        }
    }

    #[test]
    fn faulty_cells_inject_and_both_policies_survive() {
        let params = quick_params();
        let partitioned = agar_net::presets::TOKYO;
        let scenarios = ChaosScenario::family(partitioned);
        let flaky = scenarios.iter().find(|s| s.name == "flaky-fetch").unwrap();
        let baseline = chaos_run(&params, flaky, ChaosPolicy::Baseline);
        let hardened = chaos_run(&params, flaky, ChaosPolicy::Hardened);
        assert!(baseline.faults_injected > 0, "schedule must fire");
        assert!(hardened.faults_injected > 0, "schedule must fire");
        // The 20% per-fetch fault rate is harsh enough that some reads
        // exhaust any bounded budget; the hardened budget (4 attempts
        // vs 3) must never do worse. Seeds are fixed, so this is a
        // deterministic comparison, not a statistical one.
        assert!(
            hardened.errors <= baseline.errors,
            "hardened errors {} exceed baseline {}",
            hardened.errors,
            baseline.errors
        );
        assert!(hardened.retries > 0, "faults must charge the retry budget");
    }

    #[test]
    fn cells_are_deterministic_per_seed() {
        let params = quick_params();
        let partitioned = agar_net::presets::TOKYO;
        let scenario = &ChaosScenario::family(partitioned)[1];
        let a = chaos_run(&params, scenario, ChaosPolicy::Hardened);
        let b = chaos_run(&params, scenario, ChaosPolicy::Hardened);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.breaker_opens, b.breaker_opens);
    }
}
