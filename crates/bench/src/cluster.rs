//! Multi-node wall-clock throughput: the cluster scenario.
//!
//! Extends the single-node [`throughput`](crate::throughput) harness to
//! `M` client threads × `K` Agar nodes behind one
//! [`ClusterRouter`]: clients issue reads through the router, which
//! fans them out to the owning member by consistent hash. On a
//! cache-hit-heavy workload the members' sharded caches are disjoint by
//! construction (each object lives with its ring owner), so adding
//! nodes adds independent lock domains the same way adding shards does
//! within a node — aggregate ops/s is expected to track available
//! cores, not node count, on small hosts.

use crate::harness::Deployment;
use crate::table::LatencyHistogram;
use crate::throughput::ThroughputRun;
use agar::{AgarNode, AgarSettings};
use agar_cluster::{ClusterRouter, ClusterSettings};
use agar_ec::ObjectId;
use agar_net::RegionId;
use std::sync::Arc;
use std::time::Instant;

/// Builds a `members`-node cluster in `region` whose caches are warm
/// for objects `0..hot_objects`: every hot object is made popular
/// through routed reads (so its ring owner's monitor sees it), every
/// member reconfigures (downloading its configured chunks a priori),
/// and a verification pass confirms full cache hits.
///
/// # Panics
///
/// Panics if a member cannot hold its share of the hot set (caller
/// sizing bug) or a read fails.
pub fn build_warm_cluster(
    deployment: &Deployment,
    region: RegionId,
    members: usize,
    cache_mb: f64,
    hot_objects: u64,
    seed: u64,
) -> Arc<ClusterRouter> {
    build_warm_hedged_cluster(deployment, region, members, cache_mb, hot_objects, 0, seed)
}

/// [`build_warm_cluster`] with hedging enabled on every member: up to
/// `max_hedges` speculative backend fetches per read (0 reproduces the
/// unhedged cluster exactly).
///
/// # Panics
///
/// Same as [`build_warm_cluster`].
pub fn build_warm_hedged_cluster(
    deployment: &Deployment,
    region: RegionId,
    members: usize,
    cache_mb: f64,
    hot_objects: u64,
    max_hedges: usize,
    seed: u64,
) -> Arc<ClusterRouter> {
    build_warm_cluster_with(
        deployment,
        region,
        members,
        cache_mb,
        hot_objects,
        max_hedges,
        false,
        seed,
    )
}

/// [`build_warm_hedged_cluster`] with read tracing optionally enabled
/// on every member (`trace` samples every read). The throughput
/// harnesses leave it off — they measure wall-clock ops/s and tracing,
/// while cheap, is not free; the mixed experiment turns it on for its
/// per-stage breakdown columns.
///
/// # Panics
///
/// Same as [`build_warm_cluster`].
#[allow(clippy::too_many_arguments)]
pub fn build_warm_cluster_with(
    deployment: &Deployment,
    region: RegionId,
    members: usize,
    cache_mb: f64,
    hot_objects: u64,
    max_hedges: usize,
    trace: bool,
    seed: u64,
) -> Arc<ClusterRouter> {
    assert!(members > 0, "need at least one member");
    assert!(hot_objects > 0, "need at least one hot object");
    let mut settings = AgarSettings::paper_default(deployment.scale.cache_bytes(cache_mb));
    settings.cache_read = deployment.preset.cache_read;
    settings.client_overhead = deployment.preset.client_overhead;
    settings.max_hedges = max_hedges;
    settings.trace_sample_every = u64::from(trace);
    let router = Arc::new(
        ClusterRouter::new(
            Arc::clone(&deployment.backend),
            ClusterSettings::default(),
            seed,
        )
        .expect("default cluster settings are valid"),
    );
    for i in 0..members {
        let node = AgarNode::new(
            region,
            Arc::clone(&deployment.backend),
            settings.clone(),
            seed ^ (i as u64 + 1),
        )
        .expect("paper settings are valid");
        router.add_node(Arc::new(node));
    }
    for object in 0..hot_objects {
        for _ in 0..3 {
            router.read(ObjectId::new(object)).expect("warm-up read");
        }
    }
    router.force_reconfigure_all();
    let k = deployment.backend.params().data_chunks();
    for object in 0..hot_objects {
        let metrics = router
            .read(ObjectId::new(object))
            .expect("verification read");
        assert_eq!(
            metrics.metrics().cache_hits,
            k,
            "object {object} not fully cached on its owner; shrink the hot set or grow the caches"
        );
    }
    router
}

/// Hammers the cluster with `threads` OS threads, each performing
/// `ops_per_thread` routed reads round-robin over the hot set, and
/// reports aggregate wall-clock throughput.
///
/// # Panics
///
/// Panics if a read fails (the backend is healthy in this harness).
pub fn run_cluster_threads(
    router: &Arc<ClusterRouter>,
    threads: usize,
    ops_per_thread: usize,
    hot_objects: u64,
) -> ThroughputRun {
    let threads = threads.max(1);
    let start = Instant::now();
    let mut cache_hits = 0u64;
    let mut backend_fetches = 0u64;
    let mut histogram = LatencyHistogram::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let router = Arc::clone(router);
                scope.spawn(move || {
                    let mut hits = 0u64;
                    let mut fetches = 0u64;
                    let mut local = LatencyHistogram::new();
                    for i in 0..ops_per_thread {
                        // Offset each thread so they touch different
                        // objects (and so different members) at any
                        // instant.
                        let object = (t * 3 + i) as u64 % hot_objects;
                        let op_start = Instant::now();
                        let metrics = router
                            .read(ObjectId::new(object))
                            .expect("healthy backend read");
                        local.record(op_start.elapsed());
                        hits += metrics.metrics().cache_hits as u64;
                        fetches += metrics.metrics().backend_fetches as u64;
                    }
                    (hits, fetches, local)
                })
            })
            .collect();
        for handle in handles {
            let (hits, fetches, local) = handle.join().expect("client thread panicked");
            cache_hits += hits;
            backend_fetches += fetches;
            histogram.merge(&local);
        }
    });
    let elapsed = start.elapsed();
    let total_ops = (threads * ops_per_thread) as u64;
    ThroughputRun {
        threads,
        total_ops,
        elapsed,
        ops_per_sec: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        cache_hits,
        backend_fetches,
        latency: histogram.summary(),
    }
}

/// Runs the `M clients × K nodes` grid against one deployment and
/// returns `(members, run)` per grid cell, row-major in `members`.
pub fn cluster_scaling(
    deployment: &Deployment,
    region: RegionId,
    member_counts: &[usize],
    thread_counts: &[usize],
    ops_per_thread: usize,
) -> Vec<(usize, ThroughputRun)> {
    // 8 hot objects in 10-"MB" member caches: fully cacheable at every
    // cluster size (each owner holds a subset).
    let hot_objects = 8;
    let mut runs = Vec::with_capacity(member_counts.len() * thread_counts.len());
    for &members in member_counts {
        let router = build_warm_cluster(deployment, region, members, 10.0, hot_objects, 0xC105);
        for &threads in thread_counts {
            runs.push((
                members,
                run_cluster_threads(&router, threads, ops_per_thread, hot_objects),
            ));
        }
    }
    runs
}

/// The `cluster` experiment: aggregate ops/s over the M × K grid, with
/// speed-ups relative to the 1-thread × 1-node cell.
pub fn cluster_table(deployment: &Deployment, ops_per_thread: usize) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "Cluster — aggregate ops/s, M client threads x K ring-routed Agar nodes (cache-hit-heavy)",
        vec![
            "nodes".into(),
            "threads".into(),
            "ops".into(),
            "elapsed ms".into(),
            "ops/s".into(),
            "speed-up".into(),
            "hit %".into(),
            "P50 (µs)".into(),
            "P95 (µs)".into(),
            "P99 (µs)".into(),
            "P999 (µs)".into(),
        ],
    );
    let runs = cluster_scaling(
        deployment,
        deployment.region("Frankfurt"),
        &[1, 2, 4],
        &[1, 2, 4, 8],
        ops_per_thread,
    );
    let base = runs.first().map_or(1.0, |(_, r)| r.ops_per_sec);
    for (members, run) in &runs {
        eprintln!(
            "  [cluster] {} node(s) x {} thread(s): {:.0} ops/s ({:.2}x vs 1x1, {:.1}% cache hits)",
            members,
            run.threads,
            run.ops_per_sec,
            run.ops_per_sec / base,
            run.hit_fraction() * 100.0
        );
        let mut row = vec![
            members.to_string(),
            run.threads.to_string(),
            run.total_ops.to_string(),
            format!("{:.1}", run.elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", run.ops_per_sec),
            format!("{:.2}x", run.ops_per_sec / base),
            format!("{:.1}", run.hit_fraction() * 100.0),
        ];
        // Wall-clock cache hits are microseconds, not milliseconds.
        row.extend(
            [
                run.latency.p50_ms,
                run.latency.p95_ms,
                run.latency.p99_ms,
                run.latency.p999_ms,
            ]
            .iter()
            .map(|ms| format!("{:.0}", ms * 1e3)),
        );
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn warm_cluster_serves_pure_hits_across_threads_and_members() {
        let deployment = Deployment::build(Scale::tiny());
        let region = deployment.region("Frankfurt");
        let router = build_warm_cluster(&deployment, region, 2, 10.0, 4, 1);
        let run = run_cluster_threads(&router, 4, 25, 4);
        assert_eq!(run.total_ops, 100);
        assert_eq!(run.backend_fetches, 0, "warm hot set must not fetch");
        assert_eq!(run.cache_hits, 100 * 9);
        assert!(run.ops_per_sec > 0.0);
        assert_eq!(run.latency.samples, 100);
    }

    #[test]
    fn scaling_grid_reports_every_cell() {
        let deployment = Deployment::build(Scale::tiny());
        let region = deployment.region("Frankfurt");
        let runs = cluster_scaling(&deployment, region, &[1, 2], &[1, 2], 20);
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].0, 1);
        assert_eq!(runs[3].0, 2);
        assert!(runs.iter().all(|(_, r)| r.backend_fetches == 0));
    }
}
