//! Coding-path throughput: encode/decode MB/s across code parameters,
//! chunk sizes and erasure patterns (`experiments -- ec`).
//!
//! The cells are single-thread wall-clock rates of the `agar-ec` hot
//! path in isolation — no backend, no cache, no simulated latency —
//! so they isolate exactly what the nibble-table kernels, the
//! decode-plan cache and the zero-copy systematic read buy. The three
//! decode columns:
//!
//! - **systematic** — all `k` data shards present; no GF arithmetic at
//!   all, just one object-sized assembly;
//! - **1-erasure** — one data shard missing, decoded through parity;
//! - **m-erasure** — `m` data shards missing, the worst pattern the
//!   code tolerates.

use crate::table::Table;
use agar_ec::{CodingParams, ReedSolomon};
use bytes::Bytes;
use std::time::{Duration, Instant};

/// One measured cell: median MB/s over `iters` timed runs.
fn mb_per_s(object_size: usize, mut run: impl FnMut()) -> f64 {
    // Warm up once (faults in tables, fills the decode-plan cache —
    // deliberately: steady-state throughput is what the read path sees).
    run();
    // Adapt the iteration count to the cell's cost so the whole table
    // stays fast on slow containers but stable on fast hosts.
    let probe = Instant::now();
    run();
    let once = probe.elapsed().max(Duration::from_micros(1));
    let iters = (Duration::from_millis(120).as_secs_f64() / once.as_secs_f64()) as usize;
    let iters = iters.clamp(3, 200);
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        run();
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2].max(Duration::from_nanos(1));
    object_size as f64 / median.as_secs_f64() / 1.0e6
}

fn erase(shards: &[Bytes], missing: &[usize]) -> Vec<Option<Bytes>> {
    shards
        .iter()
        .enumerate()
        .map(|(i, s)| (!missing.contains(&i)).then(|| s.clone()))
        .collect()
}

/// The `experiments -- ec` table: encode and decode throughput for
/// (k, m) ∈ {(4,2), (6,3), (10,4)} × chunk sizes {64 KiB, 1 MiB},
/// decoding the systematic, 1-erasure and m-erasure patterns.
pub fn ec_table() -> Table {
    let mut table = Table::new(
        "EC coding path — single-thread throughput (MB/s, object bytes)",
        [
            "code",
            "chunk",
            "encode",
            "dec systematic",
            "dec 1-erasure",
            "dec m-erasure",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (k, m) in [(4usize, 2usize), (6, 3), (10, 4)] {
        for chunk_size in [64 * 1024usize, 1024 * 1024] {
            let params = CodingParams::new(k, m).unwrap();
            let rs = ReedSolomon::new(params).unwrap();
            let object_size = k * chunk_size;
            let object: Vec<u8> = (0..object_size).map(|i| (i % 251) as u8).collect();
            let shards = rs.encode_object(&object).unwrap();

            let encode = mb_per_s(object_size, || {
                std::hint::black_box(rs.encode_object(&object).unwrap());
            });
            let systematic = erase(&shards, &[]);
            let one_erased = erase(&shards, &[0]);
            let m_erased = erase(&shards, &(0..m).collect::<Vec<_>>());
            let dec_sys = mb_per_s(object_size, || {
                std::hint::black_box(rs.reconstruct_object(&systematic, object_size).unwrap());
            });
            let dec_one = mb_per_s(object_size, || {
                std::hint::black_box(rs.reconstruct_object(&one_erased, object_size).unwrap());
            });
            let dec_m = mb_per_s(object_size, || {
                std::hint::black_box(rs.reconstruct_object(&m_erased, object_size).unwrap());
            });
            table.push_row(vec![
                format!("RS({k},{m})"),
                if chunk_size >= 1024 * 1024 {
                    format!("{} MiB", chunk_size / (1024 * 1024))
                } else {
                    format!("{} KiB", chunk_size / 1024)
                },
                format!("{encode:.0}"),
                format!("{dec_sys:.0}"),
                format!("{dec_one:.0}"),
                format!("{dec_m:.0}"),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec_table_has_all_cells() {
        let table = ec_table();
        assert_eq!(table.len(), 6); // 3 codes x 2 chunk sizes
        for row in table.rows() {
            assert_eq!(row.len(), 6);
            for cell in &row[2..] {
                assert!(cell.parse::<f64>().unwrap() > 0.0, "cell {cell}");
            }
        }
    }
}
