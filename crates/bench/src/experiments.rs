//! Reproduction of every table and figure in the paper's evaluation
//! (§II-C and §V), one function per artefact.
//!
//! Absolute milliseconds depend on the calibrated latency matrix
//! (DESIGN.md §1); what these experiments are expected to reproduce is
//! the paper's *shapes*: who wins, by roughly what factor, and where the
//! crossovers fall. EXPERIMENTS.md records paper-vs-measured values.

use crate::harness::{run_averaged, run_once, Deployment, PolicySpec, RunConfig, Scale};
use crate::table::Table;
use agar::RegionManager;
use agar_net::presets::{FRANKFURT, SIX_REGION_NAMES, SYDNEY};
use agar_workload::{zipf_popularity_cdf, Distribution, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Common experiment knobs (shrunk by tests, full-size in the binary).
#[derive(Clone, Copy, Debug)]
pub struct ExperimentParams {
    /// Deployment scale.
    pub scale: Scale,
    /// Repetitions to average (the paper uses 5).
    pub runs: usize,
    /// Operations per run (the paper uses 1 000).
    pub operations: usize,
}

impl ExperimentParams {
    /// The paper's parameters: full scale, 5 runs x 1 000 reads.
    pub fn paper() -> Self {
        ExperimentParams {
            scale: Scale::paper(),
            runs: 5,
            operations: 1_000,
        }
    }

    /// Small parameters for integration tests.
    pub fn tiny() -> Self {
        ExperimentParams {
            scale: Scale::tiny(),
            runs: 1,
            operations: 250,
        }
    }

    fn workload(&self, distribution: Distribution) -> WorkloadSpec {
        WorkloadSpec {
            object_count: self.scale.object_count,
            object_size: self.scale.object_size,
            operations: self.operations,
            read_fraction: 1.0,
            distribution,
        }
    }
}

fn zipf_default() -> Distribution {
    Distribution::Zipfian { skew: 1.1 }
}

/// §II-C / Figure 2 — the motivating experiment: average read latency
/// while caching c ∈ {0, 1, 3, 5, 7, 9} chunks per object in an
/// effectively infinite cache, from Frankfurt and Sydney.
pub fn fig2(deployment: &Deployment, params: &ExperimentParams) -> Table {
    let chunk_counts = [0usize, 1, 3, 5, 7, 9];
    let mut table = Table::new(
        "Figure 2 — avg read latency (ms) vs chunks cached (infinite cache)",
        std::iter::once("chunks".to_string())
            .chain(["Frankfurt", "Sydney"].map(String::from))
            .collect(),
    );
    for &c in &chunk_counts {
        let mut row = vec![c.to_string()];
        for region in [FRANKFURT, SYDNEY] {
            let policy = if c == 0 {
                PolicySpec::Backend
            } else {
                PolicySpec::Lru(c)
            };
            let config = RunConfig {
                client_region: region,
                policy,
                // "enough memory to accommodate our complete working set,
                // in practice emulating an infinite cache" (500 MB).
                cache_mb: 500.0,
                workload: params.workload(zipf_default()),
                clients: 2,
                max_hedges: 0,
                seed: 0xF160 + c as u64,
            };
            let result = run_averaged(deployment, &config, params.runs);
            row.push(format!("{:.0}", result.mean_latency_ms));
        }
        table.push_row(row);
    }
    table
}

/// Table I — per-region chunk-read latency as estimated by Agar's
/// region manager from Frankfurt during its warm-up phase.
pub fn table1(deployment: &Deployment, _params: &ExperimentParams) -> Table {
    let mut manager = RegionManager::new(FRANKFURT, deployment.preset.topology.clone());
    let mut rng = StdRng::seed_from_u64(0x7AB1);
    manager.warm_up(
        &deployment.preset.latency,
        deployment.scale.chunk_size(),
        10,
        &mut rng,
    );
    let mut table = Table::new(
        "Table I — chunk read latency estimated from Frankfurt (ms)",
        SIX_REGION_NAMES.iter().map(|s| s.to_string()).collect(),
    );
    table.push_row(
        deployment
            .preset
            .topology
            .ids()
            .map(|r| format!("{:.0}", manager.estimate(r).as_secs_f64() * 1e3))
            .collect(),
    );
    table
}

fn comparison_policies() -> Vec<PolicySpec> {
    let mut policies = vec![PolicySpec::Agar];
    for c in [1usize, 3, 5, 7, 9] {
        policies.push(PolicySpec::Lru(c));
    }
    for c in [1usize, 3, 5, 7, 9] {
        policies.push(PolicySpec::Lfu(c));
    }
    policies.push(PolicySpec::Backend);
    policies
}

/// Shared runner for Figures 6 & 7: every policy at both client regions.
/// Returns (policy label, region name, mean latency ms, hit ratio).
pub fn policy_comparison(
    deployment: &Deployment,
    params: &ExperimentParams,
) -> Vec<(String, String, f64, f64)> {
    let mut rows = Vec::new();
    for (region, name) in [(FRANKFURT, "Frankfurt"), (SYDNEY, "Sydney")] {
        for policy in comparison_policies() {
            let config = RunConfig {
                client_region: region,
                policy,
                cache_mb: 10.0,
                workload: params.workload(zipf_default()),
                clients: 2,
                max_hedges: 0,
                seed: 0xF166,
            };
            let result = run_averaged(deployment, &config, params.runs);
            eprintln!(
                "  [fig6/7] {name:<10} {:<8} {:7.0} ms  hit {:4.1}%",
                result.label,
                result.mean_latency_ms,
                result.hit_ratio * 100.0
            );
            rows.push((
                result.label.clone(),
                name.to_string(),
                result.mean_latency_ms,
                result.hit_ratio,
            ));
        }
    }
    rows
}

/// Figure 6 — average read latency: Agar vs LRU-c vs LFU-c vs Backend,
/// Frankfurt and Sydney.
pub fn fig6(rows: &[(String, String, f64, f64)]) -> Table {
    let mut table = Table::new(
        "Figure 6 — avg read latency (ms), Zipf 1.1, 10 MB cache",
        vec!["policy".into(), "Frankfurt".into(), "Sydney".into()],
    );
    let labels: Vec<&String> = {
        let mut seen = Vec::new();
        for (label, _, _, _) in rows {
            if !seen.contains(&label) {
                seen.push(label);
            }
        }
        seen
    };
    for label in labels {
        let get = |region: &str| {
            rows.iter()
                .find(|(l, r, _, _)| l == label && r == region)
                .map(|&(_, _, ms, _)| format!("{ms:.0}"))
                .unwrap_or_default()
        };
        table.push_row(vec![label.clone(), get("Frankfurt"), get("Sydney")]);
    }
    table
}

/// Figure 7 — hit ratio (total + partial) for the same runs as Fig. 6.
pub fn fig7(rows: &[(String, String, f64, f64)]) -> Table {
    let mut table = Table::new(
        "Figure 7 — hit ratio (%), Zipf 1.1, 10 MB cache",
        vec!["policy".into(), "Frankfurt".into(), "Sydney".into()],
    );
    for (label, _, _, _) in rows.iter().filter(|(_, r, _, _)| r == "Frankfurt") {
        if label == "Backend" {
            continue; // the backend has no cache
        }
        let get = |region: &str| {
            rows.iter()
                .find(|(l, r, _, _)| l == label && r == region)
                .map(|&(_, _, _, hr)| format!("{:.1}", hr * 100.0))
                .unwrap_or_default()
        };
        table.push_row(vec![label.clone(), get("Frankfurt"), get("Sydney")]);
    }
    table
}

/// Figure 8a — average latency while the cache size varies
/// (0/5/10/20/50/100 MB), Frankfurt, Zipf 1.1.
pub fn fig8a(deployment: &Deployment, params: &ExperimentParams) -> Table {
    let policies = [
        PolicySpec::Agar,
        PolicySpec::Lru(5),
        PolicySpec::Lru(9),
        PolicySpec::Lfu(5),
        PolicySpec::Lfu(9),
    ];
    let sizes = [0.0f64, 5.0, 10.0, 20.0, 50.0, 100.0];
    let mut table = Table::new(
        "Figure 8a — avg read latency (ms) vs cache size (Frankfurt, Zipf 1.1)",
        std::iter::once("cache MB".to_string())
            .chain(policies.iter().map(|p| p.label()))
            .collect(),
    );
    for &mb in &sizes {
        let mut row = vec![format!("{mb:.0}")];
        for policy in policies {
            let ms = if mb == 0.0 {
                // A 0 MB cache degenerates to the backend for everyone.
                let config = RunConfig {
                    client_region: FRANKFURT,
                    policy: PolicySpec::Backend,
                    cache_mb: 0.0,
                    workload: params.workload(zipf_default()),
                    clients: 2,
                    max_hedges: 0,
                    seed: 0xF18A,
                };
                run_averaged(deployment, &config, params.runs).mean_latency_ms
            } else {
                let config = RunConfig {
                    client_region: FRANKFURT,
                    policy,
                    cache_mb: mb,
                    workload: params.workload(zipf_default()),
                    clients: 2,
                    max_hedges: 0,
                    seed: 0xF18A,
                };
                run_averaged(deployment, &config, params.runs).mean_latency_ms
            };
            eprintln!("  [fig8a] {:>5} MB {:<6} {:7.0} ms", mb, policy.label(), ms);
            row.push(format!("{ms:.0}"));
        }
        table.push_row(row);
    }
    table
}

/// Figure 8b — average latency while the workload varies (uniform and
/// Zipf skews 0.2–1.4), Frankfurt, 10 MB cache.
pub fn fig8b(deployment: &Deployment, params: &ExperimentParams) -> Table {
    let policies = [
        PolicySpec::Backend,
        PolicySpec::Agar,
        PolicySpec::Lru(5),
        PolicySpec::Lru(9),
        PolicySpec::Lfu(5),
        PolicySpec::Lfu(9),
    ];
    let workloads: Vec<(String, Distribution)> =
        std::iter::once(("uniform".to_string(), Distribution::Uniform))
            .chain(
                [0.2f64, 0.5, 0.8, 0.9, 1.0, 1.1, 1.4]
                    .into_iter()
                    .map(|skew| (format!("zipf {skew}"), Distribution::Zipfian { skew })),
            )
            .collect();

    let mut table = Table::new(
        "Figure 8b — avg read latency (ms) vs workload (Frankfurt, 10 MB cache)",
        std::iter::once("workload".to_string())
            .chain(policies.iter().map(|p| p.label()))
            .collect(),
    );
    for (name, dist) in &workloads {
        let mut row = vec![name.clone()];
        for policy in policies {
            let config = RunConfig {
                client_region: FRANKFURT,
                policy,
                cache_mb: 10.0,
                workload: params.workload(*dist),
                clients: 2,
                max_hedges: 0,
                seed: 0xF18B,
            };
            let result = run_averaged(deployment, &config, params.runs);
            eprintln!(
                "  [fig8b] {name:<9} {:<8} {:7.0} ms",
                result.label, result.mean_latency_ms
            );
            row.push(format!("{:.0}", result.mean_latency_ms));
        }
        table.push_row(row);
    }
    table
}

/// Figure 9 — cumulative popularity of the top-50 objects under Zipf
/// skews 0.5 / 0.8 / 1.1 / 1.4 (exact CDF of the generators used in
/// every other experiment).
pub fn fig9(deployment: &Deployment, _params: &ExperimentParams) -> Table {
    let skews = [0.5f64, 0.8, 1.1, 1.4];
    let mut table = Table::new(
        "Figure 9 — cumulative % of requests vs top-N objects",
        std::iter::once("top-N".to_string())
            .chain(skews.iter().map(|s| format!("zipf {s}")))
            .collect(),
    );
    let cdfs: Vec<_> = skews
        .iter()
        .map(|&s| {
            zipf_popularity_cdf(deployment.scale.object_count, s, 50).expect("valid CDF parameters")
        })
        .collect();
    for top in [1usize, 2, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50] {
        let mut row = vec![top.to_string()];
        for cdf in &cdfs {
            row.push(format!("{:.1}", cdf[top - 1].cumulative_fraction * 100.0));
        }
        table.push_row(row);
    }
    table
}

/// Figure 10 — how Agar fills its cache: fraction of cache bytes
/// allocated to objects cached with each chunk count, for
/// {Frankfurt, Sydney} x {5 MB, 10 MB}.
pub fn fig10(deployment: &Deployment, params: &ExperimentParams) -> Table {
    let scenarios = [
        (FRANKFURT, "Frankfurt", 10.0f64),
        (FRANKFURT, "Frankfurt", 5.0),
        (SYDNEY, "Sydney", 10.0),
        (SYDNEY, "Sydney", 5.0),
    ];
    let mut table = Table::new(
        "Figure 10 — Agar cache contents (% of cached chunks by chunks-per-object)",
        std::iter::once("scenario".to_string())
            .chain((1..=9).map(|c| format!("{c}-chunk")))
            .collect(),
    );
    for (region, name, mb) in scenarios {
        let config = RunConfig {
            client_region: region,
            policy: PolicySpec::Agar,
            cache_mb: mb,
            workload: params.workload(zipf_default()),
            clients: 2,
            max_hedges: 0,
            seed: 0xF1_10,
        };
        let result = run_once(deployment, &config);
        let mut per_count: BTreeMap<usize, usize> = BTreeMap::new();
        let mut total = 0usize;
        for chunks in result.cache_contents.values() {
            *per_count.entry(chunks.len()).or_insert(0) += chunks.len();
            total += chunks.len();
        }
        let mut row = vec![format!("{name} {mb:.0}MB")];
        for c in 1..=9usize {
            let share = per_count
                .get(&c)
                .map(|&chunks| 100.0 * chunks as f64 / total.max(1) as f64)
                .unwrap_or(0.0);
            row.push(format!("{share:.0}"));
        }
        eprintln!("  [fig10] {name} {mb:.0}MB: {per_count:?}");
        table.push_row(row);
    }
    table
}

/// Ablation — the §II-D claim: the dynamic program vs the greedy
/// heuristic vs early-terminated DP, end to end (mean latency at
/// Frankfurt) and solver-value on the same live statistics.
pub fn ablation(deployment: &Deployment, params: &ExperimentParams) -> Table {
    use agar::{greedy, CachingClient, KnapsackSolver};

    let mut table = Table::new(
        "Ablation — knapsack solver variants (Frankfurt, Zipf 1.1, 10 MB)",
        vec![
            "variant".into(),
            "mean latency (ms)".into(),
            "solver value".into(),
        ],
    );

    // End-to-end latency is the same harness run; the solver variants
    // differ only inside the cache manager, so compare their *planned
    // values* on statistics captured from a live Agar node, plus the
    // DP's end-to-end latency as the reference row.
    let config = RunConfig {
        client_region: FRANKFURT,
        policy: PolicySpec::Agar,
        cache_mb: 10.0,
        workload: params.workload(zipf_default()),
        clients: 2,
        max_hedges: 0,
        seed: 0xAB1A,
    };
    let dp_run = run_averaged(deployment, &config, params.runs);

    // Re-derive the option sets the node would have seen: popularity
    // from a workload pass, estimates from a warmed region manager.
    let mut monitor = agar::RequestMonitor::new();
    let stream = params
        .workload(zipf_default())
        .stream(0xAB1A)
        .expect("valid workload");
    for op in stream {
        monitor.record_read(agar_ec::ObjectId::new(op.key()));
    }
    monitor.end_epoch();
    let mut region_manager = RegionManager::new(FRANKFURT, deployment.preset.topology.clone());
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    region_manager.warm_up(
        &deployment.preset.latency,
        deployment.scale.chunk_size(),
        5,
        &mut rng,
    );
    let manager = agar::CacheManager::new(deployment.scale.cache_bytes(10.0));
    let options = manager.build_options(
        &monitor,
        &region_manager,
        &deployment.backend,
        deployment.preset.cache_read,
    );
    let capacity = (deployment.scale.cache_bytes(10.0) / deployment.scale.chunk_size()) as u32;

    let dp_value = KnapsackSolver::new().populate(&options, capacity).value();
    let single_pass = KnapsackSolver::new()
        .with_passes(1)
        .populate(&options, capacity)
        .value();
    let early = KnapsackSolver::new()
        .with_early_termination(5)
        .populate(&options, capacity)
        .value();
    let greedy_value = greedy(&options, capacity).value();

    table.push_row(vec![
        "DP (2 passes)".into(),
        format!("{:.0}", dp_run.mean_latency_ms),
        format!("{dp_value:.0}"),
    ]);
    table.push_row(vec![
        "DP (1 pass, paper literal)".into(),
        "-".into(),
        format!("{single_pass:.0}"),
    ]);
    table.push_row(vec![
        "DP (early termination)".into(),
        "-".into(),
        format!("{early:.0}"),
    ]);
    table.push_row(vec![
        "Greedy (density)".into(),
        "-".into(),
        format!("{greedy_value:.0}"),
    ]);

    // Keep the borrow checker honest about the unused import warning.
    let _ = |c: &dyn CachingClient| c.label();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Deployment, ExperimentParams) {
        let mut params = ExperimentParams::tiny();
        params.operations = 120;
        (Deployment::build(params.scale), params)
    }

    #[test]
    fn fig2_shape_nonlinear_and_monotone_tail() {
        let (deployment, mut params) = tiny();
        params.operations = 200;
        let table = fig2(&deployment, &params);
        assert_eq!(table.len(), 6);
        let col = |row: &[String], i: usize| row[i].parse::<f64>().unwrap();
        let rows: Vec<Vec<String>> = table.rows().map(<[String]>::to_vec).collect();
        // c = 0 is slowest, c = 9 is fastest, for both regions.
        for region in [1usize, 2] {
            assert!(col(&rows[0], region) > col(&rows[5], region));
            // 7 chunks is already close to 9 (diminishing returns).
            let seven = col(&rows[4], region);
            let nine = col(&rows[5], region);
            assert!(seven < nine * 2.2, "c=7 {seven} vs c=9 {nine}");
        }
    }

    #[test]
    fn table1_row_matches_topology() {
        let (deployment, params) = tiny();
        let table = table1(&deployment, &params);
        assert_eq!(table.len(), 1);
        let row: Vec<String> = table.rows().next().unwrap().to_vec();
        assert_eq!(row.len(), 6);
        // Frankfurt's own estimate is the smallest.
        let values: Vec<f64> = row.iter().map(|v| v.parse().unwrap()).collect();
        assert!(values[0] < values[5]);
    }

    #[test]
    fn fig9_is_monotone_in_skew_and_top() {
        let (deployment, params) = tiny();
        let table = fig9(&deployment, &params);
        let rows: Vec<Vec<f64>> = table
            .rows()
            .map(|r| r.iter().map(|v| v.parse().unwrap()).collect())
            .collect();
        for row in &rows {
            // Higher skew -> more mass in the same top-N.
            assert!(row[4] >= row[1]);
        }
        for pair in rows.windows(2) {
            // More objects -> more cumulative mass.
            assert!(pair[1][1] >= pair[0][1]);
        }
    }
}
