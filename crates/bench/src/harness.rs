//! The experiment harness: deployment construction and the closed-loop
//! simulated YCSB driver (paper §V-A).
//!
//! Each run deploys clients in one region against the six-region
//! backend, drives a seeded workload closed-loop (a client issues its
//! next operation when the previous one completes — the paper runs two
//! such clients per YCSB instance), fires the 30-second reconfiguration
//! ticks on the simulated clock, and aggregates latency and hit-ratio
//! statistics.

use crate::table::{LatencyHistogram, LatencySummary};
use agar::{
    AgarNode, AgarSettings, BackendOnlyClient, BaselinePolicy, CachingClient, FixedChunksClient,
};
use agar_ec::{CodingParams, ObjectId};
use agar_net::latency::LatencyModel;
use agar_net::presets::{aws_six_regions, paper_table_one, GeoPreset};
use agar_net::sim::Simulation;
use agar_net::{LatencySpike, RegionId, SimTime, SpikedLatency};
use agar_store::{populate, Backend, RoundRobin};
use agar_workload::{Op, StragglerScenario, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Experiment scale: the paper runs 300 × 1 MB objects; tests can run
/// the identical pipeline over smaller objects (the latency matrix is
/// re-anchored to the actual chunk size, so results are scale-free).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Size of each object in bytes.
    pub object_size: usize,
    /// Number of objects in the catalogue.
    pub object_count: u64,
}

impl Scale {
    /// The paper's full scale: 300 × 1 MB.
    pub fn paper() -> Self {
        Scale {
            object_size: 1_000_000,
            object_count: 300,
        }
    }

    /// A fast scale for unit/integration tests: the paper's 300-object
    /// catalogue over 9 KB objects (latencies are re-anchored to the
    /// chunk size, so shapes are preserved).
    pub fn tiny() -> Self {
        Scale {
            object_size: 9_000,
            object_count: 300,
        }
    }

    /// Cache capacity in bytes for a paper-units "cache of N MB" (the
    /// paper's MB double as object counts because objects are 1 MB).
    pub fn cache_bytes(&self, paper_mb: f64) -> usize {
        (paper_mb * self.object_size as f64) as usize
    }

    /// The chunk size under RS(9, 3).
    pub fn chunk_size(&self) -> usize {
        CodingParams::paper_default().chunk_size(self.object_size)
    }
}

/// Which WAN latency profile a deployment uses. The paper provides two
/// inconsistent latency pictures; both are available:
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LatencyProfile {
    /// Calibrated to the *measured* Figure 2 curve shapes (default).
    /// Latency spread between mid-distance regions is modest, so Agar's
    /// structural edge over the best fixed policy is a few percent.
    #[default]
    Calibrated,
    /// The paper's illustrative Table I numbers (3 400 ms Tokyo,
    /// 4 600 ms Sydney from Frankfurt). The much wider spread makes
    /// partial caching far more valuable and reproduces the paper's
    /// double-digit Agar margins.
    PaperTable1,
}

/// A populated six-region deployment shared by many runs (reads are
/// side-effect-free on the backend, so one backend serves all policies).
pub struct Deployment {
    /// The geo preset (topology + calibrated latencies).
    pub preset: GeoPreset,
    /// The populated erasure-coded store.
    pub backend: Arc<Backend>,
    /// The scale it was populated at.
    pub scale: Scale,
}

impl Deployment {
    /// Builds and populates the paper's Figure 1 deployment at the given
    /// scale, with the default (Figure-2-calibrated) latency profile.
    ///
    /// # Panics
    ///
    /// Panics if population fails (programming error: the preset is
    /// internally consistent).
    pub fn build(scale: Scale) -> Self {
        Self::build_with_profile(scale, LatencyProfile::Calibrated)
    }

    /// Builds a deployment with an explicit latency profile.
    ///
    /// # Panics
    ///
    /// Panics if population fails (programming error: the preset is
    /// internally consistent).
    pub fn build_with_profile(scale: Scale, profile: LatencyProfile) -> Self {
        let mut preset = match profile {
            LatencyProfile::Calibrated => aws_six_regions(),
            LatencyProfile::PaperTable1 => paper_table_one(),
        };
        // Anchor the latency matrix at this scale's chunk size so the
        // calibrated per-chunk latencies hold verbatim at any scale.
        preset.latency = preset
            .latency
            .clone()
            .with_nominal_bytes(scale.chunk_size());
        let backend = Backend::new(
            preset.topology.clone(),
            Arc::new(preset.latency.clone()),
            CodingParams::paper_default(),
            Box::new(RoundRobin),
        )
        .expect("preset deployment is valid");
        let mut rng = StdRng::seed_from_u64(0xA6A2);
        populate(&backend, scale.object_count, scale.object_size, &mut rng)
            .expect("population cannot fail on a healthy deployment");
        Deployment {
            preset,
            backend: Arc::new(backend),
            scale,
        }
    }

    /// Builds the calibrated deployment and overlays a straggler/fault
    /// scenario: slowdown spikes wrap the latency model (samples spike,
    /// planner-visible means stay optimistic — exactly the blind spot
    /// hedging covers), and dead regions are failed outright. Flaky
    /// regions are *not* applied here: drivers schedule their fail/heal
    /// cycle on the simulated clock (see the `tail` experiment).
    ///
    /// # Panics
    ///
    /// Panics if population fails or a spike descriptor is invalid
    /// (programming errors in the scenario family).
    pub fn build_with_scenario(scale: Scale, scenario: &StragglerScenario) -> Self {
        let mut preset = aws_six_regions();
        preset.latency = preset
            .latency
            .clone()
            .with_nominal_bytes(scale.chunk_size());
        let spikes: Vec<LatencySpike> = scenario
            .spikes
            .iter()
            .map(|s| LatencySpike {
                region: RegionId::new(s.region),
                every: s.every,
                factor: s.factor,
            })
            .collect();
        let model: Arc<dyn LatencyModel> = if spikes.is_empty() {
            Arc::new(preset.latency.clone())
        } else {
            Arc::new(SpikedLatency::new(Arc::new(preset.latency.clone()), spikes))
        };
        let backend = Backend::new(
            preset.topology.clone(),
            model,
            CodingParams::paper_default(),
            Box::new(RoundRobin),
        )
        .expect("preset deployment is valid");
        let mut rng = StdRng::seed_from_u64(0xA6A2);
        populate(&backend, scale.object_count, scale.object_size, &mut rng)
            .expect("population cannot fail on a healthy deployment");
        for &dead in &scenario.dead {
            backend.fail_region(RegionId::new(dead));
        }
        Deployment {
            preset,
            backend: Arc::new(backend),
            scale,
        }
    }

    /// Region id by name (panics on unknown name, as in [`GeoPreset`]).
    pub fn region(&self, name: &str) -> RegionId {
        self.preset.region(name)
    }
}

/// Which caching client a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicySpec {
    /// Agar with its knapsack-driven configuration.
    Agar,
    /// LRU caching a fixed number of chunks per object.
    Lru(usize),
    /// LFU (frequency proxy + periodic reconfiguration), fixed chunks.
    Lfu(usize),
    /// No cache: read every chunk from the backend.
    Backend,
}

impl PolicySpec {
    /// Report label, matching the paper's figure axes.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Agar => "Agar".into(),
            PolicySpec::Lru(c) => format!("LRU-{c}"),
            PolicySpec::Lfu(c) => format!("LFU-{c}"),
            PolicySpec::Backend => "Backend".into(),
        }
    }
}

/// One experiment run's parameters.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Where the clients (and the cache) live.
    pub client_region: RegionId,
    /// The caching policy under test.
    pub policy: PolicySpec,
    /// Cache size in paper MB units (1 MB = one object's worth).
    pub cache_mb: f64,
    /// The workload to drive.
    pub workload: WorkloadSpec,
    /// Number of closed-loop clients (the paper runs 2).
    pub clients: usize,
    /// Maximum hedge chunks Δ per read (Agar policy only; 0 disables
    /// hedging and reproduces the unhedged engine byte for byte).
    pub max_hedges: usize,
    /// RNG seed for this run.
    pub seed: u64,
}

impl RunConfig {
    /// The paper's default run: 2 clients, Zipf 1.1, 1 000 reads, 10 MB
    /// cache.
    pub fn paper_default(client_region: RegionId, policy: PolicySpec) -> Self {
        RunConfig {
            client_region,
            policy,
            cache_mb: 10.0,
            workload: WorkloadSpec::paper_default(),
            clients: 2,
            max_hedges: 0,
            seed: 1,
        }
    }
}

/// Aggregated metrics from one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The policy label.
    pub label: String,
    /// Mean end-to-end read latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Percentile summary of every per-operation latency in the run
    /// (pooled across batches for [`run_averaged`]).
    pub latency: LatencySummary,
    /// The paper's Figure 7 hit ratio: (total + partial hits) / reads.
    pub hit_ratio: f64,
    /// Object reads fully served by the cache.
    pub total_hits: u64,
    /// Object reads partially served by the cache.
    pub partial_hits: u64,
    /// Operations completed.
    pub operations: usize,
    /// Final cache contents (object → cached chunk indices).
    pub cache_contents: BTreeMap<ObjectId, Vec<u8>>,
    /// Simulated wall-clock duration of the run.
    pub sim_duration: Duration,
}

fn make_client(
    deployment: &Deployment,
    config: &RunConfig,
) -> Arc<dyn CachingClient + Send + Sync> {
    let cache_bytes = deployment.scale.cache_bytes(config.cache_mb);
    let preset = &deployment.preset;
    match config.policy {
        PolicySpec::Agar => {
            let mut settings = AgarSettings::paper_default(cache_bytes);
            settings.cache_read = preset.cache_read;
            settings.client_overhead = preset.client_overhead;
            settings.max_hedges = config.max_hedges;
            // §VI: the paper stops the dynamic program a fixed number of
            // iterations after a full-capacity configuration first
            // appears, so reconfiguration cost depends on the cache
            // size, not the catalogue. Enable it for large caches where
            // the exact run would dominate the experiment.
            let capacity_chunks = cache_bytes / deployment.scale.chunk_size().max(1);
            if capacity_chunks >= 200 {
                settings.solver = agar::KnapsackSolver::new()
                    .with_early_termination(30)
                    .with_passes(1);
            }
            Arc::new(
                AgarNode::new(
                    config.client_region,
                    Arc::clone(&deployment.backend),
                    settings,
                    config.seed ^ 0x5EED,
                )
                .expect("paper settings are valid"),
            )
        }
        PolicySpec::Lru(c) | PolicySpec::Lfu(c) => {
            // The paper's LFU baseline reconfigures every 30 s from its
            // frequency proxy — the epoch-based top-N variant.
            let policy = match config.policy {
                PolicySpec::Lru(_) => BaselinePolicy::Lru,
                _ => BaselinePolicy::LfuEpoch,
            };
            Arc::new(
                FixedChunksClient::new(
                    config.client_region,
                    Arc::clone(&deployment.backend),
                    policy,
                    c,
                    cache_bytes,
                    preset.cache_read,
                    preset.client_overhead,
                    config.seed ^ 0x5EED,
                )
                .expect("chunk counts are validated by the caller"),
            )
        }
        PolicySpec::Backend => Arc::new(BackendOnlyClient::new(
            config.client_region,
            Arc::clone(&deployment.backend),
            preset.client_overhead,
            config.seed ^ 0x5EED,
        )),
    }
}

struct RunState {
    client: Arc<dyn CachingClient + Send + Sync>,
    pending: VecDeque<Op>,
    latencies: Vec<Duration>,
    in_flight: usize,
    errors: usize,
}

fn client_loop(state: &mut RunState, sched: &mut agar_net::Scheduler<RunState>) {
    let Some(op) = state.pending.pop_front() else {
        state.in_flight -= 1;
        return;
    };
    let object = ObjectId::new(op.key());
    let latency = match state.client.read(object) {
        Ok(metrics) => metrics.latency,
        Err(_) => {
            state.errors += 1;
            // Count a failed op as a backend-style slow op so closed-loop
            // pacing continues.
            Duration::from_secs(2)
        }
    };
    state.latencies.push(latency);
    sched.schedule_in(latency, client_loop);
}

fn reconfiguration_tick(state: &mut RunState, sched: &mut agar_net::Scheduler<RunState>) {
    state.client.maybe_reconfigure(sched.now());
    if state.in_flight > 0 {
        sched.schedule_in(Duration::from_secs(1), reconfiguration_tick);
    }
}

/// Drives one batch of operations against an existing client, starting
/// the simulated clock at `start` (so epochs continue across batches).
fn run_batch(
    deployment: &Deployment,
    config: &RunConfig,
    client: &Arc<dyn CachingClient + Send + Sync>,
    start: SimTime,
    seed: u64,
) -> (Vec<Duration>, SimTime) {
    let mut workload = config.workload.clone();
    workload.object_count = workload.object_count.min(deployment.scale.object_count);
    workload.object_size = deployment.scale.object_size;
    let ops: VecDeque<Op> = workload
        .stream(seed)
        .expect("workload spec validated")
        .collect();
    let operations = ops.len();

    let mut sim = Simulation::new(RunState {
        client: Arc::clone(client),
        pending: ops,
        latencies: Vec::with_capacity(operations),
        in_flight: config.clients.max(1),
        errors: 0,
    });
    // Anchor the reconfiguration clock, then tick every second.
    sim.schedule_at(start, |state: &mut RunState, sched| {
        state.client.maybe_reconfigure(sched.now());
        sched.schedule_in(Duration::from_secs(1), reconfiguration_tick);
    });
    for _ in 0..config.clients.max(1) {
        sim.schedule_at(start, client_loop);
    }
    let end = sim.run();
    (sim.into_world().latencies, end)
}

fn mean_ms(latencies: &[Duration]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / latencies.len() as f64
}

/// Executes one closed-loop run (fresh client, cold cache) on the
/// simulated clock.
///
/// # Panics
///
/// Panics on invalid workload specifications (caller bugs).
pub fn run_once(deployment: &Deployment, config: &RunConfig) -> RunResult {
    let client = make_client(deployment, config);
    let (latencies, end) = run_batch(deployment, config, &client, SimTime::ZERO, config.seed);
    let stats = client.cache_stats();
    let mut histogram = LatencyHistogram::new();
    latencies.iter().for_each(|&l| histogram.record(l));
    RunResult {
        label: config.policy.label(),
        mean_latency_ms: mean_ms(&latencies),
        latency: histogram.summary(),
        hit_ratio: stats.object_hit_ratio(),
        total_hits: stats.object_total_hits(),
        partial_hits: stats.object_partial_hits(),
        operations: latencies.len(),
        cache_contents: client.cache_contents(),
        sim_duration: end.saturating_duration_since(SimTime::ZERO),
    }
}

/// Averages `runs` consecutive batches against one live deployment,
/// exactly like the paper's methodology: YCSB is re-run five times
/// against deployed caches, so only the first batch is cold — cache
/// state, popularity statistics and configurations persist.
pub fn run_averaged(deployment: &Deployment, config: &RunConfig, runs: usize) -> RunResult {
    assert!(runs > 0, "need at least one run");
    let client = make_client(deployment, config);
    let mut start = SimTime::ZERO;
    let mut batch_means = Vec::with_capacity(runs);
    let mut batch_ratios = Vec::with_capacity(runs);
    let mut previous_stats = client.cache_stats();
    let mut operations = 0;
    let mut histogram = LatencyHistogram::new();
    for i in 0..runs {
        let seed = config.seed.wrapping_add(i as u64 * 7919);
        let (latencies, end) = run_batch(deployment, config, &client, start, seed);
        operations = latencies.len();
        batch_means.push(mean_ms(&latencies));
        latencies.iter().for_each(|&l| histogram.record(l));
        let now = client.cache_stats();
        batch_ratios.push(now.delta_since(&previous_stats).object_hit_ratio());
        previous_stats = now;
        start = end;
    }
    let n = runs as f64;
    let stats = client.cache_stats();
    RunResult {
        label: config.policy.label(),
        mean_latency_ms: batch_means.iter().sum::<f64>() / n,
        latency: histogram.summary(),
        hit_ratio: batch_ratios.iter().sum::<f64>() / n,
        total_hits: stats.object_total_hits(),
        partial_hits: stats.object_partial_hits(),
        operations,
        cache_contents: client.cache_contents(),
        sim_duration: start.saturating_duration_since(SimTime::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_net::presets::FRANKFURT;

    fn quick_workload(ops: usize) -> WorkloadSpec {
        let mut w = WorkloadSpec::paper_default();
        w.operations = ops;
        w
    }

    #[test]
    fn scale_conversions() {
        let scale = Scale::paper();
        assert_eq!(scale.cache_bytes(10.0), 10_000_000);
        assert_eq!(scale.chunk_size(), 111_112);
        let tiny = Scale::tiny();
        assert_eq!(tiny.cache_bytes(1.0), 9_000);
        assert_eq!(tiny.chunk_size(), 1_000);
    }

    #[test]
    fn backend_run_completes_all_ops() {
        let deployment = Deployment::build(Scale::tiny());
        let mut config = RunConfig::paper_default(FRANKFURT, PolicySpec::Backend);
        config.workload = quick_workload(50);
        let result = run_once(&deployment, &config);
        assert_eq!(result.operations, 50);
        assert_eq!(result.hit_ratio, 0.0);
        assert!(result.mean_latency_ms > 500.0, "{}", result.mean_latency_ms);
        assert!(result.sim_duration > Duration::ZERO);
    }

    #[test]
    fn lru_run_gets_hits_and_beats_backend() {
        let deployment = Deployment::build(Scale::tiny());
        let mut backend_cfg = RunConfig::paper_default(FRANKFURT, PolicySpec::Backend);
        backend_cfg.workload = quick_workload(200);
        let mut lru_cfg = RunConfig::paper_default(FRANKFURT, PolicySpec::Lru(5));
        lru_cfg.workload = quick_workload(200);

        let backend = run_once(&deployment, &backend_cfg);
        let lru = run_once(&deployment, &lru_cfg);
        assert!(lru.hit_ratio > 0.2, "hit ratio {}", lru.hit_ratio);
        assert!(
            lru.mean_latency_ms < backend.mean_latency_ms,
            "lru {} vs backend {}",
            lru.mean_latency_ms,
            backend.mean_latency_ms
        );
        assert_eq!(lru.label, "LRU-5");
    }

    #[test]
    fn agar_run_reconfigures_and_caches() {
        let deployment = Deployment::build(Scale::tiny());
        let mut config = RunConfig::paper_default(FRANKFURT, PolicySpec::Agar);
        config.workload = quick_workload(400);
        let result = run_once(&deployment, &config);
        assert!(result.hit_ratio > 0.0, "Agar should get hits");
        assert!(!result.cache_contents.is_empty());
        // Closed loop: 400 ops at ~0.2-1.1 s across 2 clients spans
        // minutes of simulated time — enough for several epochs.
        assert!(result.sim_duration > Duration::from_secs(60));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let deployment = Deployment::build(Scale::tiny());
        let mut config = RunConfig::paper_default(FRANKFURT, PolicySpec::Lfu(5));
        config.workload = quick_workload(150);
        let a = run_once(&deployment, &config);
        let b = run_once(&deployment, &config);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
        assert_eq!(a.hit_ratio, b.hit_ratio);
        config.seed += 1;
        let c = run_once(&deployment, &config);
        assert_ne!(a.mean_latency_ms, c.mean_latency_ms);
    }

    #[test]
    fn averaging_smooths_runs() {
        let deployment = Deployment::build(Scale::tiny());
        let mut config = RunConfig::paper_default(FRANKFURT, PolicySpec::Lru(3));
        config.workload = quick_workload(60);
        let avg = run_averaged(&deployment, &config, 3);
        assert_eq!(avg.operations, 60);
        assert!(avg.mean_latency_ms > 0.0);
    }

    #[test]
    fn run_result_reports_percentiles() {
        let deployment = Deployment::build(Scale::tiny());
        let mut config = RunConfig::paper_default(FRANKFURT, PolicySpec::Backend);
        config.workload = quick_workload(50);
        let result = run_once(&deployment, &config);
        assert_eq!(result.latency.samples, 50);
        assert!((result.latency.mean_ms - result.mean_latency_ms).abs() < 1e-9);
        assert!(result.latency.p50_ms <= result.latency.p99_ms);
        assert!(result.latency.p99_ms <= result.latency.max_ms);
    }

    #[test]
    fn scenario_deployment_spikes_the_tail() {
        let calm = Deployment::build_with_scenario(Scale::tiny(), &StragglerScenario::calm());
        let spiky =
            Deployment::build_with_scenario(Scale::tiny(), &StragglerScenario::slow_spikes());
        let mut config = RunConfig::paper_default(FRANKFURT, PolicySpec::Backend);
        config.workload = quick_workload(120);
        let calm_run = run_once(&calm, &config);
        let spiky_run = run_once(&spiky, &config);
        assert!(
            spiky_run.latency.p99_ms > calm_run.latency.p99_ms * 2.0,
            "spikes should own the tail: {} vs {}",
            spiky_run.latency.p99_ms,
            calm_run.latency.p99_ms
        );
        // Means barely move: spikes are a tail phenomenon.
        assert!(spiky_run.mean_latency_ms < calm_run.mean_latency_ms * 3.0);
    }

    #[test]
    fn dead_region_deployment_still_serves_reads() {
        let deployment =
            Deployment::build_with_scenario(Scale::tiny(), &StragglerScenario::dead_region());
        let mut config = RunConfig::paper_default(FRANKFURT, PolicySpec::Agar);
        config.workload = quick_workload(60);
        config.max_hedges = 2;
        let result = run_once(&deployment, &config);
        assert_eq!(result.operations, 60);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(PolicySpec::Agar.label(), "Agar");
        assert_eq!(PolicySpec::Lru(7).label(), "LRU-7");
        assert_eq!(PolicySpec::Lfu(9).label(), "LFU-9");
        assert_eq!(PolicySpec::Backend.label(), "Backend");
    }
}
