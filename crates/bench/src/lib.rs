//! # agar-bench — the experiment harness for the Agar reproduction
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Artefact | Function | Binary invocation |
//! |---|---|---|
//! | Figure 2 (motivating experiment) | [`experiments::fig2`] | `experiments -- fig2` |
//! | Table I (latency estimates) | [`experiments::table1`] | `experiments -- table1` |
//! | Figure 6 (policy comparison, latency) | [`experiments::fig6`] | `experiments -- fig6` |
//! | Figure 7 (policy comparison, hit ratio) | [`experiments::fig7`] | `experiments -- fig7` |
//! | Figure 8a (cache-size sweep) | [`experiments::fig8a`] | `experiments -- fig8a` |
//! | Figure 8b (workload sweep) | [`experiments::fig8b`] | `experiments -- fig8b` |
//! | Figure 9 (popularity CDF) | [`experiments::fig9`] | `experiments -- fig9` |
//! | Figure 10 (cache contents) | [`experiments::fig10`] | `experiments -- fig10` |
//! | §II-D / §VI solver claims | [`experiments::ablation`] + Criterion benches | `experiments -- ablation`, `cargo bench` |
//! | Two-tier cache under catalogue pressure | [`tiers::tiers_results`] | `experiments -- tiers` |
//! | Failure handling under injected faults | [`chaos::chaos_results`] | `experiments -- chaos` |
//!
//! The harness drives closed-loop clients on a deterministic simulated
//! clock ([`harness::run_once`]), exactly mirroring the paper's two
//! YCSB clients per region and 30-second reconfiguration epochs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod cluster;
pub mod ec;
pub mod experiments;
pub mod harness;
pub mod mixed;
pub mod table;
pub mod tail;
pub mod throughput;
pub mod tiers;

pub use chaos::{
    chaos_results, chaos_results_with, chaos_run, chaos_run_with, chaos_table, ChaosParams,
    ChaosPolicy, ChaosResult, ChaosScenario,
};
pub use cluster::{
    build_warm_cluster, build_warm_cluster_with, build_warm_hedged_cluster, cluster_scaling,
    run_cluster_threads,
};
pub use ec::ec_table;
pub use harness::{
    run_averaged, run_once, Deployment, LatencyProfile, PolicySpec, RunConfig, RunResult, Scale,
};
pub use mixed::{mixed_table, mixed_table_with, run_mixed_cluster, MixedRun};
pub use table::{LatencyHistogram, LatencySummary, Table};
pub use tail::{
    tail_results, tail_results_with, tail_run, tail_run_with, tail_table, TailParams, TailResult,
};
pub use throughput::{build_warm_node, run_threads, throughput_scaling, ThroughputRun};
pub use tiers::{
    tiers_results, tiers_results_with, tiers_run, tiers_run_with, tiers_table, TiersParams,
    TiersResult,
};
