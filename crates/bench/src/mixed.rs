//! Mixed read/write cluster workloads: the `mixed` scenario.
//!
//! The read-oriented harnesses ([`throughput`](crate::throughput),
//! [`cluster`](crate::cluster)) measure how fast reads go; this module
//! measures what **writes cost them** — and proves the write path
//! honest while doing it. `M` client threads drive a `K`-node
//! [`ClusterRouter`] with a seeded
//! [`MixedStream`](agar_workload::MixedStream) (write ratio +
//! write-size distribution from `agar-workload`), and every read is
//! checked against a per-key write history:
//!
//! - each write's payload is a constant fill byte unique to that write
//!   of the key, registered *before* the write is issued and stamped
//!   with its backend version after it completes;
//! - a read must decode to exactly one registered payload (or the
//!   pristine populate pattern) — anything else is a **mixed-version
//!   decode** and counts as stale;
//! - a read that starts after version `v` of its key completed must
//!   return version ≥ `v` — anything older is a **stale read**.
//!
//! Both counters must be zero: the per-object write lease serialises
//! same-key writers, version validation keeps racing readers off
//! half-written state, and targeted invalidation keeps sibling caches
//! honest. The run also reports simulated read/write latency, lease
//! contention and invalidations-per-write (the targeted-invalidation
//! payoff: well under `members - 1`, the broadcast cost).

use crate::harness::Deployment;
use crate::table::{LatencyHistogram, LatencySummary};
use agar_cluster::ClusterRouter;
use agar_ec::ObjectId;
use agar_net::RegionId;
use agar_obs::{Labels, MetricsRegistry, ReadTrace, StageSummaries};
use agar_store::expected_payload;
use agar_workload::{Distribution, MixedOp, ReadWriteMix, WorkloadSpec, WriteSizeDist};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-key write history backing the stale-read checker (see the
/// module docs). Fill bytes are registered before the write is issued
/// (`inflight`) and moved to `completed` with their backend version
/// once it returns.
struct KeyHistory {
    /// `(version, fill byte, payload size)` per completed write, in
    /// completion order (versions may arrive out of append order;
    /// lookups scan).
    completed: Vec<(u64, u8, usize)>,
    /// `(fill byte, payload size)` of writes issued but not yet
    /// completed.
    inflight: Vec<(u8, usize)>,
    /// Monotonic per-key sequence used to derive distinct fill bytes.
    seq: u64,
}

/// What a decoded read corresponds to.
enum ReadVersion {
    /// A definite version: 1 for the pristine populate pattern, else
    /// the matching completed write's version.
    Version(u64),
    /// A write still in flight — concurrent with the read, never stale.
    InFlight,
    /// Matches nothing ever written: a mixed-version decode.
    Corrupt,
}

/// The shared checker: one [`KeyHistory`] per catalogue key.
struct StaleChecker {
    keys: Vec<Mutex<KeyHistory>>,
    base_size: usize,
}

impl StaleChecker {
    fn new(catalogue: u64, base_size: usize) -> Self {
        StaleChecker {
            keys: (0..catalogue)
                .map(|_| {
                    Mutex::new(KeyHistory {
                        completed: Vec::new(),
                        inflight: Vec::new(),
                        seq: 0,
                    })
                })
                .collect(),
            base_size,
        }
    }

    /// The newest completed version of `key` (1 = the populate write).
    /// A read snapshots this *before* it starts: whatever it decodes
    /// must be at least this new.
    fn floor(&self, key: u64) -> u64 {
        let history = self.keys[key as usize].lock().expect("checker poisoned");
        history
            .completed
            .iter()
            .map(|&(version, _, _)| version)
            .max()
            .unwrap_or(1)
    }

    /// Registers a write about to be issued; returns its fill byte.
    fn begin_write(&self, key: u64, size: usize) -> u8 {
        let mut history = self.keys[key as usize].lock().expect("checker poisoned");
        history.seq += 1;
        // Fill bytes cycle through 1..=250 (a byte only holds so
        // many), skipping 0 so leaked codec zero padding can never
        // masquerade as a legitimate payload. `classify` checks the
        // in-flight set before the completed set, matches on (byte,
        // length), and takes the NEWEST completed version per match,
        // so recycling only ever makes the check *lenient* — a
        // recycled byte can never turn a fresh read into a false
        // stale report; past 250 writes to one key, a genuinely stale
        // payload of identical length may escape under a recycled
        // byte's newer version.
        let fill = ((history.seq - 1) % 250) as u8 + 1;
        history.inflight.push((fill, size));
        fill
    }

    /// Completes a write: moves its fill byte to the completed set
    /// under the version the backend assigned.
    fn complete_write(&self, key: u64, fill: u8, size: usize, version: u64) {
        let mut history = self.keys[key as usize].lock().expect("checker poisoned");
        if let Some(pos) = history
            .inflight
            .iter()
            .position(|&entry| entry == (fill, size))
        {
            history.inflight.swap_remove(pos);
        }
        history.completed.push((version, fill, size));
    }

    /// Classifies a decoded payload for `key`. Matches require the
    /// fill byte AND the exact payload length — a truncated or
    /// padded all-fill decode must read as corrupt, not as the write
    /// it was torn from.
    fn classify(&self, key: u64, data: &[u8]) -> ReadVersion {
        if data.len() == self.base_size && data == expected_payload(key, self.base_size).as_slice()
        {
            return ReadVersion::Version(1);
        }
        let Some(&first) = data.first() else {
            return ReadVersion::Corrupt;
        };
        if !data.iter().all(|&b| b == first) {
            return ReadVersion::Corrupt; // mixed-version decode
        }
        let history = self.keys[key as usize].lock().expect("checker poisoned");
        // In-flight first: once fill bytes recycle (>250 writes to one
        // key), a (byte, length) pair can be in BOTH sets — matching
        // the old completed entry would misreport a still-in-flight
        // write's payload as an ancient version (a false stale).
        if history.inflight.contains(&(first, data.len())) {
            ReadVersion::InFlight
        } else if let Some(version) = history
            .completed
            .iter()
            .filter(|&&(_, fill, size)| fill == first && size == data.len())
            .map(|&(version, _, _)| version)
            .max()
        {
            ReadVersion::Version(version)
        } else {
            ReadVersion::Corrupt
        }
    }
}

/// Outcome of one mixed read/write run.
#[derive(Clone, Copy, Debug)]
pub struct MixedRun {
    /// Client threads.
    pub threads: usize,
    /// The driven write ratio.
    pub write_ratio: f64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Reads that returned a version older than their start floor or
    /// decoded to no known payload. **Must be zero.**
    pub stale_reads: u64,
    /// Reads that gave up after three version-raced attempts
    /// (`AgarError::ReadContention`) — safe, counted separately.
    pub contended_reads: u64,
    /// Mean simulated read latency.
    pub read_latency_mean: Duration,
    /// Percentile summary of per-read simulated latency.
    pub read_latency: LatencySummary,
    /// Mean simulated write latency.
    pub write_latency_mean: Duration,
    /// Writes that waited behind another writer's lease.
    pub lease_contentions: u64,
    /// Targeted invalidations across all writes.
    pub invalidations: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Aggregate operations per second (host wall clock).
    pub ops_per_sec: f64,
    /// Per-stage latency breakdown (plan/lookup/fetch/bind/decode) of
    /// the measured reads' traces, aggregated across members. Empty
    /// when the cluster was built without tracing.
    pub stages: StageSummaries,
}

impl MixedRun {
    /// Mean members invalidated per write (the targeted-invalidation
    /// payoff: the old broadcast cost `members - 1` for every write).
    pub fn invalidations_per_write(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.invalidations as f64 / self.writes as f64
        }
    }
}

/// Drives `threads` client threads of `ops_per_thread` mixed
/// operations each (keys Zipfian over `0..catalogue`, split and write
/// sizes from `mix`) against the router, verifying every read against
/// the write history.
///
/// # Panics
///
/// Panics if an operation fails for any reason other than read
/// contention, or if the mix fails validation.
pub fn run_mixed_cluster(
    router: &Arc<ClusterRouter>,
    threads: usize,
    ops_per_thread: usize,
    catalogue: u64,
    base_size: usize,
    mix: ReadWriteMix,
    seed: u64,
) -> MixedRun {
    let threads = threads.max(1);
    // Reset the catalogue to the pristine pattern through the router:
    // the checker classifies payloads against a known initial state,
    // and earlier runs against the same backend (other write ratios,
    // criterion iterations) leave their fill bytes behind otherwise.
    for key in 0..catalogue {
        router
            .write(ObjectId::new(key), &expected_payload(key, base_size))
            .expect("catalogue reset write");
    }
    let checker = StaleChecker::new(catalogue, base_size);
    let spec = WorkloadSpec {
        object_count: catalogue,
        object_size: base_size,
        operations: ops_per_thread,
        read_fraction: 1.0,
        distribution: Distribution::Zipfian { skew: 1.1 },
    };
    #[derive(Default)]
    struct ThreadTotals {
        reads: u64,
        writes: u64,
        stale: u64,
        contended_reads: u64,
        read_latency: Duration,
        read_histogram: LatencyHistogram,
        write_latency: Duration,
        lease_contentions: u64,
        invalidations: u64,
    }
    // Trace scoping: the warm-up and catalogue-reset reads above were
    // traced too (when tracing is on), so remember how many traces
    // each member has recorded so far and keep only the younger ones.
    let trace_marks: Vec<(u64, u64)> = router
        .member_ids()
        .iter()
        .map(|&id| {
            let node = router.member(id).expect("member listed but missing");
            (
                id,
                node.trace_snapshot().len() as u64 + node.traces_dropped(),
            )
        })
        .collect();
    let start = Instant::now();
    let mut totals = ThreadTotals::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let router = Arc::clone(router);
                let checker = &checker;
                let spec = &spec;
                scope.spawn(move || {
                    let stream = spec
                        .mixed_stream(mix, seed ^ (t as u64).wrapping_mul(0x9E37_79B9))
                        .expect("validated mix");
                    let mut out = ThreadTotals::default();
                    for op in stream {
                        match op {
                            MixedOp::Read { key } => {
                                let floor = checker.floor(key);
                                let metrics = match router.read(ObjectId::new(key)) {
                                    Ok(metrics) => metrics,
                                    Err(agar::AgarError::ReadContention { .. }) => {
                                        out.contended_reads += 1;
                                        continue;
                                    }
                                    Err(e) => panic!("mixed read failed: {e}"),
                                };
                                out.reads += 1;
                                out.read_latency += metrics.metrics().latency;
                                out.read_histogram.record(metrics.metrics().latency);
                                let stale =
                                    match checker.classify(key, metrics.metrics().data.as_ref()) {
                                        ReadVersion::Version(version) => version < floor,
                                        ReadVersion::InFlight => false,
                                        ReadVersion::Corrupt => true,
                                    };
                                out.stale += stale as u64;
                            }
                            MixedOp::Write { key, size } => {
                                let fill = checker.begin_write(key, size);
                                let payload = vec![fill; size];
                                let metrics = router
                                    .write(ObjectId::new(key), &payload)
                                    .expect("mixed write failed");
                                checker.complete_write(key, fill, size, metrics.version);
                                out.writes += 1;
                                out.write_latency += metrics.latency;
                                out.lease_contentions += metrics.lease_contended as u64;
                                out.invalidations += metrics.invalidations;
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            let out = handle.join().expect("mixed client thread panicked");
            totals.reads += out.reads;
            totals.writes += out.writes;
            totals.stale += out.stale;
            totals.contended_reads += out.contended_reads;
            totals.read_latency += out.read_latency;
            totals.read_histogram.merge(&out.read_histogram);
            totals.write_latency += out.write_latency;
            totals.lease_contentions += out.lease_contentions;
            totals.invalidations += out.invalidations;
        }
    });
    let elapsed = start.elapsed();
    let mut measured_traces: Vec<ReadTrace> = Vec::new();
    for &(id, before) in &trace_marks {
        let node = router.member(id).expect("member listed but missing");
        let traces = node.trace_snapshot();
        let recorded = traces.len() as u64 + node.traces_dropped();
        let fresh = (recorded - before).min(traces.len() as u64) as usize;
        measured_traces.extend_from_slice(&traces[traces.len() - fresh..]);
    }
    let total_ops = totals.reads + totals.writes + totals.contended_reads;
    MixedRun {
        threads,
        write_ratio: mix.write_ratio,
        reads: totals.reads,
        writes: totals.writes,
        stale_reads: totals.stale,
        contended_reads: totals.contended_reads,
        read_latency_mean: totals
            .read_latency
            .checked_div(totals.reads.max(1) as u32)
            .unwrap_or_default(),
        read_latency: totals.read_histogram.summary(),
        write_latency_mean: totals
            .write_latency
            .checked_div(totals.writes.max(1) as u32)
            .unwrap_or_default(),
        lease_contentions: totals.lease_contentions,
        invalidations: totals.invalidations,
        elapsed,
        ops_per_sec: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        stages: StageSummaries::from_traces(&measured_traces),
    }
}

/// The `mixed` experiment: `M` threads × `K` nodes at several write
/// ratios, with uniform write sizes around the catalogue object size.
pub fn mixed_table(deployment: &Deployment, ops_per_thread: usize) -> crate::table::Table {
    mixed_table_with(deployment, ops_per_thread, None)
}

/// [`mixed_table`] with an optional metrics registry: when given,
/// every ratio's cluster binds its counters and stage histograms into
/// it under `{scenario}` labels so a `--metrics` dump carries the
/// whole grid.
pub fn mixed_table_with(
    deployment: &Deployment,
    ops_per_thread: usize,
    registry: Option<&MetricsRegistry>,
) -> crate::table::Table {
    mixed_table_at(
        deployment,
        deployment.region("Frankfurt"),
        3,
        4,
        ops_per_thread,
        &[0.05, 0.2, 0.5],
        registry,
    )
}

/// [`mixed_table`] with explicit grid parameters.
#[allow(clippy::too_many_arguments)]
pub fn mixed_table_at(
    deployment: &Deployment,
    region: RegionId,
    members: usize,
    threads: usize,
    ops_per_thread: usize,
    write_ratios: &[f64],
    registry: Option<&MetricsRegistry>,
) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "Mixed — M client threads x K ring-routed nodes under a read/write mix \
         (per-object write leases, targeted invalidation)",
        {
            let mut headers: Vec<String> = vec![
                "write %".into(),
                "nodes".into(),
                "threads".into(),
                "reads".into(),
                "writes".into(),
                "stale".into(),
                "read ms".into(),
            ];
            headers.extend(LatencySummary::percentile_headers());
            headers.extend(StageSummaries::p99_headers());
            headers.extend([
                "write ms".into(),
                "lease waits".into(),
                "inval/write".into(),
                "ops/s".into(),
            ]);
            headers
        },
    );
    let hot_objects = 8;
    let base_size = deployment.scale.object_size;
    for &ratio in write_ratios {
        // A fresh warm cluster per ratio (the run itself resets the
        // shared backend's catalogue contents before measuring).
        let router = crate::cluster::build_warm_cluster_with(
            deployment,
            region,
            members,
            10.0,
            hot_objects,
            0,
            true,
            0xF00D ^ (ratio * 1000.0) as u64,
        );
        if let Some(registry) = registry {
            let labels = Labels::new()
                .with("scenario", format!("write {:.0}%", ratio * 100.0))
                .with("policy", "mixed");
            router.register_metrics(registry, &labels);
        }
        let mix = ReadWriteMix {
            write_ratio: ratio,
            write_size: WriteSizeDist::UniformBytes {
                min: (base_size / 2).max(1),
                max: base_size,
            },
        };
        let run = run_mixed_cluster(
            &router,
            threads,
            ops_per_thread,
            hot_objects,
            base_size,
            mix,
            0x111ED ^ (ratio * 1000.0) as u64,
        );
        eprintln!(
            "  [mixed] {:.0}% writes: {} reads + {} writes, {} stale, read {:.1} ms / write {:.1} ms, \
             {} lease wait(s), {:.2} invalidations/write, {:.0} ops/s",
            ratio * 100.0,
            run.reads,
            run.writes,
            run.stale_reads,
            run.read_latency_mean.as_secs_f64() * 1e3,
            run.write_latency_mean.as_secs_f64() * 1e3,
            run.lease_contentions,
            run.invalidations_per_write(),
            run.ops_per_sec
        );
        let mut row = vec![
            format!("{:.0}", ratio * 100.0),
            members.to_string(),
            run.threads.to_string(),
            run.reads.to_string(),
            run.writes.to_string(),
            run.stale_reads.to_string(),
            format!("{:.1}", run.read_latency_mean.as_secs_f64() * 1e3),
        ];
        row.extend(run.read_latency.percentile_cells());
        row.extend(run.stages.p99_cells());
        row.extend([
            format!("{:.1}", run.write_latency_mean.as_secs_f64() * 1e3),
            run.lease_contentions.to_string(),
            format!("{:.2}", run.invalidations_per_write()),
            format!("{:.0}", run.ops_per_sec),
        ]);
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::build_warm_cluster;
    use crate::harness::Scale;

    #[test]
    fn mixed_run_reports_zero_stale_reads() {
        let deployment = Deployment::build(Scale::tiny());
        let region = deployment.region("Frankfurt");
        let router = build_warm_cluster(&deployment, region, 2, 10.0, 4, 3);
        let mix = ReadWriteMix::with_ratio(0.25);
        let run = run_mixed_cluster(&router, 4, 40, 4, deployment.scale.object_size, mix, 11);
        assert_eq!(run.reads + run.writes + run.contended_reads, 160);
        assert!(run.writes > 0, "a 25% mix must produce writes");
        assert_eq!(run.stale_reads, 0, "stale or mixed-version reads");
        assert!(run.read_latency_mean > Duration::ZERO);
        assert_eq!(run.read_latency.samples as u64, run.reads);
        assert!(run.read_latency.p50_ms <= run.read_latency.p999_ms);
        assert!(run.write_latency_mean > Duration::ZERO);
        assert!(run.ops_per_sec > 0.0);
    }

    #[test]
    fn traced_cluster_yields_a_measured_stage_breakdown() {
        let deployment = Deployment::build(Scale::tiny());
        let region = deployment.region("Frankfurt");
        let router =
            crate::cluster::build_warm_cluster_with(&deployment, region, 2, 10.0, 4, 0, true, 3);
        let mix = ReadWriteMix::with_ratio(0.25);
        let run = run_mixed_cluster(&router, 2, 40, 4, deployment.scale.object_size, mix, 11);
        // Only the measured reads are summarised — warm-up and
        // catalogue-reset traffic is scoped out by the trace marks.
        assert_eq!(run.stages.samples() as u64, run.reads);
        // An untraced cluster reports an empty breakdown.
        let untraced = build_warm_cluster(&deployment, region, 2, 10.0, 4, 3);
        let bare = run_mixed_cluster(
            &untraced,
            2,
            20,
            4,
            deployment.scale.object_size,
            ReadWriteMix::with_ratio(0.0),
            5,
        );
        assert_eq!(bare.stages.samples(), 0);
    }

    #[test]
    fn read_only_mix_degenerates_to_the_cluster_harness() {
        let deployment = Deployment::build(Scale::tiny());
        let region = deployment.region("Frankfurt");
        let router = build_warm_cluster(&deployment, region, 2, 10.0, 4, 3);
        let run = run_mixed_cluster(
            &router,
            2,
            30,
            4,
            deployment.scale.object_size,
            ReadWriteMix::with_ratio(0.0),
            5,
        );
        assert_eq!(run.writes, 0);
        assert_eq!(run.reads, 60);
        assert_eq!(run.stale_reads, 0);
        assert_eq!(run.invalidations, 0);
    }

    #[test]
    fn checker_flags_mixed_version_decodes_and_stale_data() {
        let checker = StaleChecker::new(2, 16);
        // Pristine data is version 1.
        assert!(matches!(
            checker.classify(0, &expected_payload(0, 16)),
            ReadVersion::Version(1)
        ));
        // An unknown constant fill is corrupt; an in-flight one is not.
        assert!(matches!(
            checker.classify(0, &[7u8; 16]),
            ReadVersion::Corrupt
        ));
        let fill = checker.begin_write(0, 16);
        assert_ne!(fill, 0, "fill 0 would mimic codec zero padding");
        assert!(matches!(
            checker.classify(0, &[fill; 16]),
            ReadVersion::InFlight
        ));
        // The right fill at the WRONG length is torn, not a match.
        assert!(matches!(
            checker.classify(0, &[fill; 12]),
            ReadVersion::Corrupt
        ));
        checker.complete_write(0, fill, 16, 2);
        assert!(matches!(
            checker.classify(0, &[fill; 16]),
            ReadVersion::Version(2)
        ));
        assert!(matches!(
            checker.classify(0, &[fill; 12]),
            ReadVersion::Corrupt
        ));
        assert_eq!(checker.floor(0), 2);
        assert_eq!(checker.floor(1), 1);
        // Mixed bytes decode to nothing that was ever written.
        let mut torn = vec![fill; 16];
        torn[3] = fill.wrapping_add(1);
        assert!(matches!(checker.classify(0, &torn), ReadVersion::Corrupt));
    }
}

#[cfg(test)]
mod variable_size_tests {
    use super::*;
    use crate::cluster::build_warm_cluster;
    use crate::harness::Scale;

    /// Regression for the stale-manifest-size bug: writes whose sizes
    /// differ from the catalogue size (the table's uniform write-size
    /// distribution) used to decode against the original manifest
    /// size, leaking codec zero padding into read payloads — every
    /// such read classified as a mixed-version decode.
    #[test]
    fn variable_size_writes_never_produce_stale_or_torn_reads() {
        let deployment = Deployment::build(Scale::tiny());
        let region = deployment.region("Frankfurt");
        let base_size = deployment.scale.object_size;
        let router = build_warm_cluster(&deployment, region, 3, 10.0, 8, 0xF00D);
        let mix = ReadWriteMix {
            write_ratio: 0.2,
            write_size: WriteSizeDist::UniformBytes {
                min: (base_size / 2).max(1),
                max: base_size,
            },
        };
        let run = run_mixed_cluster(&router, 4, 150, 8, base_size, mix, 0x111ED);
        assert!(run.writes > 0);
        assert_eq!(
            run.stale_reads, 0,
            "variable-size writes produced stale or torn reads"
        );
    }

    /// Regression for the checker itself: past 250 writes to one key
    /// the fill bytes recycle; a recycled byte in flight must classify
    /// as in-flight (lenient), never as its ancient completed
    /// namesake (a false stale report).
    #[test]
    fn fill_byte_recycling_never_reports_false_stales() {
        let deployment = Deployment::build(Scale::tiny());
        let region = deployment.region("Frankfurt");
        let router = build_warm_cluster(&deployment, region, 2, 10.0, 2, 0x10);
        // 4 threads x 350 ops at 90% writes over 2 keys: the hot key
        // takes well over 250 writes, wrapping the fill space.
        let mix = ReadWriteMix::with_ratio(0.9);
        let run = run_mixed_cluster(&router, 4, 350, 2, deployment.scale.object_size, mix, 0x77);
        assert!(
            run.writes > 500,
            "wrap not exercised: {} writes",
            run.writes
        );
        assert_eq!(run.stale_reads, 0, "recycled fill bytes misclassified");
    }
}
