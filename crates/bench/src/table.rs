//! Plain-text result tables and CSV emission for the experiment
//! harness. The latency histogram every experiment reports its
//! percentile columns from lives in `agar_obs::percentile` (one
//! nearest-rank implementation shared with the registry's bucketed
//! histogram); it is re-exported here so harness code keeps its
//! historical import path.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

pub use agar_obs::{LatencyHistogram, LatencySummary};

/// A printable experiment result table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over the rows.
    pub fn rows(&self) -> impl Iterator<Item = &[String]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        writeln!(file, "{}", csv_row(&self.headers))?;
        for row in &self.rows {
            writeln!(file, "{}", csv_row(row))?;
        }
        Ok(())
    }
}

fn csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> Table {
        let mut t = Table::new("Demo", vec!["policy".into(), "latency".into()]);
        t.push_row(vec!["Agar".into(), "416".into()]);
        t.push_row(vec!["LFU-7".into(), "489".into()]);
        t
    }

    #[test]
    fn display_renders_aligned_table() {
        let text = sample().to_string();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("policy"));
        assert!(text.contains("Agar"));
        assert!(text.contains("489"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        sample().push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("agar-table-test");
        let path = dir.join("demo.csv");
        sample().write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("policy,latency"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(csv_row(&["a,b".into()]), "\"a,b\"");
        assert_eq!(csv_row(&["say \"hi\"".into()]), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_row(&["plain".into()]), "plain");
    }

    #[test]
    fn histogram_percentiles_are_exact() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 ms, shuffled order must not matter.
        for ms in (1..=1000u64).rev() {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.len(), 1000);
        assert_eq!(h.percentile(0.50), Duration::from_millis(500));
        assert_eq!(h.percentile(0.99), Duration::from_millis(990));
        let s = h.summary();
        assert!((s.mean_ms - 500.5).abs() < 1e-9);
        assert!((s.p50_ms - 500.0).abs() < 1e-9);
        assert!((s.p95_ms - 950.0).abs() < 1e-9);
        assert!((s.p99_ms - 990.0).abs() < 1e-9);
        assert!((s.p999_ms - 999.0).abs() < 1e-9);
        assert!((s.max_ms - 1000.0).abs() < 1e-9);
        assert_eq!(s.samples, 1000);
    }

    #[test]
    fn histogram_merge_and_empty() {
        let empty = LatencyHistogram::new();
        assert!(empty.is_empty());
        assert_eq!(empty.percentile(0.99), Duration::ZERO);
        assert_eq!(empty.summary(), LatencySummary::default());
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_millis(10));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_millis(30));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.percentile(1.0), Duration::from_millis(30));
    }

    #[test]
    fn percentile_cells_match_headers() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(250));
        let cells = h.summary().percentile_cells();
        assert_eq!(cells.len(), LatencySummary::percentile_headers().len());
        assert!(cells.iter().all(|c| c == "250"));
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.title(), "Demo");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.rows().count(), 2);
    }
}
