//! The `tail` experiment: hedged vs unhedged read latency under the
//! straggler/fault scenario family.
//!
//! Mean latency barely distinguishes the two engines — stragglers are
//! rare by construction. The tail does: every cell of this experiment
//! replays the same seeded closed-loop run twice, once with hedging
//! off (Δ = 0, byte-identical to the original engine) and once with
//! Δ = 2 hedge chunks, against a fresh deployment overlaid with one
//! [`StragglerScenario`]. Per-region slowdown spikes live in the
//! latency model ([`Deployment::build_with_scenario`]); flaky regions
//! fail and heal on the simulated clock right here, from their
//! [`FlakyRegion`] schedule; dead regions stay down throughout.
//!
//! Each run is fully deterministic per seed — deployments (and so the
//! spike phase counters) are rebuilt per cell — so hedged-vs-unhedged
//! deltas are attributable to the engine alone, and the CI gate can
//! compare P99s across commits.

use crate::harness::{Deployment, Scale};
use crate::table::{LatencyHistogram, LatencySummary, Table};
use agar::{AgarNode, AgarSettings, CachingClient};
use agar_ec::ObjectId;
use agar_net::sim::Simulation;
use agar_net::{RegionId, SimTime};
use agar_obs::{Labels, MetricsRegistry, StageSummaries};
use agar_store::Backend;
use agar_workload::{FlakyRegion, Op, StragglerScenario, WorkloadSpec};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Parameters of one tail run (shared by every cell of the table).
#[derive(Clone, Copy, Debug)]
pub struct TailParams {
    /// Deployment scale.
    pub scale: Scale,
    /// Operations per run.
    pub operations: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Cache size in paper MB units.
    pub cache_mb: f64,
    /// Hedge chunks Δ for the hedged cells.
    pub max_hedges: usize,
    /// Seed shared by the hedged and unhedged runs of each scenario.
    pub seed: u64,
}

impl TailParams {
    /// Full-scale defaults: the paper workload with Δ = 2 hedges.
    pub fn paper() -> Self {
        TailParams {
            scale: Scale::paper(),
            operations: 1_000,
            clients: 2,
            cache_mb: 10.0,
            max_hedges: 2,
            seed: 0x7A11,
        }
    }

    /// Test-scale defaults (same shapes, small objects, fewer ops).
    pub fn tiny() -> Self {
        TailParams {
            scale: Scale::tiny(),
            operations: 300,
            ..TailParams::paper()
        }
    }
}

/// One (scenario, engine) cell of the tail experiment.
#[derive(Clone, Debug)]
pub struct TailResult {
    /// Scenario name.
    pub scenario: String,
    /// Engine label (`unhedged` or `hedged d=Δ`).
    pub policy: String,
    /// The Δ this cell ran with.
    pub max_hedges: usize,
    /// Operations completed.
    pub operations: usize,
    /// Reads that failed outright (counted as 2 s penalty ops).
    pub errors: usize,
    /// Percentile summary of per-read simulated latency.
    pub latency: LatencySummary,
    /// Total successful backend chunk round trips, stragglers included
    /// — the hedging budget: hedged ≤ (1 + Δ/k) × unhedged.
    pub backend_fetches: u64,
    /// Hedge chunks issued.
    pub hedged_requests: u64,
    /// Hedge chunks that arrived early enough to displace a primary.
    pub hedge_wins: u64,
    /// Straggler responses discarded after the decode was satisfied.
    pub hedges_cancelled: u64,
    /// Per-stage latency breakdown (plan/lookup/fetch/bind/decode)
    /// from the node's read traces — every read is sampled, so the
    /// stage histograms cover the whole run.
    pub stages: StageSummaries,
}

struct TailState {
    node: Arc<AgarNode>,
    backend: Arc<Backend>,
    flaky: Vec<FlakyRegion>,
    pending: VecDeque<Op>,
    latencies: Vec<Duration>,
    backend_fetches: u64,
    in_flight: usize,
    errors: usize,
}

fn tail_client_loop(state: &mut TailState, sched: &mut agar_net::Scheduler<TailState>) {
    let Some(op) = state.pending.pop_front() else {
        state.in_flight -= 1;
        return;
    };
    // Stamp the trace layer's clock so spans carry simulated time.
    state.node.set_sim_now(sched.now());
    let latency = match state.node.read(ObjectId::new(op.key())) {
        Ok(metrics) => {
            state.backend_fetches += metrics.backend_fetches as u64;
            metrics.latency
        }
        Err(_) => {
            state.errors += 1;
            // Same closed-loop pacing as the main harness: a failed op
            // costs a backend-style slow round trip.
            Duration::from_secs(2)
        }
    };
    state.latencies.push(latency);
    sched.schedule_in(latency, tail_client_loop);
}

/// Once per simulated second: apply the flaky fail/heal schedule, then
/// give the node its reconfiguration chance (same cadence as the main
/// harness).
fn fault_tick(state: &mut TailState, sched: &mut agar_net::Scheduler<TailState>) {
    let now_s = sched
        .now()
        .saturating_duration_since(SimTime::ZERO)
        .as_secs();
    for flaky in &state.flaky {
        if flaky.is_down_at(now_s) {
            state.backend.fail_region(RegionId::new(flaky.region));
        } else {
            state.backend.heal_region(RegionId::new(flaky.region));
        }
    }
    state.node.set_sim_now(sched.now());
    state.node.maybe_reconfigure(sched.now());
    if state.in_flight > 0 {
        sched.schedule_in(Duration::from_secs(1), fault_tick);
    }
}

/// Runs one (scenario, Δ) cell: fresh deployment, fresh node, seeded
/// closed-loop clients on the simulated clock.
///
/// # Panics
///
/// Panics on invalid parameters (caller bugs).
pub fn tail_run(
    params: &TailParams,
    scenario: &StragglerScenario,
    max_hedges: usize,
) -> TailResult {
    tail_run_with(params, scenario, max_hedges, None)
}

/// [`tail_run`] with an optional metrics registry: when given, the
/// cell's node binds its counters and stage histograms into it under
/// `{scenario, policy}` labels so a `--metrics` dump carries every
/// cell of the experiment.
pub fn tail_run_with(
    params: &TailParams,
    scenario: &StragglerScenario,
    max_hedges: usize,
    registry: Option<&MetricsRegistry>,
) -> TailResult {
    // A fresh deployment per cell: the spike counters inside the
    // latency model are run-local state, and sharing them across cells
    // would shift the straggler phase between the engines under test.
    let deployment = Deployment::build_with_scenario(params.scale, scenario);
    let preset = &deployment.preset;
    let mut settings = AgarSettings::paper_default(deployment.scale.cache_bytes(params.cache_mb));
    settings.cache_read = preset.cache_read;
    settings.client_overhead = preset.client_overhead;
    settings.max_hedges = max_hedges;
    // Trace every read: the per-stage breakdown columns and the
    // chrome://tracing dump both come from this. Sampling is a
    // deterministic counter, so it never perturbs the engine.
    settings.trace_sample_every = 1;
    let capacity_chunks =
        deployment.scale.cache_bytes(params.cache_mb) / deployment.scale.chunk_size().max(1);
    if capacity_chunks >= 200 {
        settings.solver = agar::KnapsackSolver::new()
            .with_early_termination(30)
            .with_passes(1);
    }
    let node = Arc::new(
        AgarNode::new(
            preset.region("Frankfurt"),
            Arc::clone(&deployment.backend),
            settings,
            params.seed ^ 0x5EED,
        )
        .expect("paper settings are valid"),
    );

    let mut workload = WorkloadSpec::paper_default();
    workload.operations = params.operations;
    workload.object_count = workload.object_count.min(deployment.scale.object_count);
    workload.object_size = deployment.scale.object_size;
    let ops: VecDeque<Op> = workload
        .stream(params.seed)
        .expect("workload spec validated")
        .collect();

    let mut sim = Simulation::new(TailState {
        node: Arc::clone(&node),
        backend: Arc::clone(&deployment.backend),
        flaky: scenario.flaky.clone(),
        pending: ops,
        latencies: Vec::with_capacity(params.operations),
        backend_fetches: 0,
        in_flight: params.clients.max(1),
        errors: 0,
    });
    sim.schedule_at(SimTime::ZERO, fault_tick);
    for _ in 0..params.clients.max(1) {
        sim.schedule_at(SimTime::ZERO, tail_client_loop);
    }
    sim.run();
    let state = sim.into_world();

    let policy = if max_hedges == 0 {
        "unhedged".to_string()
    } else {
        format!("hedged d={max_hedges}")
    };
    if let Some(registry) = registry {
        let labels = Labels::new()
            .with("scenario", scenario.name)
            .with("policy", policy.clone());
        node.register_metrics(registry, &labels);
    }
    let mut histogram = LatencyHistogram::new();
    state.latencies.iter().for_each(|&l| histogram.record(l));
    let stats = node.cache_stats();
    let stages = StageSummaries::from_traces(&node.trace_snapshot());
    TailResult {
        scenario: scenario.name.to_string(),
        policy,
        max_hedges,
        operations: state.latencies.len(),
        errors: state.errors,
        latency: histogram.summary(),
        backend_fetches: state.backend_fetches,
        hedged_requests: stats.hedged_requests(),
        hedge_wins: stats.hedge_wins(),
        hedges_cancelled: stats.hedges_cancelled(),
        stages,
    }
}

/// Runs the full scenario family, unhedged and hedged per scenario.
pub fn tail_results(params: &TailParams) -> Vec<TailResult> {
    tail_results_with(params, None)
}

/// [`tail_results`] with an optional metrics registry (see
/// [`tail_run_with`]).
pub fn tail_results_with(
    params: &TailParams,
    registry: Option<&MetricsRegistry>,
) -> Vec<TailResult> {
    let mut results = Vec::new();
    for scenario in StragglerScenario::all() {
        for delta in [0, params.max_hedges] {
            let result = tail_run_with(params, &scenario, delta, registry);
            eprintln!(
                "  [tail] {:<13} {:<10} P99 {:6.0} ms (P50 {:4.0}, mean {:5.0}), \
                 {} fetches, {} hedges ({} wins, {} cancelled)",
                result.scenario,
                result.policy,
                result.latency.p99_ms,
                result.latency.p50_ms,
                result.latency.mean_ms,
                result.backend_fetches,
                result.hedged_requests,
                result.hedge_wins,
                result.hedges_cancelled,
            );
            results.push(result);
        }
    }
    results
}

/// Renders tail results as the `tail` experiment table.
pub fn tail_table(results: &[TailResult]) -> Table {
    let mut headers: Vec<String> = vec!["scenario".into(), "engine".into(), "mean (ms)".into()];
    headers.extend(LatencySummary::percentile_headers());
    headers.extend(StageSummaries::p99_headers());
    headers.extend([
        "max (ms)".into(),
        "fetches".into(),
        "hedges".into(),
        "wins".into(),
        "cancelled".into(),
        "errors".into(),
    ]);
    let mut table = Table::new(
        "Tail — hedged vs unhedged read latency under straggler scenarios (Frankfurt, Zipf 1.1)",
        headers,
    );
    for r in results {
        let mut row = vec![
            r.scenario.clone(),
            r.policy.clone(),
            format!("{:.0}", r.latency.mean_ms),
        ];
        row.extend(r.latency.percentile_cells());
        row.extend(r.stages.p99_cells());
        row.extend([
            format!("{:.0}", r.latency.max_ms),
            r.backend_fetches.to_string(),
            r.hedged_requests.to_string(),
            r.hedge_wins.to_string(),
            r.hedges_cancelled.to_string(),
            r.errors.to_string(),
        ]);
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> TailParams {
        let mut params = TailParams::tiny();
        params.operations = 150;
        params
    }

    #[test]
    fn hedging_beats_the_unhedged_tail_under_spikes() {
        let mut params = quick_params();
        // No cache: with one, the engines' different latency
        // observations drift the knapsack configurations apart, and
        // the round-trip comparison would measure caching, not
        // hedging. Cacheless, both runs issue exactly k primaries per
        // read and the budget inequality is exact.
        params.cache_mb = 0.0;
        let scenario = StragglerScenario::slow_spikes();
        let unhedged = tail_run(&params, &scenario, 0);
        let hedged = tail_run(&params, &scenario, 2);
        assert_eq!(unhedged.operations, 150);
        assert_eq!(hedged.operations, 150);
        assert!(
            hedged.latency.p99_ms < unhedged.latency.p99_ms,
            "hedged P99 {} must beat unhedged {}",
            hedged.latency.p99_ms,
            unhedged.latency.p99_ms
        );
        assert!(hedged.hedged_requests > 0, "spiky run must admit hedges");
        // Round-trip budget: Δ = 2 over k = 9 primaries.
        let budget = unhedged.backend_fetches as f64 * (1.0 + 2.0 / 9.0);
        assert!(
            (hedged.backend_fetches as f64) <= budget,
            "hedged fetches {} exceed budget {budget:.0}",
            hedged.backend_fetches
        );
    }

    #[test]
    fn flaky_region_fails_and_heals_on_schedule() {
        let mut params = quick_params();
        params.operations = 200;
        let scenario = StragglerScenario::flaky_backend();
        let unhedged = tail_run(&params, &scenario, 0);
        let hedged = tail_run(&params, &scenario, 2);
        // Both engines must survive the churn without giving up reads.
        assert_eq!(unhedged.errors, 0);
        assert_eq!(hedged.errors, 0);
        assert_eq!(unhedged.operations, 200);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let params = quick_params();
        let scenario = StragglerScenario::slow_spikes();
        let a = tail_run(&params, &scenario, 2);
        let b = tail_run(&params, &scenario, 2);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.backend_fetches, b.backend_fetches);
        assert_eq!(a.hedged_requests, b.hedged_requests);
    }

    #[test]
    fn stage_breakdown_covers_every_read_and_lands_in_the_registry() {
        let mut params = quick_params();
        params.operations = 60;
        let registry = MetricsRegistry::new();
        let scenario = StragglerScenario::slow_spikes();
        let result = tail_run_with(&params, &scenario, 2, Some(&registry));
        // Every read is traced (sample_every = 1), so the per-stage
        // summaries cover the full run.
        assert_eq!(result.stages.samples(), result.operations);
        // Fetch dominates a cold straggler run; the P99 must be real.
        assert!(result.stages.fetch.p99_ms > 0.0);
        assert!(result.stages.fetch.p99_ms <= result.latency.max_ms);
        let text = registry.render_prometheus();
        assert!(text.contains("agar_read_stage_seconds_bucket"));
        assert!(text.contains("scenario=\"slow-spikes\""));
        assert!(text.contains("policy=\"hedged d=2\""));
    }

    #[test]
    fn table_covers_every_cell() {
        let mut params = quick_params();
        params.operations = 40;
        let results = tail_results(&params);
        assert_eq!(results.len(), StragglerScenario::all().len() * 2);
        let table = tail_table(&results);
        assert_eq!(table.len(), results.len());
        assert!(table.title().contains("Tail"));
    }
}
