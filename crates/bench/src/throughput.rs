//! Multi-threaded wall-clock throughput harness.
//!
//! Everything else in this crate measures *simulated* latency on a
//! deterministic clock; this module measures how fast the host actually
//! executes reads when `M` OS-thread clients hammer **one shared
//! [`AgarNode`]** — the workload the concurrent read pipeline exists
//! for. A cache-hit-heavy run (hot set fully configured and
//! pre-filled) isolates the node's own locking: with the old node-wide
//! mutex, aggregate ops/s stayed flat as threads were added; with the
//! sharded pipeline it scales.

use crate::harness::Deployment;
use crate::table::{LatencyHistogram, LatencySummary};
use agar::{AgarNode, AgarSettings, CachingClient};
use agar_ec::ObjectId;
use agar_net::RegionId;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one multi-threaded hammering run.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputRun {
    /// Number of client threads.
    pub threads: usize,
    /// Total reads completed across all threads.
    pub total_ops: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Aggregate reads per second.
    pub ops_per_sec: f64,
    /// Chunks served from the cache across all reads.
    pub cache_hits: u64,
    /// Chunks fetched from the backend across all reads.
    pub backend_fetches: u64,
    /// Percentile summary of per-operation wall-clock latency.
    pub latency: LatencySummary,
}

impl ThroughputRun {
    /// Fraction of chunks served from the cache.
    pub fn hit_fraction(&self) -> f64 {
        let total = self.cache_hits + self.backend_fetches;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Builds an Agar node whose cache is warm for objects `0..hot_objects`:
/// the hot set is made popular, the node reconfigures (downloading the
/// configured chunks a priori), and one verification pass confirms the
/// reads are full cache hits.
///
/// # Panics
///
/// Panics if the cache cannot hold the hot set (caller sizing bug) or a
/// read fails.
pub fn build_warm_node(
    deployment: &Deployment,
    region: RegionId,
    cache_mb: f64,
    hot_objects: u64,
    seed: u64,
) -> Arc<AgarNode> {
    assert!(hot_objects > 0, "need at least one hot object");
    let mut settings = AgarSettings::paper_default(deployment.scale.cache_bytes(cache_mb));
    settings.cache_read = deployment.preset.cache_read;
    settings.client_overhead = deployment.preset.client_overhead;
    let node = Arc::new(
        AgarNode::new(region, Arc::clone(&deployment.backend), settings, seed)
            .expect("paper settings are valid"),
    );
    for object in 0..hot_objects {
        for _ in 0..3 {
            node.read(ObjectId::new(object)).expect("warm-up read");
        }
    }
    node.force_reconfigure();
    let k = deployment.backend.params().data_chunks();
    for object in 0..hot_objects {
        let metrics = node.read(ObjectId::new(object)).expect("verification read");
        assert_eq!(
            metrics.cache_hits, k,
            "object {object} not fully cached; shrink the hot set or grow the cache"
        );
    }
    node
}

/// Hammers one shared node with `threads` OS threads, each performing
/// `ops_per_thread` reads round-robin over the hot set, and reports
/// aggregate wall-clock throughput.
///
/// # Panics
///
/// Panics if a read fails (the backend is healthy in this harness).
pub fn run_threads(
    node: &Arc<AgarNode>,
    threads: usize,
    ops_per_thread: usize,
    hot_objects: u64,
) -> ThroughputRun {
    let threads = threads.max(1);
    let start = Instant::now();
    let mut cache_hits = 0u64;
    let mut backend_fetches = 0u64;
    let mut histogram = LatencyHistogram::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let node = Arc::clone(node);
                scope.spawn(move || {
                    let mut hits = 0u64;
                    let mut fetches = 0u64;
                    let mut local = LatencyHistogram::new();
                    for i in 0..ops_per_thread {
                        // Offset each thread so they touch different
                        // objects at any instant (distinct cache shards).
                        let object = (t * 3 + i) as u64 % hot_objects;
                        let op_start = Instant::now();
                        let metrics = node
                            .read(ObjectId::new(object))
                            .expect("healthy backend read");
                        local.record(op_start.elapsed());
                        hits += metrics.cache_hits as u64;
                        fetches += metrics.backend_fetches as u64;
                    }
                    (hits, fetches, local)
                })
            })
            .collect();
        for handle in handles {
            let (hits, fetches, local) = handle.join().expect("client thread panicked");
            cache_hits += hits;
            backend_fetches += fetches;
            histogram.merge(&local);
        }
    });
    let elapsed = start.elapsed();
    let total_ops = (threads * ops_per_thread) as u64;
    ThroughputRun {
        threads,
        total_ops,
        elapsed,
        ops_per_sec: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        cache_hits,
        backend_fetches,
        latency: histogram.summary(),
    }
}

/// Runs the thread-count sweep against one warm node and returns one
/// [`ThroughputRun`] per entry in `thread_counts`.
pub fn throughput_scaling(
    deployment: &Deployment,
    region: RegionId,
    thread_counts: &[usize],
    ops_per_thread: usize,
) -> Vec<ThroughputRun> {
    // 8 hot objects in a 10-"MB" cache: fully cacheable at every scale.
    let hot_objects = 8;
    let node = build_warm_node(deployment, region, 10.0, hot_objects, 0xC0C0);
    thread_counts
        .iter()
        .map(|&threads| run_threads(&node, threads, ops_per_thread, hot_objects))
        .collect()
}

/// The `throughput` experiment: aggregate ops/s as client threads are
/// added to one node, with the speed-up over the single-threaded run.
pub fn throughput_table(deployment: &Deployment, ops_per_thread: usize) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "Throughput — aggregate ops/s, M client threads sharing one Agar node (cache-hit-heavy)",
        vec![
            "threads".into(),
            "ops".into(),
            "elapsed ms".into(),
            "ops/s".into(),
            "speed-up".into(),
            "hit %".into(),
            "P50 (µs)".into(),
            "P95 (µs)".into(),
            "P99 (µs)".into(),
            "P999 (µs)".into(),
        ],
    );
    let runs = throughput_scaling(
        deployment,
        deployment.region("Frankfurt"),
        &[1, 2, 4, 8],
        ops_per_thread,
    );
    let base = runs.first().map_or(1.0, |r| r.ops_per_sec);
    for run in &runs {
        eprintln!(
            "  [throughput] {} thread(s): {:.0} ops/s ({:.2}x vs 1 thread, {:.1}% cache hits)",
            run.threads,
            run.ops_per_sec,
            run.ops_per_sec / base,
            run.hit_fraction() * 100.0
        );
        let mut row = vec![
            run.threads.to_string(),
            run.total_ops.to_string(),
            format!("{:.1}", run.elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", run.ops_per_sec),
            format!("{:.2}x", run.ops_per_sec / base),
            format!("{:.1}", run.hit_fraction() * 100.0),
        ];
        // Wall-clock cache hits are microseconds, not milliseconds.
        row.extend(
            [
                run.latency.p50_ms,
                run.latency.p95_ms,
                run.latency.p99_ms,
                run.latency.p999_ms,
            ]
            .iter()
            .map(|ms| format!("{:.0}", ms * 1e3)),
        );
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn warm_node_serves_pure_hits_across_threads() {
        let deployment = Deployment::build(Scale::tiny());
        let region = deployment.region("Frankfurt");
        let node = build_warm_node(&deployment, region, 10.0, 4, 1);
        let run = run_threads(&node, 4, 25, 4);
        assert_eq!(run.total_ops, 100);
        assert_eq!(run.backend_fetches, 0, "warm hot set must not fetch");
        assert_eq!(run.cache_hits, 100 * 9);
        assert!((run.hit_fraction() - 1.0).abs() < 1e-12);
        assert!(run.ops_per_sec > 0.0);
        assert_eq!(run.latency.samples, 100);
        assert!(run.latency.p50_ms <= run.latency.p999_ms);
    }

    #[test]
    fn scaling_sweep_reports_every_thread_count() {
        let deployment = Deployment::build(Scale::tiny());
        let region = deployment.region("Frankfurt");
        let runs = throughput_scaling(&deployment, region, &[1, 2], 20);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].threads, 1);
        assert_eq!(runs[1].threads, 2);
        assert!(runs.iter().all(|r| r.backend_fetches == 0));
    }
}
