//! The `tiers` experiment: RAM-only vs two-tier (RAM + disk) caching
//! under catalogue pressure.
//!
//! Every cell fixes the catalogue and shrinks the RAM budget to 1×, 4×
//! and 16× below it, then replays the same seeded warm-then-measure
//! run with the disk tier off (`disk_capacity_bytes = 0`,
//! byte-identical to the single-tier engine) and on (a
//! local-SSD-priced tier sized to hold the whole catalogue). The
//! warm-up phase drives the measured workload's own Zipf stream plus
//! one full catalogue sweep through the node — popularity statistics
//! cover every object — and installs the resulting configuration
//! (with its a-priori fill) before the measured closed loop starts;
//! both engines warm identically, so the measured deltas are the
//! hierarchy's. At 1× the two engines tie — RAM already holds
//! everything worth holding; the gap opens as the catalogue outgrows
//! RAM and the two-budget knapsack starts spilling warm objects to
//! disk instead of the WAN.
//!
//! Reported per cell: the full latency percentile ladder, per-tier
//! chunk hit ratios (RAM hits and disk hits over all chunk lookups),
//! the knapsack's tier split (RAM vs disk chunks in the final
//! configuration) and the promotion/eviction churn. Everything runs on
//! the deterministic simulated clock, so the JSON output is
//! host-independent and CI-gateable exactly like the `tail` experiment.

use crate::harness::{Deployment, Scale};
use crate::table::{LatencyHistogram, LatencySummary, Table};
use agar::{AgarNode, AgarSettings, CachingClient};
use agar_ec::ObjectId;
use agar_net::sim::Simulation;
use agar_net::SimTime;
use agar_obs::{Labels, MetricsRegistry, StageSummaries};
use agar_workload::{Op, WorkloadSpec};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Catalogue-to-RAM multipliers the experiment sweeps.
pub const CATALOGUE_MULTIPLES: [usize; 3] = [1, 4, 16];

/// Parameters of one tiers run (shared by every cell of the table).
#[derive(Clone, Copy, Debug)]
pub struct TiersParams {
    /// Deployment scale.
    pub scale: Scale,
    /// Operations per run.
    pub operations: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Simulated disk chunk-read latency (a local SSD, not the
    /// conservative engine default).
    pub disk_read: Duration,
    /// Simulated disk chunk-write latency.
    pub disk_write: Duration,
    /// Seed shared by the RAM-only and tiered runs of each cell.
    pub seed: u64,
}

impl TiersParams {
    /// Full-scale defaults: the paper workload over a local-SSD disk
    /// tier.
    pub fn paper() -> Self {
        TiersParams {
            scale: Scale::paper(),
            operations: 1_000,
            clients: 2,
            disk_read: Duration::from_millis(45),
            disk_write: Duration::from_millis(60),
            seed: 0x71E2,
        }
    }

    /// Test-scale defaults (same shapes, small objects, fewer ops).
    pub fn tiny() -> Self {
        TiersParams {
            scale: Scale::tiny(),
            operations: 300,
            ..TiersParams::paper()
        }
    }
}

/// One (catalogue multiple, engine) cell of the tiers experiment.
#[derive(Clone, Debug)]
pub struct TiersResult {
    /// Scenario name (`catalogue Nx` — the catalogue is N× RAM).
    pub scenario: String,
    /// Engine label (`ram-only` or `tiered`).
    pub policy: String,
    /// The catalogue-to-RAM multiple this cell ran at.
    pub catalogue_multiple: usize,
    /// Operations completed.
    pub operations: usize,
    /// Reads that failed outright (counted as 2 s penalty ops).
    pub errors: usize,
    /// Percentile summary of per-read simulated latency.
    pub latency: LatencySummary,
    /// Chunk lookups served by the RAM tier.
    pub ram_hits: u64,
    /// Chunk lookups served by the disk tier.
    pub disk_hits: u64,
    /// Total chunk lookups (RAM hits + RAM misses; disk hits are a
    /// subset of the misses).
    pub chunk_lookups: u64,
    /// RAM chunks in the final knapsack configuration.
    pub ram_chunks: u32,
    /// Disk chunks in the final knapsack configuration.
    pub disk_chunks: u32,
    /// Disk hits promoted into RAM over the run.
    pub tier_promotions: u64,
    /// Chunks dropped off the end of the disk log over the run.
    pub disk_evictions: u64,
    /// Per-stage latency breakdown (plan/lookup/fetch/bind/decode) of
    /// the measured window's read traces.
    pub stages: StageSummaries,
}

impl TiersResult {
    /// RAM-tier chunk hit ratio.
    pub fn ram_hit_ratio(&self) -> f64 {
        ratio(self.ram_hits, self.chunk_lookups)
    }

    /// Disk-tier chunk hit ratio.
    pub fn disk_hit_ratio(&self) -> f64 {
        ratio(self.disk_hits, self.chunk_lookups)
    }
}

fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

struct TiersState {
    node: Arc<AgarNode>,
    pending: VecDeque<Op>,
    latencies: Vec<Duration>,
    in_flight: usize,
    errors: usize,
}

fn tiers_client_loop(state: &mut TiersState, sched: &mut agar_net::Scheduler<TiersState>) {
    let Some(op) = state.pending.pop_front() else {
        state.in_flight -= 1;
        return;
    };
    // Stamp the trace layer's clock so spans carry simulated time.
    state.node.set_sim_now(sched.now());
    let latency = match state.node.read(ObjectId::new(op.key())) {
        Ok(metrics) => metrics.latency,
        Err(_) => {
            state.errors += 1;
            // Same closed-loop pacing as the main harness: a failed op
            // costs a backend-style slow round trip.
            Duration::from_secs(2)
        }
    };
    state.latencies.push(latency);
    sched.schedule_in(latency, tiers_client_loop);
}

fn reconfigure_tick(state: &mut TiersState, sched: &mut agar_net::Scheduler<TiersState>) {
    state.node.set_sim_now(sched.now());
    state.node.maybe_reconfigure(sched.now());
    if state.in_flight > 0 {
        sched.schedule_in(Duration::from_secs(1), reconfigure_tick);
    }
}

/// Runs one (catalogue multiple, engine) cell against a shared
/// deployment: RAM = catalogue / `multiple`; `tiered` additionally
/// attaches a disk tier sized to the whole catalogue.
///
/// # Panics
///
/// Panics on invalid parameters (caller bugs).
pub fn tiers_run(
    deployment: &Deployment,
    params: &TiersParams,
    multiple: usize,
    tiered: bool,
) -> TiersResult {
    tiers_run_with(deployment, params, multiple, tiered, None)
}

/// [`tiers_run`] with an optional metrics registry: when given, the
/// cell's node binds its counters and stage histograms into it under
/// `{scenario, policy}` labels so a `--metrics` dump carries every
/// cell of the experiment.
pub fn tiers_run_with(
    deployment: &Deployment,
    params: &TiersParams,
    multiple: usize,
    tiered: bool,
    registry: Option<&MetricsRegistry>,
) -> TiersResult {
    assert!(multiple > 0, "catalogue multiple must be positive");
    let scale = deployment.scale;
    let catalogue_bytes = scale.object_count as usize * scale.object_size;
    let ram_bytes = catalogue_bytes / multiple;
    let preset = &deployment.preset;
    let mut settings = AgarSettings::paper_default(ram_bytes);
    settings.cache_read = preset.cache_read;
    settings.client_overhead = preset.client_overhead;
    if tiered {
        settings.disk_capacity_bytes = catalogue_bytes;
        settings.disk_read = params.disk_read;
        settings.disk_write = params.disk_write;
    }
    // Trace every read: the per-stage breakdown columns come from the
    // measured window's traces. Sampling is a deterministic counter,
    // so it never perturbs the engine.
    settings.trace_sample_every = 1;
    // Same large-capacity guard as the main harness: with the catalogue
    // (or a sizeable slice of it) as the budget, the exact DP would
    // dominate the experiment's wall clock.
    let capacity_chunks = ram_bytes.max(settings.disk_capacity_bytes) / scale.chunk_size().max(1);
    if capacity_chunks >= 200 {
        settings.solver = agar::KnapsackSolver::new()
            .with_early_termination(30)
            .with_passes(1);
    }
    let node = Arc::new(
        AgarNode::new(
            preset.region("Frankfurt"),
            Arc::clone(&deployment.backend),
            settings,
            params.seed ^ 0x5EED,
        )
        .expect("paper settings are valid"),
    );

    let mut workload = WorkloadSpec::paper_default();
    workload.operations = params.operations;
    workload.object_count = workload.object_count.min(scale.object_count);
    workload.object_size = scale.object_size;

    // Warm-up: the measured workload's own distribution seeds the
    // popularity statistics and a full catalogue sweep registers the
    // long tail with the monitor (so the disk budget can cover it);
    // the forced reconfiguration then installs the configuration —
    // including the a-priori fill — before measurement starts. Both
    // engines run the identical warm-up, off the measured clock.
    for op in workload
        .stream(params.seed ^ 0x3A3A)
        .expect("workload spec validated")
    {
        let _ = node.read(ObjectId::new(op.key()));
    }
    for id in 0..scale.object_count {
        let _ = node.read(ObjectId::new(id));
    }
    node.force_reconfigure();
    let warm_stats = node.cache_stats();

    let ops: VecDeque<Op> = workload
        .stream(params.seed)
        .expect("workload spec validated")
        .collect();

    let mut sim = Simulation::new(TiersState {
        node: Arc::clone(&node),
        pending: ops,
        latencies: Vec::with_capacity(params.operations),
        in_flight: params.clients.max(1),
        errors: 0,
    });
    sim.schedule_at(SimTime::ZERO, reconfigure_tick);
    for _ in 0..params.clients.max(1) {
        sim.schedule_at(SimTime::ZERO, tiers_client_loop);
    }
    sim.run();
    let state = sim.into_world();

    let scenario = format!("catalogue {multiple}x");
    let policy = if tiered { "tiered" } else { "ram-only" }.to_string();
    if let Some(registry) = registry {
        let labels = Labels::new()
            .with("scenario", scenario.clone())
            .with("policy", policy.clone());
        node.register_metrics(registry, &labels);
    }
    let mut histogram = LatencyHistogram::new();
    state.latencies.iter().for_each(|&l| histogram.record(l));
    // Counters scoped to the measured window: the warm-up's cold
    // misses are methodology, not results. The trace ring is scoped
    // the same way — warm-up reads were traced too, so keep only the
    // youngest `operations` traces (the measured closed loop).
    let stats = node.cache_stats().delta_since(&warm_stats);
    let traces = node.trace_snapshot();
    let measured = &traces[traces.len().saturating_sub(state.latencies.len())..];
    let stages = StageSummaries::from_traces(measured);
    let config = node.current_config();
    TiersResult {
        scenario,
        policy,
        catalogue_multiple: multiple,
        operations: state.latencies.len(),
        errors: state.errors,
        latency: histogram.summary(),
        ram_hits: stats.chunk_hits(),
        disk_hits: stats.disk_hits(),
        chunk_lookups: stats.chunk_hits() + stats.chunk_misses(),
        ram_chunks: config.ram_chunks(),
        disk_chunks: config.disk_chunks(),
        tier_promotions: stats.tier_promotions(),
        disk_evictions: stats.disk_evictions(),
        stages,
    }
}

/// Runs the full sweep: RAM-only and tiered at every catalogue
/// multiple.
pub fn tiers_results(deployment: &Deployment, params: &TiersParams) -> Vec<TiersResult> {
    tiers_results_with(deployment, params, None)
}

/// [`tiers_results`] with an optional metrics registry (see
/// [`tiers_run_with`]).
pub fn tiers_results_with(
    deployment: &Deployment,
    params: &TiersParams,
    registry: Option<&MetricsRegistry>,
) -> Vec<TiersResult> {
    let mut results = Vec::new();
    for multiple in CATALOGUE_MULTIPLES {
        for tiered in [false, true] {
            let result = tiers_run_with(deployment, params, multiple, tiered, registry);
            eprintln!(
                "  [tiers] {:<13} {:<8} mean {:5.0} ms (P50 {:4.0}, P99 {:6.0}), \
                 hits RAM {:4.1}% disk {:4.1}%, split {}+{} chunks",
                result.scenario,
                result.policy,
                result.latency.mean_ms,
                result.latency.p50_ms,
                result.latency.p99_ms,
                result.ram_hit_ratio() * 100.0,
                result.disk_hit_ratio() * 100.0,
                result.ram_chunks,
                result.disk_chunks,
            );
            results.push(result);
        }
    }
    results
}

/// Renders tiers results as the `tiers` experiment table.
pub fn tiers_table(results: &[TiersResult]) -> Table {
    let mut headers: Vec<String> = vec!["scenario".into(), "engine".into(), "mean (ms)".into()];
    headers.extend(LatencySummary::percentile_headers());
    headers.extend(StageSummaries::p99_headers());
    headers.extend([
        "max (ms)".into(),
        "RAM hit %".into(),
        "disk hit %".into(),
        "RAM chunks".into(),
        "disk chunks".into(),
        "promotions".into(),
        "errors".into(),
    ]);
    let mut table = Table::new(
        "Tiers — RAM-only vs two-tier cache under catalogue pressure (Frankfurt, Zipf 1.1)",
        headers,
    );
    for r in results {
        let mut row = vec![
            r.scenario.clone(),
            r.policy.clone(),
            format!("{:.0}", r.latency.mean_ms),
        ];
        row.extend(r.latency.percentile_cells());
        row.extend(r.stages.p99_cells());
        row.extend([
            format!("{:.0}", r.latency.max_ms),
            format!("{:.1}", r.ram_hit_ratio() * 100.0),
            format!("{:.1}", r.disk_hit_ratio() * 100.0),
            r.ram_chunks.to_string(),
            r.disk_chunks.to_string(),
            r.tier_promotions.to_string(),
            r.errors.to_string(),
        ]);
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> TiersParams {
        let mut params = TiersParams::tiny();
        params.operations = 250;
        params
    }

    #[test]
    fn tiered_beats_ram_only_under_catalogue_pressure() {
        let params = quick_params();
        let deployment = Deployment::build(params.scale);
        let ram_only = tiers_run(&deployment, &params, 16, false);
        let tiered = tiers_run(&deployment, &params, 16, true);
        assert_eq!(ram_only.operations, 250);
        assert_eq!(tiered.operations, 250);
        assert!(
            tiered.latency.mean_ms < ram_only.latency.mean_ms,
            "tiered mean {} must beat ram-only {}",
            tiered.latency.mean_ms,
            ram_only.latency.mean_ms
        );
        assert!(
            tiered.latency.p99_ms < ram_only.latency.p99_ms,
            "tiered P99 {} must beat ram-only {}",
            tiered.latency.p99_ms,
            ram_only.latency.p99_ms
        );
        assert!(tiered.disk_hits > 0, "no disk-tier hits at 16x pressure");
        assert!(
            tiered.disk_chunks > 0,
            "knapsack never used the disk budget"
        );
        assert!(tiered.ram_chunks > 0, "RAM budget must stay in use");
        // The RAM-only engine never touches a disk tier.
        assert_eq!(ram_only.disk_hits, 0);
        assert_eq!(ram_only.disk_chunks, 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let params = quick_params();
        let deployment = Deployment::build(params.scale);
        let a = tiers_run(&deployment, &params, 4, true);
        let b = tiers_run(&deployment, &params, 4, true);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.ram_hits, b.ram_hits);
        assert_eq!(a.disk_hits, b.disk_hits);
        assert_eq!(a.ram_chunks, b.ram_chunks);
        assert_eq!(a.disk_chunks, b.disk_chunks);
    }

    #[test]
    fn stage_breakdown_is_scoped_to_the_measured_window() {
        let params = quick_params();
        let deployment = Deployment::build(params.scale);
        let registry = MetricsRegistry::new();
        let result = tiers_run_with(&deployment, &params, 4, true, Some(&registry));
        // Only the measured closed loop is summarised, not the warm-up.
        assert_eq!(result.stages.samples(), result.operations);
        assert!(result.stages.lookup.p99_ms >= 0.0);
        let text = registry.render_prometheus();
        assert!(text.contains("scenario=\"catalogue 4x\""));
        assert!(text.contains("policy=\"tiered\""));
    }

    #[test]
    fn table_covers_every_cell() {
        let mut params = quick_params();
        params.operations = 60;
        let deployment = Deployment::build(params.scale);
        let results = tiers_results(&deployment, &params);
        assert_eq!(results.len(), CATALOGUE_MULTIPLES.len() * 2);
        let table = tiers_table(&results);
        assert_eq!(table.len(), results.len());
        assert!(table.title().contains("Tiers"));
        // Hit ratios are well-formed percentages.
        for r in &results {
            assert!((0.0..=1.0).contains(&r.ram_hit_ratio()));
            assert!((0.0..=1.0).contains(&r.disk_hit_ratio()));
        }
    }
}
