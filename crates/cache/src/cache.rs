//! The byte-bounded cache core.
//!
//! [`Cache`] plays the role memcached plays in the paper's deployment: a
//! bounded in-memory store of erasure-coded chunks, one entry per chunk,
//! with eviction delegated to a pluggable [`EvictionPolicy`]. Capacity is
//! accounted in *bytes* (the paper sizes caches in MB: "10 MB — which
//! fits ten full objects, 9 chunks each").

use crate::policy::EvictionPolicy;
use crate::stats::CacheStats;
use bytes::Bytes;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// Types that know their own size in bytes for capacity accounting.
pub trait Weigh {
    /// The entry's size in bytes.
    fn weight(&self) -> usize;
}

impl Weigh for Bytes {
    fn weight(&self) -> usize {
        self.len()
    }
}

impl Weigh for Vec<u8> {
    fn weight(&self) -> usize {
        self.len()
    }
}

/// A cached erasure-coded chunk: payload plus the object version it was
/// encoded from (used by the write-path coherence protocol).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CachedChunk {
    data: Bytes,
    version: u64,
}

impl CachedChunk {
    /// Creates a cached chunk.
    pub fn new(data: Bytes, version: u64) -> Self {
        CachedChunk { data, version }
    }

    /// The chunk payload.
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// The object version this chunk was encoded from.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Weigh for CachedChunk {
    fn weight(&self) -> usize {
        self.data.len()
    }
}

/// Result of [`Cache::insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum InsertOutcome<K, V> {
    /// The entry was stored; zero or more victims were evicted for room.
    Inserted {
        /// Entries evicted to make room, in eviction order.
        evicted: Vec<(K, V)>,
    },
    /// The key already existed; its value was replaced.
    Replaced {
        /// The value previously stored under the key.
        previous: V,
        /// Entries evicted to make room, in eviction order.
        evicted: Vec<(K, V)>,
    },
    /// The entry is larger than the entire cache and was not stored.
    Rejected {
        /// The value handed back to the caller.
        value: V,
    },
}

impl<K, V> InsertOutcome<K, V> {
    /// Whether the value ended up in the cache.
    pub fn was_stored(&self) -> bool {
        !matches!(self, InsertOutcome::Rejected { .. })
    }

    /// The evicted entries, if any.
    pub fn evicted(&self) -> &[(K, V)] {
        match self {
            InsertOutcome::Inserted { evicted } | InsertOutcome::Replaced { evicted, .. } => {
                evicted
            }
            InsertOutcome::Rejected { .. } => &[],
        }
    }
}

/// A byte-bounded cache with pluggable eviction.
///
/// # Examples
///
/// ```
/// use agar_cache::{Cache, Lru};
/// use bytes::Bytes;
///
/// let mut cache: Cache<&str, Bytes, Lru<&str>> =
///     Cache::with_capacity(8, Lru::new());
/// cache.insert("a", Bytes::from_static(&[0; 4]));
/// cache.insert("b", Bytes::from_static(&[0; 4]));
/// // Inserting 4 more bytes evicts the LRU entry ("a").
/// let out = cache.insert("c", Bytes::from_static(&[0; 4]));
/// assert_eq!(out.evicted().len(), 1);
/// assert!(cache.get(&"a").is_none());
/// assert!(cache.get(&"b").is_some());
/// ```
#[derive(Debug)]
pub struct Cache<K, V, P> {
    entries: HashMap<K, V>,
    policy: P,
    capacity: usize,
    used: usize,
    stats: CacheStats,
}

impl<K, V, P> Cache<K, V, P>
where
    K: Eq + Hash + Clone + Debug,
    V: Weigh,
    P: EvictionPolicy<K>,
{
    /// Creates a cache bounded to `capacity` bytes.
    pub fn with_capacity(capacity: usize, policy: P) -> Self {
        Cache {
            entries: HashMap::new(),
            policy,
            capacity,
            used: 0,
            stats: CacheStats::new(),
        }
    }

    /// Reads an entry, updating recency metadata and hit/miss counters.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.entries.contains_key(key) {
            self.stats.record_chunk_hit();
            self.policy.on_access(key);
            self.entries.get(key)
        } else {
            self.stats.record_chunk_miss();
            None
        }
    }

    /// Reads an entry without touching recency metadata or counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries.get(key)
    }

    /// Whether the key is present (no metadata update).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts an entry, evicting according to policy until it fits.
    ///
    /// An entry larger than the whole cache is rejected and handed back.
    pub fn insert(&mut self, key: K, value: V) -> InsertOutcome<K, V> {
        let weight = value.weight();
        if weight > self.capacity {
            self.stats.record_rejected_insert();
            return InsertOutcome::Rejected { value };
        }

        // Replacing an existing entry frees its weight first.
        let previous = self.entries.remove(&key).inspect(|old| {
            self.used -= old.weight();
            self.policy.on_remove(&key);
        });

        let mut evicted = Vec::new();
        while self.used + weight > self.capacity {
            let Some(victim) = self.policy.evict_candidate() else {
                unreachable!("cache is over capacity but the policy tracks no keys");
            };
            let entry = self
                .entries
                .remove(&victim)
                .expect("policy and entry map agree");
            self.used -= entry.weight();
            self.stats.record_eviction();
            evicted.push((victim, entry));
        }

        self.used += weight;
        self.entries.insert(key.clone(), value);
        self.policy.on_insert(&key);
        self.stats.record_insertion();

        match previous {
            Some(previous) => InsertOutcome::Replaced { previous, evicted },
            None => InsertOutcome::Inserted { evicted },
        }
    }

    /// Evicts the policy's current victim, returning it (or `None` when
    /// the cache is empty). Used by wrappers that enforce a capacity
    /// bound spanning several caches (see the sharded cache).
    pub fn evict_one(&mut self) -> Option<(K, V)> {
        let victim = self.policy.evict_candidate()?;
        let entry = self
            .entries
            .remove(&victim)
            .expect("policy and entry map agree");
        self.used -= entry.weight();
        self.stats.record_eviction();
        Some((victim, entry))
    }

    /// Removes an entry, returning it.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let value = self.entries.remove(key)?;
        self.used -= value.weight();
        self.policy.on_remove(key);
        Some(value)
    }

    /// Removes every entry matching a predicate, returning how many were
    /// removed. Used by the coherence protocol to invalidate an object's
    /// chunks.
    pub fn remove_matching(&mut self, mut pred: impl FnMut(&K) -> bool) -> usize {
        // Victim order does not escape: each removal is independent and
        // the final cache and policy state are order-insensitive.
        // agar-lint: allow(determinism)
        let victims: Vec<K> = self.entries.keys().filter(|k| pred(k)).cloned().collect();
        let n = victims.len();
        for key in victims {
            self.remove(&key);
        }
        n
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Bytes still available.
    pub fn available_bytes(&self) -> usize {
        self.capacity - self.used
    }

    /// Iterates over cached keys in arbitrary order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// Iterates over entries in arbitrary order (no metadata update).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter()
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&mut self) {
        // Removal order is immaterial: the loop empties the map.
        // agar-lint: allow(determinism)
        let keys: Vec<K> = self.entries.keys().cloned().collect();
        for key in keys {
            self.remove(&key);
        }
        debug_assert_eq!(self.used, 0);
    }

    /// Read access to the statistics counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable access to the statistics counters (for recording
    /// object-level outcomes).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Resets the statistics counters to zero, returning the old values.
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    /// Borrows the eviction policy (diagnostics).
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::Fifo;
    use crate::lfu::Lfu;
    use crate::lru::Lru;

    fn bytes(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut cache = Cache::with_capacity(100, Lru::new());
        assert!(cache.insert("k", bytes(10)).was_stored());
        assert_eq!(cache.get(&"k").map(Weigh::weight), Some(10));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 10);
        assert_eq!(cache.available_bytes(), 90);
        assert_eq!(cache.stats().chunk_hits(), 1);
    }

    #[test]
    fn miss_is_counted() {
        let mut cache: Cache<&str, Bytes, Lru<&str>> = Cache::with_capacity(10, Lru::new());
        assert!(cache.get(&"nope").is_none());
        assert_eq!(cache.stats().chunk_misses(), 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut cache = Cache::with_capacity(25, Lru::new());
        for i in 0..100u32 {
            cache.insert(i, bytes(10));
            assert!(cache.used_bytes() <= 25, "at insert {i}");
            assert!(cache.len() <= 2);
        }
        assert_eq!(cache.stats().evictions(), 98);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut cache = Cache::with_capacity(30, Lru::new());
        cache.insert(1u32, bytes(10));
        cache.insert(2, bytes(10));
        cache.insert(3, bytes(10));
        cache.get(&1); // refresh 1
        let out = cache.insert(4, bytes(10));
        match out {
            InsertOutcome::Inserted { evicted } => {
                assert_eq!(evicted.len(), 1);
                assert_eq!(evicted[0].0, 2);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(cache.contains(&1));
    }

    #[test]
    fn eviction_follows_lfu_order() {
        let mut cache = Cache::with_capacity(30, Lfu::new());
        cache.insert(1u32, bytes(10));
        cache.insert(2, bytes(10));
        cache.insert(3, bytes(10));
        cache.get(&1);
        cache.get(&1);
        cache.get(&3);
        let out = cache.insert(4, bytes(10));
        assert_eq!(out.evicted()[0].0, 2);
    }

    #[test]
    fn fifo_ignores_access_order() {
        let mut cache = Cache::with_capacity(20, Fifo::new());
        cache.insert(1u32, bytes(10));
        cache.insert(2, bytes(10));
        cache.get(&1);
        let out = cache.insert(3, bytes(10));
        assert_eq!(out.evicted()[0].0, 1);
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut cache = Cache::with_capacity(5, Lru::new());
        let out = cache.insert("big", bytes(6));
        assert!(matches!(out, InsertOutcome::Rejected { .. }));
        assert!(!out.was_stored());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejected_inserts(), 1);
    }

    #[test]
    fn exact_fit_accepted() {
        let mut cache = Cache::with_capacity(5, Lru::new());
        assert!(cache.insert("k", bytes(5)).was_stored());
        assert_eq!(cache.available_bytes(), 0);
    }

    #[test]
    fn replace_frees_old_weight() {
        let mut cache = Cache::with_capacity(20, Lru::new());
        cache.insert("k", bytes(15));
        let out = cache.insert("k", bytes(10));
        match out {
            InsertOutcome::Replaced { previous, evicted } => {
                assert_eq!(previous.weight(), 15);
                assert!(evicted.is_empty());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(cache.used_bytes(), 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn replace_may_still_evict_others() {
        let mut cache = Cache::with_capacity(20, Lru::new());
        cache.insert(1u32, bytes(10));
        cache.insert(2, bytes(10));
        // Growing entry 1 to 15 bytes forces 2 out.
        let out = cache.insert(1, bytes(15));
        match out {
            InsertOutcome::Replaced { evicted, .. } => {
                assert_eq!(evicted[0].0, 2);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(cache.used_bytes(), 15);
    }

    #[test]
    fn remove_and_clear() {
        let mut cache = Cache::with_capacity(100, Lru::new());
        cache.insert(1u32, bytes(10));
        cache.insert(2, bytes(20));
        assert_eq!(cache.remove(&1).map(|v| v.weight()), Some(10));
        assert_eq!(cache.remove(&1), None);
        assert_eq!(cache.used_bytes(), 20);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn remove_matching_bulk_invalidation() {
        let mut cache = Cache::with_capacity(100, Lru::new());
        for i in 0..10u32 {
            cache.insert(i, bytes(5));
        }
        let removed = cache.remove_matching(|k| k % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(cache.len(), 5);
        assert!(cache.keys().all(|k| k % 2 == 1));
    }

    #[test]
    fn peek_does_not_touch_stats_or_order() {
        let mut cache = Cache::with_capacity(20, Lru::new());
        cache.insert(1u32, bytes(10));
        cache.insert(2, bytes(10));
        let _ = cache.peek(&1);
        let _ = cache.peek(&1);
        assert_eq!(cache.stats().chunk_hits(), 0);
        // 1 was not refreshed by peek, so it is still the LRU victim.
        let out = cache.insert(3, bytes(10));
        assert_eq!(out.evicted()[0].0, 1);
    }

    #[test]
    fn take_stats_resets() {
        let mut cache = Cache::with_capacity(20, Lru::new());
        cache.insert(1u32, bytes(10));
        cache.get(&1);
        let taken = cache.take_stats();
        assert_eq!(taken.chunk_hits(), 1);
        assert_eq!(cache.stats().chunk_hits(), 0);
    }

    #[test]
    fn cached_chunk_weighs_its_payload() {
        let c = CachedChunk::new(bytes(123), 9);
        assert_eq!(c.weight(), 123);
        assert_eq!(c.version(), 9);
        assert_eq!(c.data().len(), 123);
    }

    #[test]
    fn evict_one_follows_policy_order() {
        let mut cache = Cache::with_capacity(100, Lru::new());
        cache.insert(1u32, bytes(10));
        cache.insert(2, bytes(10));
        cache.get(&1); // refresh 1: the LRU victim is now 2
        let (key, value) = cache.evict_one().unwrap();
        assert_eq!(key, 2);
        assert_eq!(value.weight(), 10);
        assert_eq!(cache.used_bytes(), 10);
        assert_eq!(cache.stats().evictions(), 1);
        assert!(cache.evict_one().is_some());
        assert!(cache.evict_one().is_none());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn zero_capacity_cache_rejects_everything() {
        let mut cache = Cache::with_capacity(0, Lru::new());
        assert!(!cache.insert("k", bytes(1)).was_stored());
        assert!(cache.is_empty());
    }
}
