//! The per-node disk cache tier: a segmented append-log chunk store.
//!
//! The Agar paper caps the cacheable catalogue at what fits in each
//! node's memcached; f4-style warm tiers show that the long tail of an
//! erasure-coded working set belongs on cheap, slower storage. This
//! module is that tier: a byte-capped store of versioned chunks kept in
//! append-only segment files under a private temp directory, fronted by
//! an in-memory index.
//!
//! Design points:
//!
//! - **Append-log segments.** Writes append a checksummed frame to the
//!   active segment; a segment seals once it passes its target size and
//!   a fresh one becomes active. Overwrites leave the old frame behind
//!   as dead space — the index only ever points at the newest frame.
//! - **FIFO capacity eviction.** When total segment bytes exceed the
//!   budget the *oldest whole segment* is deleted and its still-live
//!   index entries are dropped. That is deterministic, O(1) per
//!   segment, and mirrors how log-structured caches reclaim space.
//! - **Corruption is a miss, never bad bytes.** Every frame carries its
//!   identity, version, length and an FNV-1a checksum. A torn or
//!   corrupted frame (short read, magic/identity mismatch, checksum
//!   failure) purges the index entry and reports a miss so the caller
//!   falls back to the backend; it never panics and never returns
//!   payload bytes that failed verification.
//!
//! The store removes its directory on drop.

use crate::cache::CachedChunk;
use agar_ec::ChunkId;
use agar_obs::{Counter, Labels, MetricsRegistry};
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Frame magic, little-endian, first 4 bytes of every frame.
const FRAME_MAGIC: u32 = 0xA6A7_C4CE;

/// Fixed frame header size: magic(4) + object(8) + index(1) + version(8)
/// + len(4) + checksum(8).
const HEADER_LEN: usize = 4 + 8 + 1 + 8 + 4 + 8;

/// Global counter so concurrent stores in one process get distinct dirs.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// FNV-1a 64-bit over a byte slice — dependency-free payload checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Where a live chunk's newest frame sits.
#[derive(Clone, Copy, Debug)]
struct Location {
    segment: u64,
    /// Byte offset of the frame header within the segment file.
    offset: u64,
    /// Payload length (excludes the header).
    len: u32,
    version: u64,
}

#[derive(Debug)]
struct Segment {
    id: u64,
    path: PathBuf,
    /// Bytes written to this segment (headers + payloads).
    len: u64,
}

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    /// Oldest first; the back entry is the active (append) segment.
    segments: VecDeque<Segment>,
    index: HashMap<ChunkId, Location>,
    /// Sum of all segment lengths, live and dead frames alike.
    used: u64,
    next_segment: u64,
}

/// Outcome of a [`DiskStore::put`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskPutOutcome {
    /// Whether the chunk was stored (false: larger than the whole tier,
    /// or the tier has zero capacity).
    pub stored: bool,
    /// Live entries dropped by whole-segment capacity eviction.
    pub evicted: u64,
}

/// A byte-capped, checksummed, segmented append-log store of versioned
/// chunks under a private temp directory.
///
/// All operations take `&self`; the store is internally synchronised
/// with a single mutex (this is the slow tier — its lock is not on the
/// RAM hot path).
///
/// # Examples
///
/// ```
/// use agar_cache::{CachedChunk, DiskStore};
/// use agar_ec::{ChunkId, ObjectId};
/// use bytes::Bytes;
///
/// let store = DiskStore::new(1 << 20).unwrap();
/// let id = ChunkId::new(ObjectId::new(1), 0);
/// store.put(id, &CachedChunk::new(Bytes::from(vec![7u8; 128]), 3));
/// let back = store.get(&id).unwrap();
/// assert_eq!(back.version(), 3);
/// assert_eq!(back.data().len(), 128);
/// ```
#[derive(Debug)]
pub struct DiskStore {
    capacity: u64,
    /// Target size after which the active segment seals.
    segment_target: u64,
    /// Indexed frames that failed verification on read (torn frame,
    /// identity/length mismatch, checksum failure, I/O error) and were
    /// served as misses instead.
    corrupt_frames: Counter,
    inner: Mutex<Inner>,
}

impl DiskStore {
    /// Creates a store of `capacity_bytes` under a fresh private
    /// directory in the system temp dir (removed on drop).
    pub fn new(capacity_bytes: usize) -> std::io::Result<Self> {
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("agar-disk-{}-{}", std::process::id(), seq));
        std::fs::create_dir_all(&dir)?;
        let capacity = capacity_bytes as u64;
        // Eight segments per tier keeps whole-segment FIFO eviction
        // reasonably granular without a file per chunk.
        let segment_target = (capacity / 8).max(1);
        Ok(DiskStore {
            capacity,
            segment_target,
            corrupt_frames: Counter::new(),
            inner: Mutex::new(Inner {
                dir,
                segments: VecDeque::new(),
                index: HashMap::new(),
                used: 0,
                next_segment: 0,
            }),
        })
    }

    /// The byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity as usize
    }

    /// Bytes currently held in segment files (including dead frames
    /// left behind by overwrites).
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().expect("disk store mutex poisoned").used as usize
    }

    /// Number of live (indexed) chunks.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("disk store mutex poisoned")
            .index
            .len()
    }

    /// Whether no live chunks are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a live entry exists for `id`.
    pub fn contains(&self, id: &ChunkId) -> bool {
        self.inner
            .lock()
            .expect("disk store mutex poisoned")
            .index
            .contains_key(id)
    }

    /// The version of the live entry for `id`, if any.
    pub fn version_of(&self, id: &ChunkId) -> Option<u64> {
        self.inner
            .lock()
            .expect("disk store mutex poisoned")
            .index
            .get(id)
            .map(|l| l.version)
    }

    /// All live chunk ids, in sorted order.
    pub fn keys(&self) -> Vec<ChunkId> {
        let mut keys: Vec<ChunkId> = self
            .inner
            .lock()
            .expect("disk store mutex poisoned")
            .index
            .keys()
            .copied()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Paths of the current segment files, oldest first. Exposed for
    /// crash/corruption tests and diagnostics; treat the contents as
    /// opaque.
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        self.inner
            .lock()
            .expect("disk store mutex poisoned")
            .segments
            .iter()
            .map(|s| s.path.clone())
            .collect()
    }

    /// Appends `chunk` under `id`, replacing any older live entry (the
    /// old frame becomes dead space). Evicts whole oldest segments as
    /// needed to stay within the byte budget.
    pub fn put(&self, id: ChunkId, chunk: &CachedChunk) -> DiskPutOutcome {
        let payload = chunk.data();
        let frame_len = HEADER_LEN as u64 + payload.len() as u64;
        if frame_len > self.capacity {
            return DiskPutOutcome {
                stored: false,
                evicted: 0,
            };
        }
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame.extend_from_slice(&id.object().index().to_le_bytes());
        frame.push(id.index().value());
        frame.extend_from_slice(&chunk.version().to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        let mut inner = self.inner.lock().expect("disk store mutex poisoned");
        let inner = &mut *inner;
        // The disk tier is a single-writer log: the frame write and the
        // index update must be atomic with respect to concurrent gets,
        // so the I/O happens under the store mutex by design.
        // agar-lint: allow(lock-across-blocking)
        let (segment, offset) = match Self::append_frame(inner, self.segment_target, &frame) {
            Ok(at) => at,
            Err(_) => {
                // An I/O failure on the slow tier degrades to "not
                // cached": drop any stale index entry and move on.
                inner.index.remove(&id);
                return DiskPutOutcome {
                    stored: false,
                    evicted: 0,
                };
            }
        };
        inner.index.insert(
            id,
            Location {
                segment,
                offset,
                len: payload.len() as u32,
                version: chunk.version(),
            },
        );
        let evicted = Self::evict_to_capacity(inner, self.capacity);
        DiskPutOutcome {
            stored: inner.index.contains_key(&id),
            evicted,
        }
    }

    /// Looks up `id`, verifying the frame's magic, identity, version
    /// and checksum. Any verification failure (torn frame, corrupted
    /// payload, I/O error) drops the index entry and returns `None` —
    /// a miss, never unverified bytes.
    pub fn get(&self, id: &ChunkId) -> Option<CachedChunk> {
        let mut inner = self.inner.lock().expect("disk store mutex poisoned");
        let inner = &mut *inner;
        let loc = *inner.index.get(id)?;
        // Reads verify against the index entry they resolved, so the
        // frame read stays under the store mutex (single-writer log).
        // agar-lint: allow(lock-across-blocking)
        match Self::read_frame(inner, id, loc) {
            Some(chunk) => Some(chunk),
            None => {
                // An index entry existed but its frame failed
                // verification: that is corruption (or a torn write),
                // not a clean miss — count it so operators can see the
                // tier eating bad frames, then fall through.
                self.corrupt_frames.inc();
                inner.index.remove(id);
                None
            }
        }
    }

    /// Indexed frames that failed verification on read so far.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames.get()
    }

    /// Registers the tier's corruption counter under
    /// `agar_disk_corrupt_frames_total`.
    pub fn register_metrics(&self, registry: &MetricsRegistry, base: Labels) {
        registry.register_counter(
            "agar_disk_corrupt_frames_total",
            "Disk-tier frames that failed verification and were served as misses.",
            base,
            &self.corrupt_frames,
        );
    }

    /// Drops the live entry for `id` (dead space remains until its
    /// segment is evicted). Returns whether an entry existed.
    pub fn remove(&self, id: &ChunkId) -> bool {
        self.inner
            .lock()
            .expect("disk store mutex poisoned")
            .index
            .remove(id)
            .is_some()
    }

    /// Drops every live entry whose id matches `pred`; returns how many
    /// were dropped.
    pub fn remove_matching(&self, mut pred: impl FnMut(&ChunkId) -> bool) -> usize {
        let mut inner = self.inner.lock().expect("disk store mutex poisoned");
        let before = inner.index.len();
        inner.index.retain(|id, _| !pred(id));
        before - inner.index.len()
    }

    fn append_frame(inner: &mut Inner, target: u64, frame: &[u8]) -> std::io::Result<(u64, u64)> {
        let needs_new = match inner.segments.back() {
            Some(active) => active.len >= target,
            None => true,
        };
        if needs_new {
            let id = inner.next_segment;
            inner.next_segment += 1;
            let path = inner.dir.join(format!("seg-{id}.log"));
            File::create(&path)?;
            inner.segments.push_back(Segment { id, path, len: 0 });
        }
        let active = inner.segments.back_mut().expect("active segment exists");
        let mut file = OpenOptions::new().append(true).open(&active.path)?;
        file.write_all(frame)?;
        let offset = active.len;
        active.len += frame.len() as u64;
        inner.used += frame.len() as u64;
        Ok((active.id, offset))
    }

    fn read_frame(inner: &Inner, id: &ChunkId, loc: Location) -> Option<CachedChunk> {
        let segment = inner.segments.iter().find(|s| s.id == loc.segment)?;
        let mut file = File::open(&segment.path).ok()?;
        file.seek(SeekFrom::Start(loc.offset)).ok()?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header).ok()?;
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4-byte header field"));
        let object = u64::from_le_bytes(header[4..12].try_into().expect("8-byte header field"));
        let index = header[12];
        let version = u64::from_le_bytes(header[13..21].try_into().expect("8-byte header field"));
        let len = u32::from_le_bytes(header[21..25].try_into().expect("4-byte header field"));
        let checksum = u64::from_le_bytes(header[25..33].try_into().expect("8-byte header field"));
        if magic != FRAME_MAGIC
            || object != id.object().index()
            || index != id.index().value()
            || version != loc.version
            || len != loc.len
        {
            return None;
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload).ok()?;
        if fnv1a(&payload) != checksum {
            return None;
        }
        Some(CachedChunk::new(Bytes::from(payload), version))
    }

    /// Deletes oldest whole segments until within `capacity`; returns
    /// how many live entries were dropped with them.
    fn evict_to_capacity(inner: &mut Inner, capacity: u64) -> u64 {
        let mut dropped_live = 0u64;
        while inner.used > capacity && inner.segments.len() > 1 {
            let victim = inner.segments.pop_front().expect("len > 1");
            inner.used = inner.used.saturating_sub(victim.len);
            let victim_id = victim.id;
            let before = inner.index.len();
            inner.index.retain(|_, loc| loc.segment != victim_id);
            dropped_live += (before - inner.index.len()) as u64;
            let _ = std::fs::remove_file(&victim.path);
        }
        dropped_live
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.lock() {
            let _ = std::fs::remove_dir_all(&inner.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::ObjectId;

    fn chunk(byte: u8, len: usize, version: u64) -> CachedChunk {
        CachedChunk::new(Bytes::from(vec![byte; len]), version)
    }

    fn id(object: u64, index: u8) -> ChunkId {
        ChunkId::new(ObjectId::new(object), index)
    }

    #[test]
    fn put_get_roundtrip_with_versions() {
        let store = DiskStore::new(1 << 20).unwrap();
        for i in 0..12u8 {
            let out = store.put(id(7, i), &chunk(i, 256, 5));
            assert!(out.stored);
        }
        assert_eq!(store.len(), 12);
        for i in 0..12u8 {
            let back = store.get(&id(7, i)).unwrap();
            assert_eq!(back.version(), 5);
            assert_eq!(back.data().as_ref(), &vec![i; 256][..]);
        }
        assert_eq!(store.version_of(&id(7, 3)), Some(5));
        assert!(store.get(&id(8, 0)).is_none());
    }

    #[test]
    fn overwrite_serves_newest_version() {
        let store = DiskStore::new(1 << 20).unwrap();
        store.put(id(1, 0), &chunk(0xAA, 100, 1));
        store.put(id(1, 0), &chunk(0xBB, 120, 2));
        let back = store.get(&id(1, 0)).unwrap();
        assert_eq!(back.version(), 2);
        assert_eq!(back.data().len(), 120);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest_segments_fifo() {
        // 8 KiB budget, 1 KiB segments: old entries age out as whole
        // segments while recent ones survive.
        let store = DiskStore::new(8 * 1024).unwrap();
        let mut total_evicted = 0;
        for i in 0..64u64 {
            let out = store.put(id(i, 0), &chunk(i as u8, 512, 1));
            assert!(out.stored);
            total_evicted += out.evicted;
        }
        assert!(store.used_bytes() <= 8 * 1024 + 600);
        assert!(total_evicted > 0, "old segments must have been evicted");
        // The most recent insert is always live.
        assert!(store.contains(&id(63, 0)));
        // The very first insert aged out.
        assert!(!store.contains(&id(0, 0)));
    }

    #[test]
    fn oversized_entry_is_rejected_not_stored() {
        let store = DiskStore::new(1024).unwrap();
        let out = store.put(id(1, 0), &chunk(1, 4096, 1));
        assert!(!out.stored);
        assert!(store.is_empty());
    }

    #[test]
    fn remove_matching_purges_object() {
        let store = DiskStore::new(1 << 20).unwrap();
        for i in 0..6u8 {
            store.put(id(1, i), &chunk(i, 64, 1));
            store.put(id(2, i), &chunk(i, 64, 1));
        }
        let removed = store.remove_matching(|c| c.object() == ObjectId::new(1));
        assert_eq!(removed, 6);
        assert_eq!(store.len(), 6);
        assert!(store.get(&id(1, 0)).is_none());
        assert!(store.get(&id(2, 0)).is_some());
    }

    #[test]
    fn truncated_frame_is_a_miss_not_a_panic() {
        let store = DiskStore::new(1 << 20).unwrap();
        store.put(id(1, 0), &chunk(0xCC, 300, 1));
        // Tear the frame: cut the active segment mid-payload.
        let paths = store.segment_paths();
        let active = paths.last().unwrap();
        let len = std::fs::metadata(active).unwrap().len();
        let file = OpenOptions::new().write(true).open(active).unwrap();
        file.set_len(len - 100).unwrap();
        assert!(store.get(&id(1, 0)).is_none());
        // The index entry is purged: a later lookup stays a clean miss.
        assert!(!store.contains(&id(1, 0)));
        assert_eq!(store.corrupt_frames(), 1);
        // The clean miss that followed the purge is not corruption.
        assert!(store.get(&id(1, 0)).is_none());
        assert_eq!(store.corrupt_frames(), 1);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let store = DiskStore::new(1 << 20).unwrap();
        store.put(id(1, 0), &chunk(0xDD, 300, 1));
        let paths = store.segment_paths();
        let active = paths.last().unwrap();
        // Flip a byte inside the payload (past the 33-byte header).
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(active)
            .unwrap();
        file.seek(SeekFrom::Start(50)).unwrap();
        let mut b = [0u8; 1];
        file.read_exact(&mut b).unwrap();
        file.seek(SeekFrom::Start(50)).unwrap();
        file.write_all(&[b[0] ^ 0xFF]).unwrap();
        assert!(store.get(&id(1, 0)).is_none());
        assert!(!store.contains(&id(1, 0)));
        assert_eq!(store.corrupt_frames(), 1);
    }

    #[test]
    fn directory_is_removed_on_drop() {
        let store = DiskStore::new(1 << 20).unwrap();
        store.put(id(1, 0), &chunk(1, 64, 1));
        let dir = store.segment_paths()[0].parent().unwrap().to_path_buf();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists());
    }
}
