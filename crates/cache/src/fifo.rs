//! First-In First-Out eviction.
//!
//! The simplest policy: victims leave in insertion order and accesses do
//! not refresh position. Used as a baseline and in ablations.

use crate::policy::EvictionPolicy;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Debug;
use std::hash::Hash;

/// First-In First-Out policy state.
#[derive(Clone, Debug, Default)]
pub struct Fifo<K> {
    seq: u64,
    by_seq: BTreeMap<u64, K>,
    by_key: HashMap<K, u64>,
}

impl<K: Eq + Hash + Clone> Fifo<K> {
    /// Creates an empty FIFO policy.
    pub fn new() -> Self {
        Fifo {
            seq: 0,
            by_seq: BTreeMap::new(),
            by_key: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash + Clone + Debug> EvictionPolicy<K> for Fifo<K> {
    fn on_insert(&mut self, key: &K) {
        if self.by_key.contains_key(key) {
            return; // position is fixed at first insertion
        }
        let seq = self.seq;
        self.seq += 1;
        self.by_seq.insert(seq, key.clone());
        self.by_key.insert(key.clone(), seq);
    }

    fn on_access(&mut self, _key: &K) {
        // FIFO ignores accesses by definition.
    }

    fn on_remove(&mut self, key: &K) {
        if let Some(seq) = self.by_key.remove(key) {
            self.by_seq.remove(&seq);
        }
    }

    fn evict_candidate(&mut self) -> Option<K> {
        let (&seq, _) = self.by_seq.iter().next()?;
        let key = self.by_seq.remove(&seq).expect("peeked entry exists");
        self.by_key.remove(&key);
        Some(key)
    }

    fn peek_candidate(&self) -> Option<&K> {
        self.by_seq.values().next()
    }

    fn tracked(&self) -> usize {
        self.by_key.len()
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_insertion_order() {
        let mut fifo = Fifo::new();
        for k in [3u32, 1, 2] {
            fifo.on_insert(&k);
        }
        assert_eq!(fifo.evict_candidate(), Some(3));
        assert_eq!(fifo.evict_candidate(), Some(1));
        assert_eq!(fifo.evict_candidate(), Some(2));
        assert_eq!(fifo.evict_candidate(), None);
    }

    #[test]
    fn access_does_not_refresh() {
        let mut fifo = Fifo::new();
        fifo.on_insert(&1u32);
        fifo.on_insert(&2);
        fifo.on_access(&1);
        fifo.on_access(&1);
        assert_eq!(fifo.evict_candidate(), Some(1));
    }

    #[test]
    fn reinsert_keeps_original_position() {
        let mut fifo = Fifo::new();
        fifo.on_insert(&1u32);
        fifo.on_insert(&2);
        fifo.on_insert(&1);
        assert_eq!(fifo.tracked(), 2);
        assert_eq!(fifo.evict_candidate(), Some(1));
    }

    #[test]
    fn remove_untracks() {
        let mut fifo = Fifo::new();
        fifo.on_insert(&1u32);
        fifo.on_remove(&1);
        fifo.on_remove(&9);
        assert_eq!(fifo.tracked(), 0);
        assert_eq!(fifo.evict_candidate(), None);
    }
}
