//! Least Frequently Used eviction.
//!
//! Keys are ordered by `(access_count, recency_sequence)` in a `BTreeMap`,
//! so the victim is the least frequently used key, with LRU as the
//! tie-break (the hybrid the WLFU literature recommends and what the
//! paper's LFU baseline needs). All operations are `O(log n)`.

use crate::policy::EvictionPolicy;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Debug;
use std::hash::Hash;

/// Least Frequently Used policy state.
#[derive(Clone, Debug, Default)]
pub struct Lfu<K> {
    seq: u64,
    /// Ordered by (frequency, recency sequence): first = coldest.
    by_rank: BTreeMap<(u64, u64), K>,
    by_key: HashMap<K, (u64, u64)>,
}

impl<K: Eq + Hash + Clone> Lfu<K> {
    /// Creates an empty LFU policy.
    pub fn new() -> Self {
        Lfu {
            seq: 0,
            by_rank: BTreeMap::new(),
            by_key: HashMap::new(),
        }
    }

    fn bump(&mut self, key: &K, reset: bool) {
        let freq = match self.by_key.get(key).copied() {
            Some(rank @ (freq, _)) => {
                self.by_rank.remove(&rank);
                if reset {
                    1
                } else {
                    freq + 1
                }
            }
            None => 1,
        };
        let rank = (freq, self.seq);
        self.seq += 1;
        self.by_rank.insert(rank, key.clone());
        self.by_key.insert(key.clone(), rank);
    }

    /// The access count currently recorded for `key`.
    pub fn frequency(&self, key: &K) -> u64 {
        self.by_key.get(key).map_or(0, |&(f, _)| f)
    }

    /// The current coldest key, if any (does not remove it).
    pub fn peek_lfu(&self) -> Option<&K> {
        self.by_rank.values().next()
    }
}

impl<K: Eq + Hash + Clone + Debug> EvictionPolicy<K> for Lfu<K> {
    fn on_insert(&mut self, key: &K) {
        // A re-insert after eviction starts counting afresh; a re-insert
        // of a live key just counts as an access.
        let live = self.by_key.contains_key(key);
        self.bump(key, !live);
    }

    fn on_access(&mut self, key: &K) {
        debug_assert!(
            self.by_key.contains_key(key),
            "access to untracked key {key:?}"
        );
        self.bump(key, false);
    }

    fn on_remove(&mut self, key: &K) {
        if let Some(rank) = self.by_key.remove(key) {
            self.by_rank.remove(&rank);
        }
    }

    fn evict_candidate(&mut self) -> Option<K> {
        let (&rank, _) = self.by_rank.iter().next()?;
        let key = self.by_rank.remove(&rank).expect("peeked entry exists");
        self.by_key.remove(&key);
        Some(key)
    }

    fn peek_candidate(&self) -> Option<&K> {
        self.peek_lfu()
    }

    fn tracked(&self) -> usize {
        self.by_key.len()
    }

    fn name(&self) -> &'static str {
        "lfu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new();
        for k in [1u32, 2, 3] {
            lfu.on_insert(&k);
        }
        lfu.on_access(&1);
        lfu.on_access(&1);
        lfu.on_access(&3);
        // Frequencies: 1 -> 3, 2 -> 1, 3 -> 2.
        assert_eq!(lfu.evict_candidate(), Some(2));
        assert_eq!(lfu.evict_candidate(), Some(3));
        assert_eq!(lfu.evict_candidate(), Some(1));
        assert_eq!(lfu.evict_candidate(), None);
    }

    #[test]
    fn lru_breaks_frequency_ties() {
        let mut lfu = Lfu::new();
        for k in [1u32, 2, 3] {
            lfu.on_insert(&k);
        }
        // All frequency 1; 1 is stalest.
        assert_eq!(lfu.peek_lfu(), Some(&1));
        lfu.on_access(&1); // bump 1 to freq 2 AND most recent
        assert_eq!(lfu.evict_candidate(), Some(2));
    }

    #[test]
    fn frequency_accessor() {
        let mut lfu = Lfu::new();
        lfu.on_insert(&7u32);
        assert_eq!(lfu.frequency(&7), 1);
        lfu.on_access(&7);
        lfu.on_access(&7);
        assert_eq!(lfu.frequency(&7), 3);
        assert_eq!(lfu.frequency(&8), 0);
    }

    #[test]
    fn reinsert_after_eviction_resets_count() {
        let mut lfu = Lfu::new();
        lfu.on_insert(&1u32);
        for _ in 0..10 {
            lfu.on_access(&1);
        }
        assert_eq!(lfu.evict_candidate(), Some(1));
        lfu.on_insert(&1);
        assert_eq!(lfu.frequency(&1), 1, "history must not survive eviction");
    }

    #[test]
    fn reinsert_of_live_key_counts_as_access() {
        let mut lfu = Lfu::new();
        lfu.on_insert(&1u32);
        lfu.on_insert(&1);
        assert_eq!(lfu.tracked(), 1);
        assert_eq!(lfu.frequency(&1), 2);
    }

    #[test]
    fn remove_untracks() {
        let mut lfu = Lfu::new();
        lfu.on_insert(&1u32);
        lfu.on_insert(&2);
        lfu.on_remove(&2);
        assert_eq!(lfu.tracked(), 1);
        lfu.on_remove(&42); // unknown: no-op
        assert_eq!(lfu.evict_candidate(), Some(1));
    }
}
