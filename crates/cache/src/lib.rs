//! # agar-cache — the in-memory chunk cache substrate
//!
//! The Agar paper deploys one memcached instance per region and drives it
//! either with memcached's native LRU (the LRU baselines), with an
//! LFU-tracking proxy (the LFU baselines), or with explicit hints from
//! Agar's cache manager. This crate provides that caching layer in Rust:
//!
//! - [`Cache`] — a byte-bounded map with per-entry weights and
//!   hit/miss/eviction [`CacheStats`] (including the paper's
//!   total-vs-partial object hit accounting for Figure 7);
//! - eviction policies: [`Lru`], [`Lfu`], [`Fifo`], [`Slru`], selectable
//!   at runtime through [`AnyPolicy`]/[`PolicyKind`];
//! - [`CountMinSketch`] and the [`TinyLfu`] admission wrapper, the
//!   scaling mechanism the paper's §VII suggests for Agar's request
//!   monitor.
//!
//! # Examples
//!
//! A 10 MB chunk cache with the runtime-selectable policy the experiment
//! harness uses:
//!
//! ```
//! use agar_cache::{AnyPolicy, Cache, CachedChunk, PolicyKind};
//! use agar_ec::{ChunkId, ObjectId};
//! use bytes::Bytes;
//!
//! let mut cache = Cache::with_capacity(
//!     10 * 1_000_000,
//!     AnyPolicy::new(PolicyKind::Lfu),
//! );
//! let id = ChunkId::new(ObjectId::new(0), 3);
//! cache.insert(id, CachedChunk::new(Bytes::from(vec![0u8; 111_112]), 1));
//! assert!(cache.get(&id).is_some());
//! assert_eq!(cache.stats().chunk_hits(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod disk;
pub mod fifo;
pub mod lfu;
pub mod lru;
pub mod policy;
pub mod sharded;
pub mod sketch;
pub mod slru;
pub mod stats;
pub mod tiered;
pub mod tinylfu;

pub use cache::{Cache, CachedChunk, InsertOutcome, Weigh};
pub use disk::{DiskPutOutcome, DiskStore};
pub use fifo::Fifo;
pub use lfu::Lfu;
pub use lru::Lru;
pub use policy::{AnyPolicy, EvictionPolicy, PolicyKind};
pub use sharded::{ShardedChunkCache, DEFAULT_CACHE_SHARDS};
pub use sketch::CountMinSketch;
pub use slru::Slru;
pub use stats::{AtomicCacheStats, CacheStats};
pub use tiered::{CacheTier, TieredChunkCache};
pub use tinylfu::TinyLfu;

use agar_ec::ChunkId;

/// The chunk cache type the rest of the system uses: keyed by
/// [`ChunkId`], holding [`CachedChunk`]s, with a runtime-selected policy.
pub type ChunkCache = Cache<ChunkId, CachedChunk, AnyPolicy<ChunkId>>;

/// Builds a [`ChunkCache`] of `capacity_bytes` with the given policy.
pub fn chunk_cache(capacity_bytes: usize, kind: PolicyKind) -> ChunkCache {
    Cache::with_capacity(capacity_bytes, AnyPolicy::new(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::ObjectId;
    use bytes::Bytes;

    #[test]
    fn chunk_cache_alias_works_end_to_end() {
        let mut cache = chunk_cache(1000, PolicyKind::Lru);
        for i in 0..20u8 {
            let id = ChunkId::new(ObjectId::new(0), i);
            cache.insert(id, CachedChunk::new(Bytes::from(vec![i; 100]), 0));
        }
        // 1000 bytes capacity, 100-byte chunks: at most 10 live entries.
        assert_eq!(cache.len(), 10);
        assert!(cache.used_bytes() <= 1000);
        // The last 10 inserted survive under LRU.
        for i in 10..20u8 {
            assert!(cache.contains(&ChunkId::new(ObjectId::new(0), i)));
        }
    }
}
