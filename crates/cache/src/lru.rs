//! Least Recently Used eviction.
//!
//! The recency order is kept in a `BTreeMap<sequence, key>`: every insert
//! or access assigns a fresh monotonically increasing sequence number, so
//! the map's first entry is always the least recently used key. All
//! operations are `O(log n)`.

use crate::policy::EvictionPolicy;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Debug;
use std::hash::Hash;

/// Least Recently Used policy state.
#[derive(Clone, Debug, Default)]
pub struct Lru<K> {
    seq: u64,
    by_seq: BTreeMap<u64, K>,
    by_key: HashMap<K, u64>,
}

impl<K: Eq + Hash + Clone> Lru<K> {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        Lru {
            seq: 0,
            by_seq: BTreeMap::new(),
            by_key: HashMap::new(),
        }
    }

    fn touch(&mut self, key: &K) {
        if let Some(old) = self.by_key.get(key).copied() {
            self.by_seq.remove(&old);
        }
        let seq = self.seq;
        self.seq += 1;
        self.by_seq.insert(seq, key.clone());
        self.by_key.insert(key.clone(), seq);
    }

    /// The current least recently used key, if any (does not remove it).
    pub fn peek_lru(&self) -> Option<&K> {
        self.by_seq.values().next()
    }

    /// Keys from least to most recently used (test/diagnostic helper).
    pub fn iter_lru_order(&self) -> impl Iterator<Item = &K> {
        self.by_seq.values()
    }
}

impl<K: Eq + Hash + Clone + Debug> EvictionPolicy<K> for Lru<K> {
    fn on_insert(&mut self, key: &K) {
        self.touch(key);
    }

    fn on_access(&mut self, key: &K) {
        debug_assert!(
            self.by_key.contains_key(key),
            "access to untracked key {key:?}"
        );
        self.touch(key);
    }

    fn on_remove(&mut self, key: &K) {
        if let Some(seq) = self.by_key.remove(key) {
            self.by_seq.remove(&seq);
        }
    }

    fn evict_candidate(&mut self) -> Option<K> {
        let (&seq, _) = self.by_seq.iter().next()?;
        let key = self.by_seq.remove(&seq).expect("peeked entry exists");
        self.by_key.remove(&key);
        Some(key)
    }

    fn peek_candidate(&self) -> Option<&K> {
        self.peek_lru()
    }

    fn tracked(&self) -> usize {
        self.by_key.len()
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new();
        for k in 1..=3u32 {
            lru.on_insert(&k);
        }
        assert_eq!(lru.evict_candidate(), Some(1));
        assert_eq!(lru.evict_candidate(), Some(2));
        assert_eq!(lru.evict_candidate(), Some(3));
        assert_eq!(lru.evict_candidate(), None);
    }

    #[test]
    fn access_refreshes_recency() {
        let mut lru = Lru::new();
        for k in 1..=3u32 {
            lru.on_insert(&k);
        }
        lru.on_access(&1); // 1 becomes most recent
        assert_eq!(lru.evict_candidate(), Some(2));
        assert_eq!(lru.evict_candidate(), Some(3));
        assert_eq!(lru.evict_candidate(), Some(1));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut lru = Lru::new();
        lru.on_insert(&1u32);
        lru.on_insert(&2);
        lru.on_insert(&1); // refresh, not duplicate
        assert_eq!(lru.tracked(), 2);
        assert_eq!(lru.evict_candidate(), Some(2));
    }

    #[test]
    fn remove_untracks() {
        let mut lru = Lru::new();
        lru.on_insert(&1u32);
        lru.on_insert(&2);
        lru.on_remove(&1);
        assert_eq!(lru.tracked(), 1);
        assert_eq!(lru.evict_candidate(), Some(2));
        // Removing an unknown key is a no-op.
        lru.on_remove(&99);
        assert_eq!(lru.tracked(), 0);
    }

    #[test]
    fn peek_and_order_iteration() {
        let mut lru = Lru::new();
        for k in [10u32, 20, 30] {
            lru.on_insert(&k);
        }
        lru.on_access(&10);
        assert_eq!(lru.peek_lru(), Some(&20));
        let order: Vec<u32> = lru.iter_lru_order().copied().collect();
        assert_eq!(order, vec![20, 30, 10]);
    }
}
