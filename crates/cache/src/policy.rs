//! The eviction-policy abstraction.
//!
//! A policy tracks key recency/frequency metadata and nominates eviction
//! victims; the [`crate::Cache`] owns the actual entries and byte
//! accounting. Policies see only keys, which keeps them reusable across
//! value types.

use std::fmt::Debug;
use std::hash::Hash;

/// An eviction policy over keys of type `K`.
///
/// The cache calls the `on_*` hooks to keep the policy's metadata in sync
/// with the entry map, and [`EvictionPolicy::evict_candidate`] when it
/// needs space. A policy must uphold:
///
/// - after `on_insert(k)` (and before `on_remove(k)`), `k` is eligible to
///   be returned by `evict_candidate`;
/// - `evict_candidate` removes the returned key from the policy's own
///   metadata (the cache removes the entry itself);
/// - `evict_candidate` returns `None` only when the policy tracks no keys.
pub trait EvictionPolicy<K: Eq + Hash + Clone> {
    /// A new key was inserted into the cache.
    fn on_insert(&mut self, key: &K);

    /// An existing key was read.
    fn on_access(&mut self, key: &K);

    /// A key was removed from the cache (explicitly, not by eviction).
    fn on_remove(&mut self, key: &K);

    /// Nominates and removes the next eviction victim.
    fn evict_candidate(&mut self) -> Option<K>;

    /// The key [`EvictionPolicy::evict_candidate`] would return next,
    /// without removing it (used by admission policies such as TinyLFU).
    fn peek_candidate(&self) -> Option<&K>;

    /// Number of keys currently tracked.
    fn tracked(&self) -> usize;

    /// Short human-readable policy name (e.g. `"lru"`).
    fn name(&self) -> &'static str;
}

/// Which built-in eviction policy to instantiate.
///
/// This is the runtime-selectable counterpart of the concrete policy
/// types; the experiment harness uses it to switch between the paper's
/// LRU and LFU baselines from CLI arguments.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PolicyKind {
    /// Least Recently Used (memcached's default, the paper's LRU baseline).
    #[default]
    Lru,
    /// Least Frequently Used (the paper's LFU baseline, which required an
    /// extra proxy to track frequencies).
    Lfu,
    /// First-In First-Out (no recency update on access).
    Fifo,
    /// Segmented LRU (probation + protected segments).
    Slru,
}

impl PolicyKind {
    /// All built-in policy kinds.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Fifo,
        PolicyKind::Slru,
    ];
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Slru => "slru",
        };
        f.write_str(s)
    }
}

/// A runtime-selected eviction policy (enum dispatch over the built-ins).
#[derive(Clone, Debug)]
pub enum AnyPolicy<K: Eq + Hash + Clone + Debug> {
    /// Least Recently Used.
    Lru(crate::lru::Lru<K>),
    /// Least Frequently Used.
    Lfu(crate::lfu::Lfu<K>),
    /// First-In First-Out.
    Fifo(crate::fifo::Fifo<K>),
    /// Segmented LRU.
    Slru(crate::slru::Slru<K>),
}

impl<K: Eq + Hash + Clone + Debug> AnyPolicy<K> {
    /// Instantiates the policy selected by `kind`.
    pub fn new(kind: PolicyKind) -> Self {
        match kind {
            PolicyKind::Lru => AnyPolicy::Lru(crate::lru::Lru::new()),
            PolicyKind::Lfu => AnyPolicy::Lfu(crate::lfu::Lfu::new()),
            PolicyKind::Fifo => AnyPolicy::Fifo(crate::fifo::Fifo::new()),
            PolicyKind::Slru => AnyPolicy::Slru(crate::slru::Slru::new()),
        }
    }

    /// The kind this policy was instantiated from.
    pub fn kind(&self) -> PolicyKind {
        match self {
            AnyPolicy::Lru(_) => PolicyKind::Lru,
            AnyPolicy::Lfu(_) => PolicyKind::Lfu,
            AnyPolicy::Fifo(_) => PolicyKind::Fifo,
            AnyPolicy::Slru(_) => PolicyKind::Slru,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyPolicy::Lru($p) => $body,
            AnyPolicy::Lfu($p) => $body,
            AnyPolicy::Fifo($p) => $body,
            AnyPolicy::Slru($p) => $body,
        }
    };
}

impl<K: Eq + Hash + Clone + Debug> EvictionPolicy<K> for AnyPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        dispatch!(self, p => p.on_insert(key))
    }
    fn on_access(&mut self, key: &K) {
        dispatch!(self, p => p.on_access(key))
    }
    fn on_remove(&mut self, key: &K) {
        dispatch!(self, p => p.on_remove(key))
    }
    fn evict_candidate(&mut self) -> Option<K> {
        dispatch!(self, p => p.evict_candidate())
    }
    fn peek_candidate(&self) -> Option<&K> {
        dispatch!(self, p => p.peek_candidate())
    }
    fn tracked(&self) -> usize {
        dispatch!(self, p => p.tracked())
    }
    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kind_display() {
        assert_eq!(PolicyKind::Lru.to_string(), "lru");
        assert_eq!(PolicyKind::Lfu.to_string(), "lfu");
        assert_eq!(PolicyKind::Fifo.to_string(), "fifo");
        assert_eq!(PolicyKind::Slru.to_string(), "slru");
        assert_eq!(PolicyKind::default(), PolicyKind::Lru);
    }

    #[test]
    fn any_policy_dispatches_and_reports_kind() {
        for kind in PolicyKind::ALL {
            let mut p: AnyPolicy<u32> = AnyPolicy::new(kind);
            assert_eq!(p.kind(), kind);
            assert_eq!(p.tracked(), 0);
            p.on_insert(&1);
            p.on_insert(&2);
            p.on_access(&1);
            assert_eq!(p.tracked(), 2);
            let victim = p.evict_candidate().unwrap();
            assert!(victim == 1 || victim == 2);
            assert_eq!(p.tracked(), 1);
            p.on_remove(&if victim == 1 { 2 } else { 1 });
            assert_eq!(p.tracked(), 0);
            assert!(p.evict_candidate().is_none());
            assert!(!p.name().is_empty());
        }
    }
}
