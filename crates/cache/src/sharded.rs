//! A sharded chunk cache for concurrently shared nodes.
//!
//! The plain [`Cache`] needs `&mut self` (its eviction
//! policy updates recency metadata on every read), so a node sharing one
//! cache across client threads would serialise every lookup behind a
//! single lock. [`ShardedChunkCache`] removes that bottleneck:
//!
//! - entries are spread over `N` shards by a deterministic hash of the
//!   [`ChunkId`], each shard a small [`ChunkCache`] behind its own
//!   mutex, so lookups of different chunks proceed in parallel;
//! - the *byte* capacity stays **global**: an atomic counter tracks the
//!   total, and inserts evict per-shard policy victims round-robin
//!   across shards until the whole cache fits again (approximate global
//!   LRU/LFU, exact global capacity);
//! - statistics live in an [`AtomicCacheStats`], so hot-path hit/miss
//!   accounting never takes a lock. (The per-shard caches keep their
//!   own private counters too — those only see shard-local events and
//!   are deliberately never exposed here; [`ShardedChunkCache::stats`]
//!   is the single source of truth.)
//!
//! Everything is deterministic under single-threaded use: shard
//! selection hashes only the chunk id, and the eviction cursor advances
//! in call order.

use crate::cache::{CachedChunk, InsertOutcome, Weigh};
use crate::policy::{AnyPolicy, PolicyKind};
use crate::stats::{AtomicCacheStats, CacheStats};
use crate::{Cache, ChunkCache};
use agar_ec::ChunkId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default shard count: enough to keep a handful of client threads off
/// each other's locks without fragmenting tiny test caches.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// A concurrently accessible chunk cache: `N` independently locked
/// shards under one global byte budget.
///
/// # Examples
///
/// ```
/// use agar_cache::{CachedChunk, PolicyKind, ShardedChunkCache};
/// use agar_ec::{ChunkId, ObjectId};
/// use bytes::Bytes;
///
/// let cache = ShardedChunkCache::new(1_000, PolicyKind::Lru, 4);
/// let id = ChunkId::new(ObjectId::new(0), 3);
/// cache.insert(id, CachedChunk::new(Bytes::from(vec![0u8; 100]), 1));
/// assert_eq!(cache.get(&id).map(|c| c.version()), Some(1));
/// assert_eq!(cache.stats().chunk_hits(), 1);
/// ```
pub struct ShardedChunkCache {
    shards: Vec<Mutex<ChunkCache>>,
    capacity: usize,
    used: AtomicUsize,
    evict_cursor: AtomicUsize,
    stats: AtomicCacheStats,
}

impl ShardedChunkCache {
    /// Creates a cache bounded to `capacity_bytes` with `shards` shards
    /// (clamped to at least one) and the given eviction policy per
    /// shard.
    pub fn new(capacity_bytes: usize, policy: PolicyKind, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedChunkCache {
            // Each shard is allowed the full byte budget: the *global*
            // capacity is enforced by `evict_to_capacity`, so a skewed
            // shard never evicts while the cache as a whole still fits.
            shards: (0..shards)
                .map(|_| Mutex::new(Cache::with_capacity(capacity_bytes, AnyPolicy::new(policy))))
                .collect(),
            capacity: capacity_bytes,
            used: AtomicUsize::new(0),
            evict_cursor: AtomicUsize::new(0),
            stats: AtomicCacheStats::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, key: &ChunkId) -> usize {
        // Deterministic multiply-xor mix of (object id, chunk index);
        // `HashMap`'s default hasher is randomly keyed per process, which
        // would break run-to-run reproducibility.
        let mut h = key
            .object()
            .index()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(key.index().value()).wrapping_mul(0xA24B_AED4_963E_E407));
        h ^= h >> 32;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 33) as usize % self.shards.len()
    }

    /// Reads a chunk, updating the owning shard's recency metadata and
    /// the shared hit/miss counters. Returns a clone (cheap: the payload
    /// is reference-counted [`bytes::Bytes`]).
    pub fn get(&self, key: &ChunkId) -> Option<CachedChunk> {
        let found = self.shards[self.shard_index(key)].lock().get(key).cloned();
        match found {
            Some(chunk) => {
                self.stats.record_chunk_hit();
                Some(chunk)
            }
            None => {
                self.stats.record_chunk_miss();
                None
            }
        }
    }

    /// Reads a chunk without touching recency metadata or counters.
    pub fn peek(&self, key: &ChunkId) -> Option<CachedChunk> {
        self.shards[self.shard_index(key)].lock().peek(key).cloned()
    }

    /// Whether the chunk is present (no metadata update).
    pub fn contains(&self, key: &ChunkId) -> bool {
        self.shards[self.shard_index(key)].lock().contains(key)
    }

    /// Inserts a chunk, evicting across shards until the global byte
    /// budget fits. Returns whether the chunk was stored (an entry
    /// larger than the whole cache is rejected).
    pub fn insert(&self, key: ChunkId, value: CachedChunk) -> bool {
        self.insert_collect(key, value).is_some()
    }

    /// Like [`ShardedChunkCache::insert`], but returns the eviction
    /// victims (policy victims in the target shard plus global-capacity
    /// victims across shards) so a tiered front can demote them instead
    /// of dropping them. `None` means the insert was rejected.
    ///
    /// The common no-eviction path returns an empty vector, which does
    /// not allocate.
    pub fn insert_collect(
        &self,
        key: ChunkId,
        value: CachedChunk,
    ) -> Option<Vec<(ChunkId, CachedChunk)>> {
        let weight = value.weight();
        if weight > self.capacity {
            self.stats.record_rejected_insert();
            return None;
        }
        let mut victims = Vec::new();
        // `used` is adjusted while the shard lock is still held: an
        // entry's weight is always added before any concurrent
        // remove/evict of that entry can subtract it, so the counter
        // can never underflow.
        {
            let mut shard = self.shards[self.shard_index(&key)].lock();
            let outcome = shard.insert(key, value);
            let mut freed = 0usize;
            match outcome {
                InsertOutcome::Inserted { evicted } => {
                    for (victim_key, victim) in evicted {
                        freed += victim.weight();
                        self.stats.record_eviction();
                        victims.push((victim_key, victim));
                    }
                }
                InsertOutcome::Replaced { previous, evicted } => {
                    freed += previous.weight();
                    for (victim_key, victim) in evicted {
                        freed += victim.weight();
                        self.stats.record_eviction();
                        victims.push((victim_key, victim));
                    }
                }
                InsertOutcome::Rejected { .. } => {
                    self.stats.record_rejected_insert();
                    return None;
                }
            }
            self.stats.record_insertion();
            self.used.fetch_add(weight, Ordering::AcqRel);
            if freed > 0 {
                self.used.fetch_sub(freed, Ordering::AcqRel);
            }
        }
        self.evict_to_capacity(&mut victims);
        Some(victims)
    }

    /// Evicts per-shard policy victims, visiting shards round-robin,
    /// until the global byte budget fits (approximate global eviction
    /// order, exact global capacity). Holds at most one shard lock at a
    /// time, so it can never deadlock against concurrent lookups.
    /// Victims are appended to `victims` for the caller to demote or
    /// drop.
    fn evict_to_capacity(&self, victims: &mut Vec<(ChunkId, CachedChunk)>) {
        let n = self.shards.len();
        while self.used.load(Ordering::Acquire) > self.capacity {
            let start = self.evict_cursor.fetch_add(1, Ordering::Relaxed);
            let mut evicted_one = false;
            for offset in 0..n {
                let mut shard = self.shards[(start + offset) % n].lock();
                if let Some((key, entry)) = shard.evict_one() {
                    // Subtract under the shard lock (see `insert`).
                    self.used.fetch_sub(entry.weight(), Ordering::AcqRel);
                    self.stats.record_eviction();
                    victims.push((key, entry));
                    evicted_one = true;
                    break;
                }
            }
            if !evicted_one {
                break; // every shard is already empty
            }
        }
    }

    /// Removes a chunk, returning it.
    pub fn remove(&self, key: &ChunkId) -> Option<CachedChunk> {
        let mut shard = self.shards[self.shard_index(key)].lock();
        let removed = shard.remove(key);
        if let Some(chunk) = &removed {
            // Subtract under the shard lock (see `insert`).
            self.used.fetch_sub(chunk.weight(), Ordering::AcqRel);
        }
        removed
    }

    /// Removes every chunk matching a predicate (bulk invalidation),
    /// returning how many were removed.
    pub fn remove_matching(&self, mut pred: impl FnMut(&ChunkId) -> bool) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut guard = shard.lock();
            let before = guard.used_bytes();
            removed += guard.remove_matching(&mut pred);
            let freed = before - guard.used_bytes();
            if freed > 0 {
                // Subtract under the shard lock (see `insert`).
                self.used.fetch_sub(freed, Ordering::AcqRel);
            }
        }
        removed
    }

    /// Every cached chunk id, in shard order (callers sort as needed).
    pub fn keys(&self) -> Vec<ChunkId> {
        let mut keys = Vec::new();
        for shard in &self.shards {
            keys.extend(shard.lock().keys().copied());
        }
        keys
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Bytes currently stored (approximate only while inserts are
    /// mid-flight on other threads).
    pub fn used_bytes(&self) -> usize {
        self.used.load(Ordering::Acquire)
    }

    /// Configured global capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// A point-in-time snapshot of the shared statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Late-binds the cache's counters into a metrics registry; see
    /// [`AtomicCacheStats::register_with`].
    pub fn register_metrics(&self, registry: &agar_obs::MetricsRegistry, base: &agar_obs::Labels) {
        self.stats.register_with(registry, base);
    }

    /// Records an object-level read outcome (lock-free); see
    /// [`CacheStats::record_object_read`].
    pub fn record_object_read(&self, cached_chunks: usize, needed_chunks: usize) {
        self.stats.record_object_read(cached_chunks, needed_chunks);
    }

    /// Records one degraded decode that reused a cached decode plan
    /// (lock-free); see [`CacheStats::decode_plan_hits`].
    pub fn record_decode_plan_hit(&self) {
        self.stats.record_decode_plan_hit();
    }

    /// Records one systematic fast-path object read (lock-free); see
    /// [`CacheStats::systematic_fast_reads`].
    pub fn record_systematic_fast_read(&self) {
        self.stats.record_systematic_fast_read();
    }

    /// Records `n` hedge backend requests issued (lock-free); see
    /// [`CacheStats::hedged_requests`].
    pub fn record_hedged_requests(&self, n: u64) {
        self.stats.record_hedged_requests(n);
    }

    /// Records one hedge bound into a decode (lock-free); see
    /// [`CacheStats::hedge_wins`].
    pub fn record_hedge_win(&self) {
        self.stats.record_hedge_win();
    }

    /// Records `n` discarded straggler responses (lock-free); see
    /// [`CacheStats::hedges_cancelled`].
    pub fn record_hedges_cancelled(&self, n: u64) {
        self.stats.record_hedges_cancelled(n);
    }

    /// Records one disk-tier hit (lock-free); see
    /// [`CacheStats::disk_hits`].
    pub fn record_disk_hit(&self) {
        self.stats.record_disk_hit();
    }

    /// Records one disk → RAM promotion (lock-free); see
    /// [`CacheStats::tier_promotions`].
    pub fn record_tier_promotion(&self) {
        self.stats.record_tier_promotion();
    }

    /// Records one RAM → disk demotion (lock-free); see
    /// [`CacheStats::tier_demotions`].
    pub fn record_tier_demotion(&self) {
        self.stats.record_tier_demotion();
    }

    /// Records `n` disk-tier capacity evictions (lock-free); see
    /// [`CacheStats::disk_evictions`].
    pub fn record_disk_evictions(&self, n: u64) {
        self.stats.record_disk_evictions(n);
    }
}

impl std::fmt::Debug for ShardedChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedChunkCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("used", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::ObjectId;
    use bytes::Bytes;
    use std::sync::Arc;

    fn chunk(bytes: usize, version: u64) -> CachedChunk {
        CachedChunk::new(Bytes::from(vec![0u8; bytes]), version)
    }

    fn id(object: u64, index: u8) -> ChunkId {
        ChunkId::new(ObjectId::new(object), index)
    }

    #[test]
    fn insert_get_roundtrip_across_shards() {
        let cache = ShardedChunkCache::new(10_000, PolicyKind::Lru, 4);
        for i in 0..20u8 {
            assert!(cache.insert(id(0, i), chunk(100, 1)));
        }
        assert_eq!(cache.len(), 20);
        assert_eq!(cache.used_bytes(), 2_000);
        for i in 0..20u8 {
            assert!(cache.get(&id(0, i)).is_some());
        }
        assert!(cache.get(&id(9, 0)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.chunk_hits(), 20);
        assert_eq!(stats.chunk_misses(), 1);
        assert_eq!(stats.insertions(), 20);
    }

    #[test]
    fn global_capacity_is_enforced_even_with_skewed_shards() {
        // 9 chunks of 100 bytes in a 900-byte cache must ALL fit, no
        // matter how unevenly they hash across shards (the Agar node
        // relies on this for whole-object caching).
        let cache = ShardedChunkCache::new(900, PolicyKind::Lru, 8);
        for i in 0..9u8 {
            assert!(cache.insert(id(0, i), chunk(100, 1)));
        }
        assert_eq!(cache.len(), 9);
        assert_eq!(cache.stats().evictions(), 0);
        // One more chunk forces exactly one eviction somewhere.
        assert!(cache.insert(id(1, 0), chunk(100, 1)));
        assert_eq!(cache.len(), 9);
        assert!(cache.used_bytes() <= 900);
        assert_eq!(cache.stats().evictions(), 1);
    }

    #[test]
    fn oversized_entry_rejected() {
        let cache = ShardedChunkCache::new(50, PolicyKind::Lru, 2);
        assert!(!cache.insert(id(0, 0), chunk(51, 1)));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejected_inserts(), 1);
    }

    #[test]
    fn replace_frees_old_weight() {
        let cache = ShardedChunkCache::new(1_000, PolicyKind::Lru, 4);
        cache.insert(id(0, 0), chunk(400, 1));
        cache.insert(id(0, 0), chunk(100, 2));
        assert_eq!(cache.used_bytes(), 100);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&id(0, 0)).unwrap().version(), 2);
    }

    #[test]
    fn remove_and_remove_matching_update_accounting() {
        let cache = ShardedChunkCache::new(10_000, PolicyKind::Lru, 4);
        for object in 0..4u64 {
            for i in 0..3u8 {
                cache.insert(id(object, i), chunk(50, 1));
            }
        }
        assert_eq!(cache.remove(&id(0, 0)).map(|c| c.weight()), Some(50));
        assert_eq!(cache.remove(&id(0, 0)), None);
        let removed = cache.remove_matching(|k| k.object() == ObjectId::new(1));
        assert_eq!(removed, 3);
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.used_bytes(), 8 * 50);
        assert_eq!(cache.keys().len(), 8);
    }

    #[test]
    fn peek_does_not_touch_stats() {
        let cache = ShardedChunkCache::new(1_000, PolicyKind::Lru, 2);
        cache.insert(id(0, 0), chunk(10, 7));
        assert_eq!(cache.peek(&id(0, 0)).unwrap().version(), 7);
        assert!(cache.peek(&id(0, 1)).is_none());
        assert_eq!(cache.stats().chunk_hits(), 0);
        assert_eq!(cache.stats().chunk_misses(), 0);
    }

    #[test]
    fn shard_selection_is_deterministic_and_spread() {
        let a = ShardedChunkCache::new(1_000, PolicyKind::Lru, 8);
        let b = ShardedChunkCache::new(1_000, PolicyKind::Lru, 8);
        let mut seen = std::collections::HashSet::new();
        for object in 0..16u64 {
            for index in 0..12u8 {
                let key = id(object, index);
                assert_eq!(a.shard_index(&key), b.shard_index(&key));
                seen.insert(a.shard_index(&key));
            }
        }
        assert!(seen.len() > 4, "192 chunks should touch most of 8 shards");
    }

    #[test]
    fn object_read_accounting_is_shared() {
        let cache = ShardedChunkCache::new(1_000, PolicyKind::Lru, 2);
        cache.record_object_read(9, 9);
        cache.record_object_read(3, 9);
        cache.record_object_read(0, 9);
        let stats = cache.stats();
        assert_eq!(stats.object_total_hits(), 1);
        assert_eq!(stats.object_partial_hits(), 1);
        assert_eq!(stats.object_misses(), 1);
    }

    /// Keys that all land in one shard of an 8-shard cache (found by
    /// probing the deterministic shard hash), used to stress the
    /// global-capacity path under maximal skew.
    fn same_shard_keys(cache: &ShardedChunkCache, count: usize) -> Vec<ChunkId> {
        let mut keys = Vec::with_capacity(count);
        let target = cache.shard_index(&id(0, 0));
        'outer: for object in 0..10_000u64 {
            for index in 0..12u8 {
                let key = id(object, index);
                if cache.shard_index(&key) == target {
                    keys.push(key);
                    if keys.len() == count {
                        break 'outer;
                    }
                }
            }
        }
        assert_eq!(keys.len(), count, "not enough colliding keys found");
        keys
    }

    #[test]
    fn skewed_shard_still_respects_global_capacity() {
        // Every insert lands in ONE shard of eight; the global byte
        // budget must hold anyway, with evictions drawn from that
        // shard (the round-robin cursor walks the empties harmlessly).
        let cache = ShardedChunkCache::new(500, PolicyKind::Lru, 8);
        let keys = same_shard_keys(&cache, 50);
        for &key in &keys {
            assert!(cache.insert(key, chunk(100, 1)));
            assert!(
                cache.used_bytes() <= 500,
                "budget exceeded at {} bytes",
                cache.used_bytes()
            );
        }
        assert_eq!(cache.len(), 5, "500 B holds exactly five 100 B chunks");
        assert_eq!(cache.stats().insertions(), 50);
        assert_eq!(cache.stats().evictions(), 45);
        // The survivors are the five most recent inserts (shard-local
        // LRU degenerates to exact LRU when one shard holds everything).
        for key in &keys[45..] {
            assert!(cache.contains(key), "recent insert evicted");
        }
    }

    #[test]
    fn eviction_never_livelocks_when_most_shards_are_empty() {
        // An entry as large as the whole cache forces `evict_to_capacity`
        // to sweep the (empty) sibling shards repeatedly; the cursor
        // walk must terminate every time instead of spinning.
        let cache = ShardedChunkCache::new(300, PolicyKind::Lru, 8);
        let keys = same_shard_keys(&cache, 4);
        for &key in &keys {
            assert!(cache.insert(key, chunk(300, 1)));
            assert_eq!(cache.len(), 1, "each full-size insert evicts the last");
            assert!(cache.used_bytes() <= 300);
        }
        // Drain the cache entirely; `evict_one` on every (now empty)
        // shard must keep returning None, never hang.
        cache.remove_matching(|_| true);
        assert!(cache.is_empty());
        for shard in &cache.shards {
            assert!(shard.lock().evict_one().is_none());
        }
        assert_eq!(cache.used_bytes(), 0);
        // And the cache still works afterwards.
        assert!(cache.insert(id(7, 7), chunk(10, 1)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_collect_surfaces_eviction_victims() {
        let cache = ShardedChunkCache::new(500, PolicyKind::Lru, 8);
        let keys = same_shard_keys(&cache, 6);
        for &key in &keys[..5] {
            assert_eq!(cache.insert_collect(key, chunk(100, 1)), Some(Vec::new()));
        }
        // The sixth 100 B insert into a full 500 B cache evicts exactly
        // one victim — the LRU entry — and hands it back.
        let victims = cache.insert_collect(keys[5], chunk(100, 1)).unwrap();
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].0, keys[0]);
        assert_eq!(victims[0].1.weight(), 100);
        // Rejected inserts return None, not an empty victim list.
        assert_eq!(cache.insert_collect(id(99, 0), chunk(501, 1)), None);
    }

    #[test]
    fn concurrent_skewed_inserts_hold_the_budget() {
        // Four threads hammer keys that all hash to one shard: the
        // worst case for the shared byte counter. Capacity must hold
        // at the end and nothing may deadlock.
        let cache = Arc::new(ShardedChunkCache::new(1_000, PolicyKind::Lru, 8));
        let keys = Arc::new(same_shard_keys(&cache, 64));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let cache = Arc::clone(&cache);
                let keys = Arc::clone(&keys);
                scope.spawn(move || {
                    for round in 0..100usize {
                        let key = keys[(t * 17 + round) % keys.len()];
                        if cache.get(&key).is_none() {
                            cache.insert(key, chunk(100, 1));
                        }
                    }
                });
            }
        });
        assert!(cache.used_bytes() <= 1_000);
        assert_eq!(cache.used_bytes(), cache.len() * 100);
    }

    #[test]
    fn concurrent_hammer_holds_invariants() {
        let cache = Arc::new(ShardedChunkCache::new(2_000, PolicyKind::Lru, 4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for round in 0..200u64 {
                        let object = (t * 7 + round) % 10;
                        for index in 0..6u8 {
                            let key = id(object, index);
                            if cache.get(&key).is_none() {
                                cache.insert(key, chunk(40, 1));
                            }
                        }
                    }
                });
            }
        });
        assert!(cache.used_bytes() <= 2_000);
        let stats = cache.stats();
        assert_eq!(stats.chunk_hits() + stats.chunk_misses(), 4 * 200 * 6);
    }
}
