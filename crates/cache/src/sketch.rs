//! Count-Min sketch for approximate access frequencies.
//!
//! TinyLFU (Einziger & Friedman, cited in the paper's §VII) replaces
//! exact per-object counters with a compact sketch. The paper suggests
//! the same trick for scaling Agar's request monitor; the
//! [`ApproxRequestMonitor`](../tinylfu) admission policy and the
//! monitor-scaling ablation both build on this sketch.

use std::hash::{BuildHasher, BuildHasherDefault, Hash};

type DefaultBuild = BuildHasherDefault<std::collections::hash_map::DefaultHasher>;

/// A Count-Min sketch with conservative-update increments and periodic
/// halving (TinyLFU's aging mechanism).
///
/// # Examples
///
/// ```
/// use agar_cache::CountMinSketch;
///
/// let mut sketch = CountMinSketch::new(1024, 4);
/// for _ in 0..5 {
///     sketch.increment(&"hot");
/// }
/// sketch.increment(&"cold");
/// assert!(sketch.estimate(&"hot") >= 5);
/// assert!(sketch.estimate(&"hot") > sketch.estimate(&"cold"));
/// assert_eq!(sketch.estimate(&"never"), 0);
/// ```
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    counters: Vec<u32>,
    increments: u64,
    halving_period: u64,
    build: DefaultBuild,
}

impl CountMinSketch {
    /// Creates a sketch with `width` counters per row and `depth` rows.
    ///
    /// Width is rounded up to the next power of two so row indexing is a
    /// mask. The halving period defaults to `10 * width` increments.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be positive");
        let width = width.next_power_of_two();
        CountMinSketch {
            width,
            depth,
            counters: vec![0; width * depth],
            increments: 0,
            halving_period: (width as u64) * 10,
            build: DefaultBuild::default(),
        }
    }

    /// Overrides the halving (aging) period, in increments.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_halving_period(mut self, period: u64) -> Self {
        assert!(period > 0, "halving period must be positive");
        self.halving_period = period;
        self
    }

    fn index(&self, row: usize, item_hash: u64) -> usize {
        // Derive per-row hashes from one 64-bit hash (Kirsch-Mitzenmacher).
        let h1 = item_hash;
        let h2 = item_hash.rotate_left(32) | 1;
        let combined = h1.wrapping_add(h2.wrapping_mul(row as u64));
        row * self.width + (combined as usize & (self.width - 1))
    }

    fn hash<T: Hash>(&self, item: &T) -> u64 {
        self.build.hash_one(item)
    }

    /// Records one access, aging all counters every halving period.
    pub fn increment<T: Hash>(&mut self, item: &T) {
        let h = self.hash(item);
        // Conservative update: only raise the minimal counters.
        let current = self.estimate_hashed(h);
        for row in 0..self.depth {
            let idx = self.index(row, h);
            if self.counters[idx] == current {
                self.counters[idx] = self.counters[idx].saturating_add(1);
            }
        }
        self.increments += 1;
        if self.increments.is_multiple_of(self.halving_period) {
            self.halve();
        }
    }

    fn estimate_hashed(&self, h: u64) -> u32 {
        (0..self.depth)
            .map(|row| self.counters[self.index(row, h)])
            .min()
            .unwrap_or(0)
    }

    /// Estimated access count for `item` (never underestimates by more
    /// than the aging factor; may overestimate).
    pub fn estimate<T: Hash>(&self, item: &T) -> u32 {
        self.estimate_hashed(self.hash(item))
    }

    /// Halves every counter — TinyLFU's aging step, keeping the sketch
    /// responsive to popularity shifts.
    pub fn halve(&mut self) {
        for c in &mut self.counters {
            *c /= 2;
        }
    }

    /// Total increments recorded since creation.
    pub fn increments(&self) -> u64 {
        self.increments
    }

    /// Memory footprint of the counters in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_monotonically_increase() {
        let mut s = CountMinSketch::new(256, 4);
        for i in 1..=10u32 {
            s.increment(&"key");
            assert!(s.estimate(&"key") >= i, "estimate after {i} increments");
        }
    }

    #[test]
    fn never_underestimates_without_aging() {
        let mut s = CountMinSketch::new(4096, 4).with_halving_period(u64::MAX);
        for i in 0..500u32 {
            for _ in 0..(i % 7 + 1) {
                s.increment(&i);
            }
        }
        for i in 0..500u32 {
            assert!(s.estimate(&i) > i % 7, "key {i}");
        }
    }

    #[test]
    fn distinguishes_hot_from_cold() {
        let mut s = CountMinSketch::new(1024, 4);
        for _ in 0..100 {
            s.increment(&"hot");
        }
        s.increment(&"cold");
        assert!(s.estimate(&"hot") > 10 * s.estimate(&"cold"));
    }

    #[test]
    fn halving_ages_counters() {
        let mut s = CountMinSketch::new(256, 4).with_halving_period(u64::MAX);
        for _ in 0..40 {
            s.increment(&"k");
        }
        let before = s.estimate(&"k");
        s.halve();
        let after = s.estimate(&"k");
        assert_eq!(after, before / 2);
    }

    #[test]
    fn automatic_halving_kicks_in() {
        let mut s = CountMinSketch::new(16, 2).with_halving_period(100);
        for _ in 0..100 {
            s.increment(&"k");
        }
        // The 100th increment triggered a halve: 100 -> 50.
        assert!(s.estimate(&"k") <= 50);
        assert_eq!(s.increments(), 100);
    }

    #[test]
    fn unknown_items_estimate_zero_when_sparse() {
        let mut s = CountMinSketch::new(4096, 4);
        s.increment(&"only");
        assert_eq!(s.estimate(&"other"), 0);
    }

    #[test]
    fn width_rounded_to_power_of_two() {
        let s = CountMinSketch::new(100, 2);
        assert_eq!(s.memory_bytes(), 128 * 2 * 4);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_panic() {
        let _ = CountMinSketch::new(0, 1);
    }
}
