//! Segmented LRU eviction (Karedla et al., the paper's related work
//! §VII-A).
//!
//! Keys enter a *probation* segment; a hit promotes them to the
//! *protected* segment. The protected segment is capped at a fraction of
//! all tracked keys — overflowing demotes its LRU key back to the MRU end
//! of probation. Victims come from probation first, so one-hit wonders
//! cannot flush the hot set.

use crate::policy::EvictionPolicy;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Debug;
use std::hash::Hash;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Segment {
    Probation,
    Protected,
}

/// Segmented LRU policy state.
#[derive(Clone, Debug)]
pub struct Slru<K> {
    seq: u64,
    probation: BTreeMap<u64, K>,
    protected: BTreeMap<u64, K>,
    by_key: HashMap<K, (Segment, u64)>,
    /// Maximum fraction of tracked keys the protected segment may hold.
    protected_fraction: f64,
}

impl<K: Eq + Hash + Clone> Default for Slru<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> Slru<K> {
    /// The conventional protected-segment share.
    pub const DEFAULT_PROTECTED_FRACTION: f64 = 0.8;

    /// Creates an SLRU with the conventional 80% protected share.
    pub fn new() -> Self {
        Self::with_protected_fraction(Self::DEFAULT_PROTECTED_FRACTION)
    }

    /// Creates an SLRU with a custom protected share.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1)`.
    pub fn with_protected_fraction(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "protected fraction must be in (0, 1)"
        );
        Slru {
            seq: 0,
            probation: BTreeMap::new(),
            protected: BTreeMap::new(),
            by_key: HashMap::new(),
            protected_fraction: fraction,
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn protected_cap(&self) -> usize {
        ((self.by_key.len() as f64) * self.protected_fraction).floor() as usize
    }

    fn insert_into(&mut self, key: &K, segment: Segment) {
        let seq = self.next_seq();
        match segment {
            Segment::Probation => self.probation.insert(seq, key.clone()),
            Segment::Protected => self.protected.insert(seq, key.clone()),
        };
        self.by_key.insert(key.clone(), (segment, seq));
    }

    fn detach(&mut self, key: &K) -> Option<Segment> {
        let (segment, seq) = self.by_key.remove(key)?;
        match segment {
            Segment::Probation => self.probation.remove(&seq),
            Segment::Protected => self.protected.remove(&seq),
        };
        Some(segment)
    }

    fn rebalance(&mut self) {
        while self.protected.len() > self.protected_cap() {
            // Demote protected LRU to probation MRU.
            let Some((&seq, _)) = self.protected.iter().next() else {
                break;
            };
            let key = self.protected.remove(&seq).expect("peeked entry exists");
            self.by_key.remove(&key);
            self.insert_into(&key.clone(), Segment::Probation);
        }
    }

    /// Number of keys in the probation segment (diagnostics).
    pub fn probation_len(&self) -> usize {
        self.probation.len()
    }

    /// Number of keys in the protected segment (diagnostics).
    pub fn protected_len(&self) -> usize {
        self.protected.len()
    }
}

impl<K: Eq + Hash + Clone + Debug> EvictionPolicy<K> for Slru<K> {
    fn on_insert(&mut self, key: &K) {
        match self.detach(key) {
            // Re-insert of a live key behaves like an access.
            Some(_) => {
                self.insert_into(key, Segment::Protected);
                self.rebalance();
            }
            None => self.insert_into(key, Segment::Probation),
        }
    }

    fn on_access(&mut self, key: &K) {
        if self.detach(key).is_some() {
            self.insert_into(key, Segment::Protected);
            self.rebalance();
        }
    }

    fn on_remove(&mut self, key: &K) {
        self.detach(key);
    }

    fn evict_candidate(&mut self) -> Option<K> {
        let source = if self.probation.is_empty() {
            &mut self.protected
        } else {
            &mut self.probation
        };
        let (&seq, _) = source.iter().next()?;
        let key = source.remove(&seq).expect("peeked entry exists");
        self.by_key.remove(&key);
        Some(key)
    }

    fn peek_candidate(&self) -> Option<&K> {
        let source = if self.probation.is_empty() {
            &self.protected
        } else {
            &self.probation
        };
        source.values().next()
    }

    fn tracked(&self) -> usize {
        self.by_key.len()
    }

    fn name(&self) -> &'static str {
        "slru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_keys_enter_probation() {
        let mut slru = Slru::new();
        slru.on_insert(&1u32);
        slru.on_insert(&2);
        assert_eq!(slru.probation_len(), 2);
        assert_eq!(slru.protected_len(), 0);
    }

    #[test]
    fn access_promotes_to_protected() {
        let mut slru = Slru::new();
        for k in 1..=5u32 {
            slru.on_insert(&k);
        }
        slru.on_access(&3);
        assert_eq!(slru.protected_len(), 1);
        assert_eq!(slru.probation_len(), 4);
        // Victims come from probation, never the freshly protected key.
        for _ in 0..4 {
            assert_ne!(slru.evict_candidate(), Some(3));
        }
        // Only 3 is left, in protected; now it is the victim of last resort.
        assert_eq!(slru.evict_candidate(), Some(3));
    }

    #[test]
    fn one_hit_wonders_cannot_flush_hot_set() {
        let mut slru = Slru::new();
        // A 10-key working set; keys 1 and 2 are hot.
        for k in 1..=10u32 {
            slru.on_insert(&k);
        }
        slru.on_access(&1);
        slru.on_access(&2);
        // 100 cold keys stream past a full cache (evict one per insert).
        for k in 100..200u32 {
            slru.on_insert(&k);
            let victim = slru.evict_candidate().unwrap();
            assert!(victim != 1 && victim != 2, "hot key {victim} evicted");
        }
        // Both hot keys survived the scan.
        slru.on_remove(&1);
        slru.on_remove(&2);
        assert_eq!(slru.tracked(), 8);
    }

    #[test]
    fn protected_overflow_demotes() {
        let mut slru: Slru<u32> = Slru::with_protected_fraction(0.5);
        for k in 1..=4u32 {
            slru.on_insert(&k);
        }
        // Promote three keys; cap is floor(4 * 0.5) = 2, so one demotes.
        slru.on_access(&1);
        slru.on_access(&2);
        slru.on_access(&3);
        assert_eq!(slru.protected_len(), 2);
        assert_eq!(slru.probation_len(), 2);
        assert_eq!(slru.tracked(), 4);
    }

    #[test]
    fn remove_untracks_from_either_segment() {
        let mut slru = Slru::new();
        slru.on_insert(&1u32);
        slru.on_insert(&2);
        slru.on_access(&1);
        slru.on_remove(&1);
        slru.on_remove(&2);
        assert_eq!(slru.tracked(), 0);
        assert_eq!(slru.evict_candidate(), None);
    }

    #[test]
    #[should_panic(expected = "protected fraction")]
    fn invalid_fraction_panics() {
        let _: Slru<u32> = Slru::with_protected_fraction(1.0);
    }
}
