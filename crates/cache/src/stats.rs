//! Cache statistics.
//!
//! Two granularities matter in this system:
//!
//! - **chunk-level** hits/misses, recorded by the cache itself on every
//!   `get`;
//! - **object-level** full/partial hits (the paper's Figure 7 metric: a
//!   request is a *total hit* if every chunk came from the cache, a
//!   *partial hit* if at least one did), recorded by whoever assembles
//!   whole objects via [`CacheStats::record_object_read`].

use agar_obs::{Counter, Labels, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters describing cache effectiveness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CacheStats {
    chunk_hits: u64,
    chunk_misses: u64,
    insertions: u64,
    evictions: u64,
    rejected_inserts: u64,
    object_total_hits: u64,
    object_partial_hits: u64,
    object_misses: u64,
    coalesced_fetches: u64,
    batched_requests: u64,
    lease_grants: u64,
    lease_contentions: u64,
    targeted_invalidations: u64,
    decode_plan_hits: u64,
    systematic_fast_reads: u64,
    hedged_requests: u64,
    hedge_wins: u64,
    hedges_cancelled: u64,
    disk_hits: u64,
    tier_promotions: u64,
    tier_demotions: u64,
    disk_evictions: u64,
}

impl CacheStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        CacheStats::default()
    }

    pub(crate) fn record_chunk_hit(&mut self) {
        self.chunk_hits += 1;
    }

    pub(crate) fn record_chunk_miss(&mut self) {
        self.chunk_misses += 1;
    }

    pub(crate) fn record_insertion(&mut self) {
        self.insertions += 1;
    }

    pub(crate) fn record_eviction(&mut self) {
        self.evictions += 1;
    }

    pub(crate) fn record_rejected_insert(&mut self) {
        self.rejected_inserts += 1;
    }

    /// Records an object-level read outcome: `cached_chunks` of the
    /// `needed_chunks` required chunks came from the cache.
    ///
    /// Matches the paper's hit-ratio definition: all chunks cached is a
    /// total hit, at least one cached is a partial hit, none is a miss.
    pub fn record_object_read(&mut self, cached_chunks: usize, needed_chunks: usize) {
        if needed_chunks > 0 && cached_chunks >= needed_chunks {
            self.object_total_hits += 1;
        } else if cached_chunks > 0 {
            self.object_partial_hits += 1;
        } else {
            self.object_misses += 1;
        }
    }

    /// Chunk-level hits.
    pub fn chunk_hits(&self) -> u64 {
        self.chunk_hits
    }

    /// Chunk-level misses.
    pub fn chunk_misses(&self) -> u64 {
        self.chunk_misses
    }

    /// Successful insertions.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Entries evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Insertions rejected (entry larger than the whole cache, or vetoed
    /// by an admission policy).
    pub fn rejected_inserts(&self) -> u64 {
        self.rejected_inserts
    }

    /// Object reads where every needed chunk was cached.
    pub fn object_total_hits(&self) -> u64 {
        self.object_total_hits
    }

    /// Object reads where some but not all needed chunks were cached.
    pub fn object_partial_hits(&self) -> u64 {
        self.object_partial_hits
    }

    /// Object reads served entirely from the backend.
    pub fn object_misses(&self) -> u64 {
        self.object_misses
    }

    /// Records one backend fetch served by piggybacking on another
    /// reader's identical in-flight fetch (single-flight coalescing).
    pub fn record_coalesced_fetch(&mut self) {
        self.coalesced_fetches += 1;
    }

    /// Records one batched (region-grouped) backend round trip.
    pub fn record_batched_request(&mut self) {
        self.batched_requests += 1;
    }

    /// Backend fetches served by an in-flight duplicate instead of a
    /// round trip of their own (single-flight coalescing).
    pub fn coalesced_fetches(&self) -> u64 {
        self.coalesced_fetches
    }

    /// Batched backend round trips issued (one per region group).
    pub fn batched_requests(&self) -> u64 {
        self.batched_requests
    }

    /// Records one granted per-object write lease.
    pub fn record_lease_grant(&mut self) {
        self.lease_grants += 1;
    }

    /// Records one write that had to wait for another writer's lease
    /// on the same object (lease contention).
    pub fn record_lease_contention(&mut self) {
        self.lease_contentions += 1;
    }

    /// Records `n` targeted cache invalidations (members invalidated
    /// because they actually held chunks of a written object).
    pub fn record_targeted_invalidations(&mut self, n: u64) {
        self.targeted_invalidations += n;
    }

    /// Per-object write leases granted.
    pub fn lease_grants(&self) -> u64 {
        self.lease_grants
    }

    /// Writes that waited behind another writer's lease on the same
    /// object.
    pub fn lease_contentions(&self) -> u64 {
        self.lease_contentions
    }

    /// Targeted invalidations sent on lease release (only to members
    /// whose caches held chunks of the written object).
    pub fn targeted_invalidations(&self) -> u64 {
        self.targeted_invalidations
    }

    /// Records one degraded decode that reused a cached decode plan
    /// (same erasure pattern as an earlier read: no matrix inversion).
    pub fn record_decode_plan_hit(&mut self) {
        self.decode_plan_hits += 1;
    }

    /// Records one object read served by the systematic fast path
    /// (all k data shards present: zero GF multiplies, at most one
    /// object-sized allocation).
    pub fn record_systematic_fast_read(&mut self) {
        self.systematic_fast_reads += 1;
    }

    /// Degraded decodes that skipped the Gaussian inversion because the
    /// erasure pattern's decode plan was already cached.
    pub fn decode_plan_hits(&self) -> u64 {
        self.decode_plan_hits
    }

    /// Object reads that took the zero-GF systematic fast path.
    pub fn systematic_fast_reads(&self) -> u64 {
        self.systematic_fast_reads
    }

    /// Records `n` hedge (speculative duplicate) backend requests
    /// issued beyond the k the decode strictly needs.
    pub fn record_hedged_requests(&mut self, n: u64) {
        self.hedged_requests += n;
    }

    /// Records one hedge that arrived among the first k responses and
    /// was bound into the decode.
    pub fn record_hedge_win(&mut self) {
        self.hedge_wins += 1;
    }

    /// Records `n` straggler responses discarded after the first k
    /// arrivals already satisfied the read.
    pub fn record_hedges_cancelled(&mut self, n: u64) {
        self.hedges_cancelled += n;
    }

    /// Hedge (speculative duplicate) backend requests issued.
    pub fn hedged_requests(&self) -> u64 {
        self.hedged_requests
    }

    /// Hedges that beat a primary into the first-k set and were bound
    /// into the decode.
    pub fn hedge_wins(&self) -> u64 {
        self.hedge_wins
    }

    /// Straggler responses discarded because the read was already
    /// satisfied by k faster arrivals.
    pub fn hedges_cancelled(&self) -> u64 {
        self.hedges_cancelled
    }

    /// Records one chunk lookup served by the disk tier after a RAM
    /// miss (the RAM miss is counted separately via
    /// `CacheStats::record_chunk_miss`).
    pub fn record_disk_hit(&mut self) {
        self.disk_hits += 1;
    }

    /// Records one chunk promoted disk → RAM on a disk-tier hit.
    pub fn record_tier_promotion(&mut self) {
        self.tier_promotions += 1;
    }

    /// Records one RAM eviction victim demoted to the disk tier
    /// instead of being dropped.
    pub fn record_tier_demotion(&mut self) {
        self.tier_demotions += 1;
    }

    /// Records `n` entries evicted from the disk tier to stay within
    /// its byte budget.
    pub fn record_disk_evictions(&mut self, n: u64) {
        self.disk_evictions += n;
    }

    /// Chunk lookups served by the disk tier after a RAM miss.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits
    }

    /// Chunks promoted disk → RAM.
    pub fn tier_promotions(&self) -> u64 {
        self.tier_promotions
    }

    /// RAM eviction victims demoted to disk instead of dropped.
    pub fn tier_demotions(&self) -> u64 {
        self.tier_demotions
    }

    /// Entries evicted from the disk tier for capacity.
    pub fn disk_evictions(&self) -> u64 {
        self.disk_evictions
    }

    /// Total object reads recorded.
    pub fn object_reads(&self) -> u64 {
        self.object_total_hits + self.object_partial_hits + self.object_misses
    }

    /// Chunk-level hit ratio in `[0, 1]`; 0 if nothing recorded.
    pub fn chunk_hit_ratio(&self) -> f64 {
        let total = self.chunk_hits + self.chunk_misses;
        if total == 0 {
            0.0
        } else {
            self.chunk_hits as f64 / total as f64
        }
    }

    /// The paper's Figure 7 metric: (total + partial hits) / requests.
    pub fn object_hit_ratio(&self) -> f64 {
        let total = self.object_reads();
        if total == 0 {
            0.0
        } else {
            (self.object_total_hits + self.object_partial_hits) as f64 / total as f64
        }
    }

    /// The counters accumulated since an earlier snapshot (saturating;
    /// used for per-batch statistics on a long-lived cache).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            chunk_hits: self.chunk_hits.saturating_sub(earlier.chunk_hits),
            chunk_misses: self.chunk_misses.saturating_sub(earlier.chunk_misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            rejected_inserts: self
                .rejected_inserts
                .saturating_sub(earlier.rejected_inserts),
            object_total_hits: self
                .object_total_hits
                .saturating_sub(earlier.object_total_hits),
            object_partial_hits: self
                .object_partial_hits
                .saturating_sub(earlier.object_partial_hits),
            object_misses: self.object_misses.saturating_sub(earlier.object_misses),
            coalesced_fetches: self
                .coalesced_fetches
                .saturating_sub(earlier.coalesced_fetches),
            batched_requests: self
                .batched_requests
                .saturating_sub(earlier.batched_requests),
            lease_grants: self.lease_grants.saturating_sub(earlier.lease_grants),
            lease_contentions: self
                .lease_contentions
                .saturating_sub(earlier.lease_contentions),
            targeted_invalidations: self
                .targeted_invalidations
                .saturating_sub(earlier.targeted_invalidations),
            decode_plan_hits: self
                .decode_plan_hits
                .saturating_sub(earlier.decode_plan_hits),
            systematic_fast_reads: self
                .systematic_fast_reads
                .saturating_sub(earlier.systematic_fast_reads),
            hedged_requests: self.hedged_requests.saturating_sub(earlier.hedged_requests),
            hedge_wins: self.hedge_wins.saturating_sub(earlier.hedge_wins),
            hedges_cancelled: self
                .hedges_cancelled
                .saturating_sub(earlier.hedges_cancelled),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            tier_promotions: self.tier_promotions.saturating_sub(earlier.tier_promotions),
            tier_demotions: self.tier_demotions.saturating_sub(earlier.tier_demotions),
            disk_evictions: self.disk_evictions.saturating_sub(earlier.disk_evictions),
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.chunk_hits += other.chunk_hits;
        self.chunk_misses += other.chunk_misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.rejected_inserts += other.rejected_inserts;
        self.object_total_hits += other.object_total_hits;
        self.object_partial_hits += other.object_partial_hits;
        self.object_misses += other.object_misses;
        self.coalesced_fetches += other.coalesced_fetches;
        self.batched_requests += other.batched_requests;
        self.lease_grants += other.lease_grants;
        self.lease_contentions += other.lease_contentions;
        self.targeted_invalidations += other.targeted_invalidations;
        self.decode_plan_hits += other.decode_plan_hits;
        self.systematic_fast_reads += other.systematic_fast_reads;
        self.hedged_requests += other.hedged_requests;
        self.hedge_wins += other.hedge_wins;
        self.hedges_cancelled += other.hedges_cancelled;
        self.disk_hits += other.disk_hits;
        self.tier_promotions += other.tier_promotions;
        self.tier_demotions += other.tier_demotions;
        self.disk_evictions += other.disk_evictions;
    }
}

/// Lock-free cache counters for concurrently shared caches.
///
/// Mirrors [`CacheStats`] field for field, but every counter is a
/// registry [`Counter`] (a shared relaxed atomic) so many reader
/// threads can record outcomes without any lock (the sharded cache
/// records hits, misses and object-level reads here), and so the same
/// cells can be late-bound into a [`MetricsRegistry`] via
/// [`AtomicCacheStats::register_with`] — the scrape endpoint and this
/// struct observe the same memory. [`AtomicCacheStats::snapshot`]
/// materialises a plain [`CacheStats`] for reporting.
///
/// # Snapshot semantics (non-atomic; fields may drift)
///
/// [`AtomicCacheStats::snapshot`] loads each field independently with
/// `Ordering::Relaxed` — there is no global lock and no seqlock, so
/// the copy is **not** a consistent cut of all 22 counters. While
/// writers are running, a snapshot may see counter A's increment from
/// an event but not counter B's from the *same* event (e.g. a chunk
/// hit recorded but the enclosing object read not yet classified).
///
/// What relaxed per-field loads *do* guarantee:
///
/// - each field individually is monotonic across snapshots (counters
///   only increase), so deltas via [`CacheStats::delta_since`] are
///   never negative;
/// - a field can never over-count: a snapshot observes at most the
///   increments that were actually issued before the load. In
///   particular `chunk_hits + chunk_misses` never exceeds the number
///   of lookups initiated (each lookup increments exactly one of the
///   two, after the lookup began) — pinned by the
///   `snapshot_never_overcounts_lookups_mid_hammer` test.
///
/// Reporting paths in this workspace only read quiescent stats or
/// tolerate cross-field drift of a few in-flight operations; anything
/// needing an exact cut must stop the writers first.
#[derive(Debug, Default)]
pub struct AtomicCacheStats {
    chunk_hits: Counter,
    chunk_misses: Counter,
    insertions: Counter,
    evictions: Counter,
    rejected_inserts: Counter,
    object_total_hits: Counter,
    object_partial_hits: Counter,
    object_misses: Counter,
    coalesced_fetches: Counter,
    batched_requests: Counter,
    lease_grants: Counter,
    lease_contentions: Counter,
    targeted_invalidations: Counter,
    decode_plan_hits: Counter,
    systematic_fast_reads: Counter,
    hedged_requests: Counter,
    hedge_wins: Counter,
    hedges_cancelled: Counter,
    disk_hits: Counter,
    tier_promotions: Counter,
    tier_demotions: Counter,
    disk_evictions: Counter,
}

impl AtomicCacheStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        AtomicCacheStats::default()
    }

    /// Records one chunk-level cache hit.
    pub fn record_chunk_hit(&self) {
        self.chunk_hits.inc();
    }

    /// Records one chunk-level cache miss.
    pub fn record_chunk_miss(&self) {
        self.chunk_misses.inc();
    }

    /// Records one successful insertion.
    pub fn record_insertion(&self) {
        self.insertions.inc();
    }

    /// Records one eviction.
    pub fn record_eviction(&self) {
        self.evictions.inc();
    }

    /// Records one rejected insertion.
    pub fn record_rejected_insert(&self) {
        self.rejected_inserts.inc();
    }

    /// Records an object-level read outcome; same classification as
    /// [`CacheStats::record_object_read`].
    pub fn record_object_read(&self, cached_chunks: usize, needed_chunks: usize) {
        if needed_chunks > 0 && cached_chunks >= needed_chunks {
            self.object_total_hits.inc();
        } else if cached_chunks > 0 {
            self.object_partial_hits.inc();
        } else {
            self.object_misses.inc();
        }
    }

    /// Records one single-flight-coalesced backend fetch.
    pub fn record_coalesced_fetch(&self) {
        self.coalesced_fetches.inc();
    }

    /// Records `n` batched (region-grouped) backend round trips.
    pub fn record_batched_requests(&self, n: u64) {
        self.batched_requests.add(n);
    }

    /// Records one granted per-object write lease.
    pub fn record_lease_grant(&self) {
        self.lease_grants.inc();
    }

    /// Records one write that waited behind another writer's lease.
    pub fn record_lease_contention(&self) {
        self.lease_contentions.inc();
    }

    /// Records `n` targeted cache invalidations.
    pub fn record_targeted_invalidations(&self, n: u64) {
        self.targeted_invalidations.add(n);
    }

    /// Records one degraded decode that reused a cached decode plan.
    pub fn record_decode_plan_hit(&self) {
        self.decode_plan_hits.inc();
    }

    /// Records one object read served by the systematic fast path.
    pub fn record_systematic_fast_read(&self) {
        self.systematic_fast_reads.inc();
    }

    /// Records `n` hedge (speculative duplicate) backend requests.
    pub fn record_hedged_requests(&self, n: u64) {
        self.hedged_requests.add(n);
    }

    /// Records one hedge bound into the decode's first-k set.
    pub fn record_hedge_win(&self) {
        self.hedge_wins.inc();
    }

    /// Records `n` straggler responses discarded after the read was
    /// already satisfied.
    pub fn record_hedges_cancelled(&self, n: u64) {
        self.hedges_cancelled.add(n);
    }

    /// Records one chunk lookup served by the disk tier.
    pub fn record_disk_hit(&self) {
        self.disk_hits.inc();
    }

    /// Records one chunk promoted disk → RAM.
    pub fn record_tier_promotion(&self) {
        self.tier_promotions.inc();
    }

    /// Records one RAM eviction victim demoted to the disk tier.
    pub fn record_tier_demotion(&self) {
        self.tier_demotions.inc();
    }

    /// Records `n` disk-tier capacity evictions.
    pub fn record_disk_evictions(&self, n: u64) {
        self.disk_evictions.add(n);
    }

    /// A point-in-time copy of the counters as plain [`CacheStats`].
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            chunk_hits: self.chunk_hits.get(),
            chunk_misses: self.chunk_misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            rejected_inserts: self.rejected_inserts.get(),
            object_total_hits: self.object_total_hits.get(),
            object_partial_hits: self.object_partial_hits.get(),
            object_misses: self.object_misses.get(),
            coalesced_fetches: self.coalesced_fetches.get(),
            batched_requests: self.batched_requests.get(),
            lease_grants: self.lease_grants.get(),
            lease_contentions: self.lease_contentions.get(),
            targeted_invalidations: self.targeted_invalidations.get(),
            decode_plan_hits: self.decode_plan_hits.get(),
            systematic_fast_reads: self.systematic_fast_reads.get(),
            hedged_requests: self.hedged_requests.get(),
            hedge_wins: self.hedge_wins.get(),
            hedges_cancelled: self.hedges_cancelled.get(),
            disk_hits: self.disk_hits.get(),
            tier_promotions: self.tier_promotions.get(),
            tier_demotions: self.tier_demotions.get(),
            disk_evictions: self.disk_evictions.get(),
        }
    }

    /// Late-binds every counter into `registry` under stable
    /// `agar_*` metric names, with `base` labels (typically region,
    /// scenario, policy) on each cell and semantic labels (`tier`,
    /// `result`) distinguishing sibling counters within a family.
    ///
    /// The registry holds clones of the *same* cells this struct
    /// records into, so counts accumulated before registration are
    /// kept and a scrape always reflects the live values.
    pub fn register_with(&self, registry: &MetricsRegistry, base: &Labels) {
        let with = |extra: &[(&'static str, &str)]| {
            let mut labels = base.clone();
            for (name, value) in extra {
                labels = labels.with(name, *value);
            }
            labels
        };
        type CellRow<'a> = (
            &'static str,
            &'static str,
            &'a [(&'static str, &'a str)],
            &'a Counter,
        );
        let cells: [CellRow<'_>; 22] = [
            (
                "agar_cache_chunk_hits_total",
                "Chunk lookups served from a cache tier.",
                &[("tier", "ram")],
                &self.chunk_hits,
            ),
            (
                "agar_cache_chunk_hits_total",
                "Chunk lookups served from a cache tier.",
                &[("tier", "disk")],
                &self.disk_hits,
            ),
            (
                "agar_cache_chunk_misses_total",
                "Chunk lookups that missed every cache tier.",
                &[],
                &self.chunk_misses,
            ),
            (
                "agar_cache_insertions_total",
                "Chunks admitted into the RAM tier.",
                &[],
                &self.insertions,
            ),
            (
                "agar_cache_evictions_total",
                "Chunks evicted from a cache tier for capacity.",
                &[("tier", "ram")],
                &self.evictions,
            ),
            (
                "agar_cache_evictions_total",
                "Chunks evicted from a cache tier for capacity.",
                &[("tier", "disk")],
                &self.disk_evictions,
            ),
            (
                "agar_cache_rejected_inserts_total",
                "Insertions vetoed by capacity or admission policy.",
                &[],
                &self.rejected_inserts,
            ),
            (
                "agar_object_reads_total",
                "Object reads classified by cache outcome (paper Fig. 7).",
                &[("result", "total_hit")],
                &self.object_total_hits,
            ),
            (
                "agar_object_reads_total",
                "Object reads classified by cache outcome (paper Fig. 7).",
                &[("result", "partial_hit")],
                &self.object_partial_hits,
            ),
            (
                "agar_object_reads_total",
                "Object reads classified by cache outcome (paper Fig. 7).",
                &[("result", "miss")],
                &self.object_misses,
            ),
            (
                "agar_fetch_coalesced_total",
                "Backend fetches served by an in-flight duplicate (single-flight).",
                &[],
                &self.coalesced_fetches,
            ),
            (
                "agar_fetch_batched_round_trips_total",
                "Region-grouped backend round trips issued.",
                &[],
                &self.batched_requests,
            ),
            (
                "agar_lease_grants_total",
                "Per-object write leases granted.",
                &[],
                &self.lease_grants,
            ),
            (
                "agar_lease_contentions_total",
                "Writes that waited behind another writer's lease.",
                &[],
                &self.lease_contentions,
            ),
            (
                "agar_invalidations_targeted_total",
                "Targeted cache invalidations sent on lease release.",
                &[],
                &self.targeted_invalidations,
            ),
            (
                "agar_decode_plan_hits_total",
                "Degraded decodes that reused a cached decode plan.",
                &[],
                &self.decode_plan_hits,
            ),
            (
                "agar_decode_systematic_fast_total",
                "Object reads decoded via the zero-GF systematic fast path.",
                &[],
                &self.systematic_fast_reads,
            ),
            (
                "agar_hedge_requests_total",
                "Speculative duplicate chunk requests issued.",
                &[],
                &self.hedged_requests,
            ),
            (
                "agar_hedge_wins_total",
                "Hedges that bound into the first-k decode set.",
                &[],
                &self.hedge_wins,
            ),
            (
                "agar_hedge_cancelled_total",
                "Straggler responses discarded after k arrivals.",
                &[],
                &self.hedges_cancelled,
            ),
            (
                "agar_tier_promotions_total",
                "Chunks promoted disk → RAM on a disk-tier hit.",
                &[],
                &self.tier_promotions,
            ),
            (
                "agar_tier_demotions_total",
                "RAM eviction victims demoted to the disk tier.",
                &[],
                &self.tier_demotions,
            ),
        ];
        for (name, help, extra, cell) in cells {
            registry.register_counter(name, help, with(extra), cell);
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunks {}/{} hits ({:.1}%), objects {} total + {} partial / {} reads ({:.1}%), {} evictions",
            self.chunk_hits,
            self.chunk_hits + self.chunk_misses,
            self.chunk_hit_ratio() * 100.0,
            self.object_total_hits,
            self.object_partial_hits,
            self.object_reads(),
            self.object_hit_ratio() * 100.0,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ratio() {
        let mut s = CacheStats::new();
        assert_eq!(s.chunk_hit_ratio(), 0.0);
        s.record_chunk_hit();
        s.record_chunk_hit();
        s.record_chunk_miss();
        assert!((s.chunk_hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.chunk_hits(), 2);
        assert_eq!(s.chunk_misses(), 1);
    }

    #[test]
    fn object_hit_classification() {
        let mut s = CacheStats::new();
        s.record_object_read(9, 9); // total
        s.record_object_read(3, 9); // partial
        s.record_object_read(0, 9); // miss
        assert_eq!(s.object_total_hits(), 1);
        assert_eq!(s.object_partial_hits(), 1);
        assert_eq!(s.object_misses(), 1);
        assert_eq!(s.object_reads(), 3);
        assert!((s.object_hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_needed_chunks_is_a_miss_not_a_hit() {
        let mut s = CacheStats::new();
        s.record_object_read(0, 0);
        assert_eq!(s.object_misses(), 1);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CacheStats::new();
        a.record_chunk_hit();
        a.record_insertion();
        a.record_object_read(1, 2);
        let mut b = CacheStats::new();
        b.record_chunk_miss();
        b.record_eviction();
        b.record_rejected_insert();
        b.record_object_read(2, 2);
        a.merge(&b);
        assert_eq!(a.chunk_hits(), 1);
        assert_eq!(a.chunk_misses(), 1);
        assert_eq!(a.insertions(), 1);
        assert_eq!(a.evictions(), 1);
        assert_eq!(a.rejected_inserts(), 1);
        assert_eq!(a.object_total_hits(), 1);
        assert_eq!(a.object_partial_hits(), 1);
    }

    #[test]
    fn fetch_coordination_counters_roundtrip() {
        let atomic = AtomicCacheStats::new();
        atomic.record_coalesced_fetch();
        atomic.record_coalesced_fetch();
        atomic.record_batched_requests(3);
        let snap = atomic.snapshot();
        assert_eq!(snap.coalesced_fetches(), 2);
        assert_eq!(snap.batched_requests(), 3);

        let mut merged = CacheStats::new();
        merged.record_coalesced_fetch();
        merged.record_batched_request();
        merged.merge(&snap);
        assert_eq!(merged.coalesced_fetches(), 3);
        assert_eq!(merged.batched_requests(), 4);

        let delta = merged.delta_since(&snap);
        assert_eq!(delta.coalesced_fetches(), 1);
        assert_eq!(delta.batched_requests(), 1);
    }

    #[test]
    fn lease_counters_roundtrip() {
        let atomic = AtomicCacheStats::new();
        atomic.record_lease_grant();
        atomic.record_lease_grant();
        atomic.record_lease_contention();
        atomic.record_targeted_invalidations(4);
        let snap = atomic.snapshot();
        assert_eq!(snap.lease_grants(), 2);
        assert_eq!(snap.lease_contentions(), 1);
        assert_eq!(snap.targeted_invalidations(), 4);

        let mut merged = CacheStats::new();
        merged.record_lease_grant();
        merged.record_lease_contention();
        merged.record_targeted_invalidations(1);
        merged.merge(&snap);
        assert_eq!(merged.lease_grants(), 3);
        assert_eq!(merged.lease_contentions(), 2);
        assert_eq!(merged.targeted_invalidations(), 5);

        let delta = merged.delta_since(&snap);
        assert_eq!(delta.lease_grants(), 1);
        assert_eq!(delta.lease_contentions(), 1);
        assert_eq!(delta.targeted_invalidations(), 1);
    }

    #[test]
    fn decode_path_counters_roundtrip() {
        let atomic = AtomicCacheStats::new();
        atomic.record_decode_plan_hit();
        atomic.record_systematic_fast_read();
        atomic.record_systematic_fast_read();
        let snap = atomic.snapshot();
        assert_eq!(snap.decode_plan_hits(), 1);
        assert_eq!(snap.systematic_fast_reads(), 2);

        let mut merged = CacheStats::new();
        merged.record_decode_plan_hit();
        merged.record_systematic_fast_read();
        merged.merge(&snap);
        assert_eq!(merged.decode_plan_hits(), 2);
        assert_eq!(merged.systematic_fast_reads(), 3);

        let delta = merged.delta_since(&snap);
        assert_eq!(delta.decode_plan_hits(), 1);
        assert_eq!(delta.systematic_fast_reads(), 1);
    }

    #[test]
    fn hedge_counters_roundtrip() {
        let atomic = AtomicCacheStats::new();
        atomic.record_hedged_requests(2);
        atomic.record_hedge_win();
        atomic.record_hedges_cancelled(1);
        let snap = atomic.snapshot();
        assert_eq!(snap.hedged_requests(), 2);
        assert_eq!(snap.hedge_wins(), 1);
        assert_eq!(snap.hedges_cancelled(), 1);

        let mut merged = CacheStats::new();
        merged.record_hedged_requests(3);
        merged.record_hedge_win();
        merged.record_hedges_cancelled(2);
        merged.merge(&snap);
        assert_eq!(merged.hedged_requests(), 5);
        assert_eq!(merged.hedge_wins(), 2);
        assert_eq!(merged.hedges_cancelled(), 3);

        let delta = merged.delta_since(&snap);
        assert_eq!(delta.hedged_requests(), 3);
        assert_eq!(delta.hedge_wins(), 1);
        assert_eq!(delta.hedges_cancelled(), 2);
    }

    #[test]
    fn tier_counters_roundtrip() {
        let atomic = AtomicCacheStats::new();
        atomic.record_disk_hit();
        atomic.record_disk_hit();
        atomic.record_tier_promotion();
        atomic.record_tier_demotion();
        atomic.record_tier_demotion();
        atomic.record_tier_demotion();
        atomic.record_disk_evictions(4);
        let snap = atomic.snapshot();
        assert_eq!(snap.disk_hits(), 2);
        assert_eq!(snap.tier_promotions(), 1);
        assert_eq!(snap.tier_demotions(), 3);
        assert_eq!(snap.disk_evictions(), 4);

        let mut merged = CacheStats::new();
        merged.record_disk_hit();
        merged.record_tier_promotion();
        merged.record_tier_demotion();
        merged.record_disk_evictions(2);
        merged.merge(&snap);
        assert_eq!(merged.disk_hits(), 3);
        assert_eq!(merged.tier_promotions(), 2);
        assert_eq!(merged.tier_demotions(), 4);
        assert_eq!(merged.disk_evictions(), 6);

        let delta = merged.delta_since(&snap);
        assert_eq!(delta.disk_hits(), 1);
        assert_eq!(delta.tier_promotions(), 1);
        assert_eq!(delta.tier_demotions(), 1);
        assert_eq!(delta.disk_evictions(), 2);
    }

    #[test]
    fn register_with_exposes_live_cells() {
        let atomic = AtomicCacheStats::new();
        atomic.record_chunk_hit(); // before registration: kept
        let registry = MetricsRegistry::new();
        atomic.register_with(&registry, &Labels::new().with("region", "Frankfurt"));
        atomic.record_chunk_hit(); // after registration: same cell
        atomic.record_disk_hit();
        atomic.record_object_read(9, 9);
        let text = registry.render_prometheus();
        assert!(
            text.contains("agar_cache_chunk_hits_total{region=\"Frankfurt\",tier=\"ram\"} 2"),
            "{text}"
        );
        assert!(text.contains("agar_cache_chunk_hits_total{region=\"Frankfurt\",tier=\"disk\"} 1"));
        assert!(
            text.contains("agar_object_reads_total{region=\"Frankfurt\",result=\"total_hit\"} 1")
        );
        // Re-registration with the same labels is idempotent.
        atomic.register_with(&registry, &Labels::new().with("region", "Frankfurt"));
        assert_eq!(registry.len(), 22);
    }

    /// Pins the documented snapshot invariant: because each lookup
    /// increments exactly one of `chunk_hits`/`chunk_misses` *after*
    /// the lookup was counted as initiated, a concurrent snapshot may
    /// lag but can never observe `hits + misses` exceeding the
    /// initiated-lookup count, despite every load being `Relaxed` and
    /// per-field.
    #[test]
    fn snapshot_never_overcounts_lookups_mid_hammer() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

        let stats = AtomicCacheStats::new();
        let lookups = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let stats = &stats;
                let lookups = &lookups;
                let stop = &stop;
                scope.spawn(move || {
                    let mut i = worker;
                    while !stop.load(Ordering::Relaxed) {
                        // A lookup is "initiated" strictly before its
                        // outcome is recorded.
                        lookups.fetch_add(1, Ordering::SeqCst);
                        if i % 3 == 0 {
                            stats.record_chunk_miss();
                        } else {
                            stats.record_chunk_hit();
                        }
                        i += 1;
                    }
                });
            }
            for _ in 0..200 {
                let snap = stats.snapshot();
                // Load the floor *after* the snapshot (fence keeps the
                // relaxed snapshot loads from sinking past it): every
                // outcome the snapshot saw had already bumped
                // `lookups`.
                std::sync::atomic::fence(Ordering::SeqCst);
                let initiated = lookups.load(Ordering::SeqCst);
                assert!(
                    snap.chunk_hits() + snap.chunk_misses() <= initiated,
                    "snapshot overcounted: {} + {} > {initiated}",
                    snap.chunk_hits(),
                    snap.chunk_misses()
                );
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Quiescent: the counts reconcile exactly.
        let final_snap = stats.snapshot();
        assert_eq!(
            final_snap.chunk_hits() + final_snap.chunk_misses(),
            lookups.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn display_is_informative() {
        let mut s = CacheStats::new();
        s.record_chunk_hit();
        s.record_object_read(2, 2);
        let text = s.to_string();
        assert!(text.contains("chunks 1/1"));
        assert!(text.contains("objects 1 total"));
    }
}
