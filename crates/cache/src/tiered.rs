//! The two-tier cache: sharded RAM fronting a disk append-log.
//!
//! [`TieredChunkCache`] composes the lock-striped [`ShardedChunkCache`]
//! (the fast tier) with an optional [`DiskStore`] (the warm tier) into
//! one *exclusive* hierarchy:
//!
//! - a RAM hit serves from RAM, exactly as before;
//! - a RAM miss that hits disk **promotes** the chunk to RAM (demoting
//!   RAM victims as needed) and removes the disk copy, so each chunk
//!   lives in at most one tier;
//! - a RAM eviction victim is **demoted** to disk instead of dropped,
//!   so the aggregate catalogue is RAM + disk bytes;
//! - removal and bulk invalidation purge **both** tiers, so the write
//!   path's coherence guarantees are tier-blind.
//!
//! Counter semantics: `chunk_hits`/`chunk_misses` keep meaning *RAM*
//! hits and misses (a disk rescue records a RAM miss **and** a
//! `disk_hits`), so RAM hit-ratio time series stay comparable across
//! tiered and untiered runs. The tier traffic shows up in the four
//! dedicated counters `disk_hits`, `tier_promotions`, `tier_demotions`
//! and `disk_evictions`.
//!
//! With no disk tier configured every operation delegates verbatim to
//! the inner [`ShardedChunkCache`] — byte-identical behaviour, which
//! the node relies on to keep `disk_capacity = 0` deployments exactly
//! reproducing the untiered engine.

use crate::cache::CachedChunk;
use crate::disk::DiskStore;
use crate::policy::PolicyKind;
use crate::sharded::ShardedChunkCache;
use crate::stats::CacheStats;
use agar_ec::ChunkId;

/// Which tier a chunk was found in (or is destined for).
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord, Hash)]
pub enum CacheTier {
    /// The sharded in-memory tier.
    Ram,
    /// The per-node disk append-log tier.
    Disk,
}

/// A RAM-over-disk chunk cache with promotion, demotion and tier-blind
/// invalidation.
///
/// # Examples
///
/// ```
/// use agar_cache::{CachedChunk, CacheTier, PolicyKind, TieredChunkCache};
/// use agar_ec::{ChunkId, ObjectId};
/// use bytes::Bytes;
///
/// let cache = TieredChunkCache::with_disk(300, PolicyKind::Lru, 2, 10_000);
/// let a = ChunkId::new(ObjectId::new(1), 0);
/// let b = ChunkId::new(ObjectId::new(2), 0);
/// cache.insert(a, CachedChunk::new(Bytes::from(vec![1u8; 200]), 1));
/// // Inserting b evicts a from RAM — a demotes to disk, not the floor.
/// cache.insert(b, CachedChunk::new(Bytes::from(vec![2u8; 200]), 1));
/// let (chunk, tier) = cache.get(&a).unwrap();
/// assert_eq!(tier, CacheTier::Disk);
/// assert_eq!(chunk.data().len(), 200);
/// ```
#[derive(Debug)]
pub struct TieredChunkCache {
    ram: ShardedChunkCache,
    disk: Option<DiskStore>,
}

impl TieredChunkCache {
    /// A RAM-only cache (no disk tier): every operation is a verbatim
    /// delegation to [`ShardedChunkCache`].
    pub fn ram_only(ram_capacity_bytes: usize, policy: PolicyKind, shards: usize) -> Self {
        TieredChunkCache {
            ram: ShardedChunkCache::new(ram_capacity_bytes, policy, shards),
            disk: None,
        }
    }

    /// A tiered cache with `disk_capacity_bytes` of warm storage under
    /// a private temp directory. `disk_capacity_bytes == 0` yields a
    /// RAM-only cache; if the disk directory cannot be created the
    /// cache degrades to RAM-only (the warm tier is best-effort).
    pub fn with_disk(
        ram_capacity_bytes: usize,
        policy: PolicyKind,
        shards: usize,
        disk_capacity_bytes: usize,
    ) -> Self {
        let disk = if disk_capacity_bytes == 0 {
            None
        } else {
            DiskStore::new(disk_capacity_bytes).ok()
        };
        TieredChunkCache {
            ram: ShardedChunkCache::new(ram_capacity_bytes, policy, shards),
            disk,
        }
    }

    /// Whether a disk tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// The inner RAM tier (shared statistics live here).
    pub fn ram(&self) -> &ShardedChunkCache {
        &self.ram
    }

    /// The disk tier, if attached.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// Reads a chunk: RAM first, then disk. A disk hit promotes the
    /// chunk to RAM (demoting RAM victims to disk) and reports which
    /// tier served it. Records RAM hit/miss plus `disk_hits` /
    /// `tier_promotions` as appropriate.
    pub fn get(&self, key: &ChunkId) -> Option<(CachedChunk, CacheTier)> {
        if let Some(chunk) = self.ram.get(key) {
            return Some((chunk, CacheTier::Ram));
        }
        // RAM miss already recorded by `ram.get`.
        let disk = self.disk.as_ref()?;
        let chunk = disk.get(key)?;
        self.ram.record_disk_hit();
        // Promote: move the chunk up; victims cascade down. If RAM
        // rejects it (larger than the whole RAM tier) the disk copy
        // stays where it is.
        if let Some(victims) = self.ram.insert_collect(*key, chunk.clone()) {
            disk.remove(key);
            self.ram.record_tier_promotion();
            self.demote(victims);
        }
        Some((chunk, CacheTier::Disk))
    }

    /// Reads a chunk without promotion, recency updates or hit/miss
    /// accounting (the tiered analogue of [`ShardedChunkCache::peek`]).
    pub fn peek(&self, key: &ChunkId) -> Option<(CachedChunk, CacheTier)> {
        if let Some(chunk) = self.ram.peek(key) {
            return Some((chunk, CacheTier::Ram));
        }
        let chunk = self.disk.as_ref()?.get(key)?;
        Some((chunk, CacheTier::Disk))
    }

    /// Inserts into the RAM tier, demoting eviction victims to disk.
    /// Returns whether the chunk was stored.
    pub fn insert(&self, key: ChunkId, value: CachedChunk) -> bool {
        match self.ram.insert_collect(key, value) {
            Some(victims) => {
                // The key may have had a stale disk copy (e.g. an old
                // version demoted earlier): the RAM copy is now
                // authoritative, so drop it to keep tiers exclusive.
                if let Some(disk) = &self.disk {
                    disk.remove(&key);
                }
                self.demote(victims);
                true
            }
            None => false,
        }
    }

    /// Inserts directly into the requested tier. `Disk` placement with
    /// no disk tier attached falls back to RAM. Returns whether the
    /// chunk was stored.
    pub fn insert_to_tier(&self, key: ChunkId, value: CachedChunk, tier: CacheTier) -> bool {
        match (tier, &self.disk) {
            (CacheTier::Ram, _) | (CacheTier::Disk, None) => self.insert(key, value),
            (CacheTier::Disk, Some(disk)) => {
                // Keep tiers exclusive: a RAM copy would shadow the new
                // disk frame on reads.
                self.ram.remove(&key);
                let outcome = disk.put(key, &value);
                if outcome.evicted > 0 {
                    self.ram.record_disk_evictions(outcome.evicted);
                }
                outcome.stored
            }
        }
    }

    /// Demotes RAM eviction victims to the disk tier (dropped if no
    /// disk is attached).
    fn demote(&self, victims: Vec<(ChunkId, CachedChunk)>) {
        let Some(disk) = &self.disk else { return };
        for (key, chunk) in victims {
            let outcome = disk.put(key, &chunk);
            if outcome.stored {
                self.ram.record_tier_demotion();
            }
            if outcome.evicted > 0 {
                self.ram.record_disk_evictions(outcome.evicted);
            }
        }
    }

    /// Removes a chunk from **both** tiers, returning the RAM copy if
    /// one existed (the disk copy is purged regardless).
    pub fn remove(&self, key: &ChunkId) -> Option<CachedChunk> {
        let from_ram = self.ram.remove(key);
        if let Some(disk) = &self.disk {
            disk.remove(key);
        }
        from_ram
    }

    /// Removes every chunk matching the predicate from **both** tiers
    /// (bulk invalidation); returns how many entries were removed
    /// across tiers.
    pub fn remove_matching(&self, mut pred: impl FnMut(&ChunkId) -> bool) -> usize {
        let mut removed = self.ram.remove_matching(&mut pred);
        if let Some(disk) = &self.disk {
            removed += disk.remove_matching(&mut pred);
        }
        removed
    }

    /// Whether the chunk is present in either tier.
    pub fn contains(&self, key: &ChunkId) -> bool {
        self.ram.contains(key) || self.disk.as_ref().is_some_and(|disk| disk.contains(key))
    }

    /// Which tier currently holds the chunk, if any (no I/O beyond the
    /// disk index lookup, no recency updates).
    pub fn tier_of(&self, key: &ChunkId) -> Option<CacheTier> {
        if self.ram.contains(key) {
            Some(CacheTier::Ram)
        } else if self.disk.as_ref().is_some_and(|disk| disk.contains(key)) {
            Some(CacheTier::Disk)
        } else {
            None
        }
    }

    /// Every cached chunk id across both tiers (sorted, deduplicated).
    pub fn keys(&self) -> Vec<ChunkId> {
        let mut keys = self.ram.keys();
        if let Some(disk) = &self.disk {
            keys.extend(disk.keys());
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Live entries across both tiers.
    pub fn len(&self) -> usize {
        self.ram.len() + self.disk.as_ref().map_or(0, |d| d.len())
    }

    /// Whether both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes held by the RAM tier.
    pub fn used_bytes(&self) -> usize {
        self.ram.used_bytes()
    }

    /// RAM tier byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.ram.capacity_bytes()
    }

    /// Bytes held by the disk tier (0 without one).
    pub fn disk_used_bytes(&self) -> usize {
        self.disk.as_ref().map_or(0, |d| d.used_bytes())
    }

    /// Disk tier byte budget (0 without one).
    pub fn disk_capacity_bytes(&self) -> usize {
        self.disk.as_ref().map_or(0, |d| d.capacity_bytes())
    }

    /// A point-in-time snapshot of the shared statistics (both tiers
    /// account into the RAM tier's counters).
    pub fn stats(&self) -> CacheStats {
        self.ram.stats()
    }

    /// Late-binds the shared tier counters into a metrics registry
    /// (both tiers record into the RAM cache's `AtomicCacheStats`);
    /// see `AtomicCacheStats::register_with`. With a disk tier attached
    /// its corruption counter (`agar_disk_corrupt_frames_total`) is
    /// registered too.
    pub fn register_metrics(&self, registry: &agar_obs::MetricsRegistry, base: &agar_obs::Labels) {
        self.ram.register_metrics(registry, base);
        if let Some(disk) = &self.disk {
            disk.register_metrics(registry, base.clone());
        }
    }

    /// Disk-tier frames that failed verification so far (0 without a
    /// disk tier).
    pub fn disk_corrupt_frames(&self) -> u64 {
        self.disk.as_ref().map_or(0, |d| d.corrupt_frames())
    }

    /// Records an object-level read outcome; see
    /// [`CacheStats::record_object_read`].
    pub fn record_object_read(&self, cached_chunks: usize, needed_chunks: usize) {
        self.ram.record_object_read(cached_chunks, needed_chunks);
    }

    /// Records one decode-plan cache hit; see
    /// [`CacheStats::decode_plan_hits`].
    pub fn record_decode_plan_hit(&self) {
        self.ram.record_decode_plan_hit();
    }

    /// Records one systematic fast-path read; see
    /// [`CacheStats::systematic_fast_reads`].
    pub fn record_systematic_fast_read(&self) {
        self.ram.record_systematic_fast_read();
    }

    /// Records `n` hedge backend requests; see
    /// [`CacheStats::hedged_requests`].
    pub fn record_hedged_requests(&self, n: u64) {
        self.ram.record_hedged_requests(n);
    }

    /// Records one hedge bound into a decode; see
    /// [`CacheStats::hedge_wins`].
    pub fn record_hedge_win(&self) {
        self.ram.record_hedge_win();
    }

    /// Records `n` discarded straggler responses; see
    /// [`CacheStats::hedges_cancelled`].
    pub fn record_hedges_cancelled(&self, n: u64) {
        self.ram.record_hedges_cancelled(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::ObjectId;
    use bytes::Bytes;

    fn chunk(byte: u8, len: usize, version: u64) -> CachedChunk {
        CachedChunk::new(Bytes::from(vec![byte; len]), version)
    }

    fn id(object: u64, index: u8) -> ChunkId {
        ChunkId::new(ObjectId::new(object), index)
    }

    #[test]
    fn ram_eviction_demotes_to_disk_and_hit_promotes_back() {
        // RAM holds two 100 B chunks; the third insert demotes the LRU
        // victim to disk.
        let cache = TieredChunkCache::with_disk(200, PolicyKind::Lru, 1, 10_000);
        cache.insert(id(1, 0), chunk(1, 100, 1));
        cache.insert(id(2, 0), chunk(2, 100, 1));
        cache.insert(id(3, 0), chunk(3, 100, 1));
        assert_eq!(cache.tier_of(&id(1, 0)), Some(CacheTier::Disk));
        assert_eq!(cache.stats().tier_demotions(), 1);

        // Reading the demoted chunk serves from disk and promotes it
        // back, demoting the new RAM victim.
        let (back, tier) = cache.get(&id(1, 0)).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(back.data().as_ref(), &vec![1u8; 100][..]);
        assert_eq!(cache.tier_of(&id(1, 0)), Some(CacheTier::Ram));
        let stats = cache.stats();
        assert_eq!(stats.disk_hits(), 1);
        assert_eq!(stats.tier_promotions(), 1);
        assert_eq!(stats.tier_demotions(), 2);
        // The promoted chunk's disk copy is gone (exclusive tiers).
        assert!(!cache.disk().unwrap().contains(&id(1, 0)));

        // A second read is a plain RAM hit.
        let (_, tier) = cache.get(&id(1, 0)).unwrap();
        assert_eq!(tier, CacheTier::Ram);
    }

    #[test]
    fn ram_only_never_touches_tier_counters() {
        let cache = TieredChunkCache::ram_only(200, PolicyKind::Lru, 1);
        assert!(!cache.has_disk());
        cache.insert(id(1, 0), chunk(1, 100, 1));
        cache.insert(id(2, 0), chunk(2, 100, 1));
        cache.insert(id(3, 0), chunk(3, 100, 1));
        assert!(
            cache.get(&id(1, 0)).is_none(),
            "victim dropped, not demoted"
        );
        let stats = cache.stats();
        assert_eq!(stats.tier_demotions(), 0);
        assert_eq!(stats.disk_hits(), 0);
        assert_eq!(stats.evictions(), 1);
    }

    #[test]
    fn zero_disk_capacity_means_no_disk_tier() {
        let cache = TieredChunkCache::with_disk(200, PolicyKind::Lru, 1, 0);
        assert!(!cache.has_disk());
        assert_eq!(cache.disk_capacity_bytes(), 0);
    }

    #[test]
    fn insert_to_disk_tier_places_directly() {
        let cache = TieredChunkCache::with_disk(1_000, PolicyKind::Lru, 1, 10_000);
        assert!(cache.insert_to_tier(id(5, 0), chunk(5, 100, 2), CacheTier::Disk));
        assert_eq!(cache.tier_of(&id(5, 0)), Some(CacheTier::Disk));
        assert_eq!(cache.ram().len(), 0, "direct disk placement skips RAM");
        let (back, tier) = cache.peek(&id(5, 0)).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(back.version(), 2);
        // Without a disk tier the placement falls back to RAM.
        let ram_only = TieredChunkCache::ram_only(1_000, PolicyKind::Lru, 1);
        assert!(ram_only.insert_to_tier(id(5, 0), chunk(5, 100, 2), CacheTier::Disk));
        assert_eq!(ram_only.tier_of(&id(5, 0)), Some(CacheTier::Ram));
    }

    #[test]
    fn removal_purges_both_tiers() {
        let cache = TieredChunkCache::with_disk(1_000, PolicyKind::Lru, 1, 10_000);
        cache.insert(id(1, 0), chunk(1, 100, 1));
        cache.insert_to_tier(id(1, 1), chunk(2, 100, 1), CacheTier::Disk);
        assert_eq!(cache.len(), 2);
        let removed = cache.remove_matching(|k| k.object() == ObjectId::new(1));
        assert_eq!(removed, 2);
        assert!(cache.is_empty());
        assert!(cache.get(&id(1, 0)).is_none());
        assert!(cache.get(&id(1, 1)).is_none());
    }

    #[test]
    fn reinsert_drops_stale_disk_copy() {
        let cache = TieredChunkCache::with_disk(200, PolicyKind::Lru, 1, 10_000);
        // Demote version 1 of chunk (1,0) to disk.
        cache.insert(id(1, 0), chunk(1, 100, 1));
        cache.insert(id(2, 0), chunk(2, 100, 1));
        cache.insert(id(3, 0), chunk(3, 100, 1));
        assert_eq!(cache.tier_of(&id(1, 0)), Some(CacheTier::Disk));
        // Re-insert version 2 into RAM: the stale disk frame must go.
        cache.insert(id(1, 0), chunk(9, 100, 2));
        assert_eq!(cache.tier_of(&id(1, 0)), Some(CacheTier::Ram));
        assert!(!cache.disk().unwrap().contains(&id(1, 0)));
        assert_eq!(cache.get(&id(1, 0)).unwrap().0.version(), 2);
    }

    #[test]
    fn keys_cover_both_tiers() {
        let cache = TieredChunkCache::with_disk(200, PolicyKind::Lru, 1, 10_000);
        cache.insert(id(1, 0), chunk(1, 100, 1));
        cache.insert(id(2, 0), chunk(2, 100, 1));
        cache.insert(id(3, 0), chunk(3, 100, 1)); // demotes (1,0)
        let keys = cache.keys();
        assert_eq!(keys, vec![id(1, 0), id(2, 0), id(3, 0)]);
        assert_eq!(cache.len(), 3);
        assert!(cache.contains(&id(1, 0)));
    }

    #[test]
    fn disk_capacity_evictions_flow_into_stats() {
        // Tiny disk: 4 KiB across 512 B segments; heavy demotion churn
        // must surface disk_evictions.
        let cache = TieredChunkCache::with_disk(200, PolicyKind::Lru, 1, 4 * 1024);
        for i in 0..64u64 {
            cache.insert(id(i, 0), chunk(i as u8, 200, 1));
        }
        let stats = cache.stats();
        assert!(stats.tier_demotions() > 0);
        assert!(stats.disk_evictions() > 0, "disk churn must evict");
        assert!(cache.disk_used_bytes() <= cache.disk_capacity_bytes() + 512);
    }
}
