//! TinyLFU admission: a frequency-based gate in front of any cache.
//!
//! TinyLFU (Einziger & Friedman, PDP 2014 — discussed in the paper's
//! §VII-A) does not choose *eviction* victims; it decides whether a new
//! entry is worth admitting at all, by comparing its (sketched) access
//! frequency with the would-be victim's. The paper notes Agar's request
//! monitor could adopt exactly this mechanism to scale; this module
//! provides it as a composable wrapper.

use crate::cache::{Cache, InsertOutcome, Weigh};
use crate::policy::EvictionPolicy;
use crate::sketch::CountMinSketch;
use std::fmt::Debug;
use std::hash::Hash;

/// A cache wrapper that gates insertions through a TinyLFU filter.
///
/// Reads pass straight through (and feed the frequency sketch);
/// insertions into a full cache are admitted only if the candidate's
/// estimated frequency beats the eviction candidate's.
///
/// # Examples
///
/// ```
/// use agar_cache::{Cache, Lru, TinyLfu};
/// use bytes::Bytes;
///
/// let cache = Cache::with_capacity(8, Lru::new());
/// let mut tiny: TinyLfu<&str, Bytes, Lru<&str>> = TinyLfu::new(cache, 1024);
/// // A key seen often is admitted over a one-hit wonder.
/// for _ in 0..5 { tiny.record_access(&"hot"); }
/// tiny.insert("hot", Bytes::from_static(&[0; 8]));
/// assert!(tiny.cache().contains(&"hot"));
/// // "cold" has frequency 0 < "hot": rejected while the cache is full.
/// tiny.insert("cold", Bytes::from_static(&[0; 8]));
/// assert!(!tiny.cache().contains(&"cold"));
/// ```
#[derive(Debug)]
pub struct TinyLfu<K, V, P> {
    cache: Cache<K, V, P>,
    sketch: CountMinSketch,
}

impl<K, V, P> TinyLfu<K, V, P>
where
    K: Eq + Hash + Clone + Debug,
    V: Weigh,
    P: EvictionPolicy<K>,
{
    /// Wraps `cache` with a TinyLFU admission filter backed by a sketch
    /// of `sketch_width` counters (4 rows).
    pub fn new(cache: Cache<K, V, P>, sketch_width: usize) -> Self {
        TinyLfu {
            cache,
            sketch: CountMinSketch::new(sketch_width, 4),
        }
    }

    /// Records an access in the frequency sketch without touching the
    /// cache (e.g. for misses served by the backend).
    pub fn record_access(&mut self, key: &K) {
        self.sketch.increment(key);
    }

    /// Reads an entry; hits also feed the sketch.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.sketch.increment(key);
        self.cache.get(key)
    }

    /// Attempts to insert, subject to admission.
    ///
    /// If the cache has room (or the key is already present), behaves
    /// like a plain insert. Otherwise the candidate must have a strictly
    /// higher sketched frequency than the current eviction candidate;
    /// rejected values are handed back via [`InsertOutcome::Rejected`].
    pub fn insert(&mut self, key: K, value: V) -> InsertOutcome<K, V> {
        let needs_room =
            value.weight() > self.cache.available_bytes() && !self.cache.contains(&key);
        if needs_room {
            // Compare against the coldest victim the policy would evict.
            if let Some(victim) = self.cache.policy().peek_candidate() {
                let candidate_freq = self.sketch.estimate(&key);
                let victim_freq = self.sketch.estimate(victim);
                if candidate_freq <= victim_freq {
                    self.cache.stats_mut().record_rejected_insert();
                    return InsertOutcome::Rejected { value };
                }
            }
        }
        self.cache.insert(key, value)
    }

    /// Read access to the wrapped cache.
    pub fn cache(&self) -> &Cache<K, V, P> {
        &self.cache
    }

    /// Mutable access to the wrapped cache.
    pub fn cache_mut(&mut self) -> &mut Cache<K, V, P> {
        &mut self.cache
    }

    /// Read access to the frequency sketch.
    pub fn sketch(&self) -> &CountMinSketch {
        &self.sketch
    }

    /// Consumes the wrapper, returning the inner cache.
    pub fn into_inner(self) -> Cache<K, V, P> {
        self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;
    use bytes::Bytes;

    fn bytes(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    fn full_cache() -> TinyLfu<u32, Bytes, Lru<u32>> {
        let mut tiny = TinyLfu::new(Cache::with_capacity(20, Lru::new()), 256);
        tiny.insert(1, bytes(10));
        tiny.insert(2, bytes(10));
        tiny
    }

    #[test]
    fn admits_into_empty_cache() {
        let mut tiny = TinyLfu::new(Cache::with_capacity(20, Lru::new()), 256);
        assert!(tiny.insert(1u32, bytes(10)).was_stored());
        assert_eq!(tiny.cache().len(), 1);
    }

    #[test]
    fn cold_candidate_rejected_when_full() {
        let mut tiny = full_cache();
        for _ in 0..3 {
            tiny.record_access(&1);
            tiny.record_access(&2);
        }
        let out = tiny.insert(99, bytes(10));
        assert!(!out.was_stored());
        assert!(tiny.cache().contains(&1));
        assert!(tiny.cache().contains(&2));
    }

    #[test]
    fn hot_candidate_admitted_when_full() {
        let mut tiny = full_cache();
        for _ in 0..10 {
            tiny.record_access(&99);
        }
        let out = tiny.insert(99, bytes(10));
        assert!(out.was_stored());
        assert!(tiny.cache().contains(&99));
        assert_eq!(tiny.cache().len(), 2);
    }

    #[test]
    fn replacing_existing_key_bypasses_admission() {
        let mut tiny = full_cache();
        // Key 1 exists; updating it must not be vetoed.
        let out = tiny.insert(1, bytes(10));
        assert!(out.was_stored());
    }

    #[test]
    fn get_feeds_sketch() {
        let mut tiny = full_cache();
        for _ in 0..5 {
            let _ = tiny.get(&1);
        }
        assert!(tiny.sketch().estimate(&1) >= 5);
    }

    #[test]
    fn into_inner_returns_cache() {
        let tiny = full_cache();
        let cache = tiny.into_inner();
        assert_eq!(cache.len(), 2);
    }
}
