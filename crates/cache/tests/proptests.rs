//! Property-based tests for the cache: capacity invariants, policy/map
//! agreement, and reference-model equivalence for LRU.

use agar_cache::{AnyPolicy, Cache, EvictionPolicy, PolicyKind};
use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::VecDeque;

/// A scripted cache operation.
#[derive(Clone, Debug)]
enum Op {
    Insert(u8, usize),
    Get(u8),
    Remove(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1usize..=64).prop_map(|(k, w)| Op::Insert(k % 32, w)),
        any::<u8>().prop_map(|k| Op::Get(k % 32)),
        any::<u8>().prop_map(|k| Op::Remove(k % 32)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every policy: capacity is never exceeded, byte accounting
    /// matches the entries, and the policy tracks exactly the live keys.
    #[test]
    fn cache_invariants_hold_under_any_script(
        ops in vec(op_strategy(), 1..200),
        kind_idx in 0usize..4,
        capacity in 1usize..256,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let mut cache = Cache::with_capacity(capacity, AnyPolicy::new(kind));
        for op in &ops {
            match *op {
                Op::Insert(k, w) => {
                    let stored = cache.insert(k, Bytes::from(vec![0u8; w])).was_stored();
                    prop_assert_eq!(stored, w <= capacity);
                }
                Op::Get(k) => {
                    let _ = cache.get(&k);
                }
                Op::Remove(k) => {
                    let _ = cache.remove(&k);
                }
            }
            // Invariant 1: never over capacity.
            prop_assert!(cache.used_bytes() <= capacity);
            // Invariant 2: used bytes equals the sum of entry weights.
            let sum: usize = cache.iter().map(|(_, v)| v.len()).sum();
            prop_assert_eq!(cache.used_bytes(), sum);
            // Invariant 3: policy and map agree on membership count.
            prop_assert_eq!(cache.policy().tracked(), cache.len());
        }
    }

    /// The LRU cache behaves exactly like a straightforward reference
    /// model (unbounded-cost simulation with a recency deque).
    #[test]
    fn lru_matches_reference_model(
        ops in vec(op_strategy(), 1..150),
        capacity_units in 1usize..20,
    ) {
        // Fixed-size entries make the reference model exact.
        const UNIT: usize = 8;
        let capacity = capacity_units * UNIT;
        let mut cache = Cache::with_capacity(capacity, AnyPolicy::<u8>::new(PolicyKind::Lru));
        let mut model: VecDeque<u8> = VecDeque::new(); // front = LRU

        for op in &ops {
            match *op {
                Op::Insert(k, _) => {
                    let _ = cache.insert(k, Bytes::from(vec![0u8; UNIT]));
                    model.retain(|&x| x != k);
                    model.push_back(k);
                    while model.len() > capacity_units {
                        model.pop_front();
                    }
                }
                Op::Get(k) => {
                    let hit = cache.get(&k).is_some();
                    let model_hit = model.contains(&k);
                    prop_assert_eq!(hit, model_hit, "get({}) divergence", k);
                    if model_hit {
                        model.retain(|&x| x != k);
                        model.push_back(k);
                    }
                }
                Op::Remove(k) => {
                    let removed = cache.remove(&k).is_some();
                    let model_had = model.contains(&k);
                    prop_assert_eq!(removed, model_had);
                    model.retain(|&x| x != k);
                }
            }
            prop_assert_eq!(cache.len(), model.len());
            for k in &model {
                prop_assert!(cache.contains(k), "model key {} missing from cache", k);
            }
        }
    }

    /// Statistics identities: hits + misses == gets, stored inserts ==
    /// insertions, and evictions never exceed insertions.
    #[test]
    fn stats_identities(
        ops in vec(op_strategy(), 1..150),
        kind_idx in 0usize..4,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let mut cache = Cache::with_capacity(64, AnyPolicy::new(kind));
        let mut gets = 0u64;
        let mut stored = 0u64;
        for op in &ops {
            match *op {
                Op::Insert(k, w) => {
                    if cache.insert(k, Bytes::from(vec![0u8; w])).was_stored() {
                        stored += 1;
                    }
                }
                Op::Get(k) => {
                    gets += 1;
                    let _ = cache.get(&k);
                }
                Op::Remove(k) => {
                    let _ = cache.remove(&k);
                }
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.chunk_hits() + stats.chunk_misses(), gets);
        prop_assert_eq!(stats.insertions(), stored);
        prop_assert!(stats.evictions() <= stats.insertions());
    }

    /// Eviction candidates under every policy are always live keys, and
    /// draining the policy yields each key exactly once.
    #[test]
    fn policy_drain_yields_each_key_once(
        keys in vec(any::<u8>(), 1..64),
        kind_idx in 0usize..4,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let mut policy: AnyPolicy<u8> = AnyPolicy::new(kind);
        let mut live = std::collections::HashSet::new();
        for k in &keys {
            policy.on_insert(k);
            live.insert(*k);
        }
        prop_assert_eq!(policy.tracked(), live.len());
        let mut drained = std::collections::HashSet::new();
        while let Some(victim) = policy.evict_candidate() {
            prop_assert!(live.contains(&victim), "victim {} was never live", victim);
            prop_assert!(drained.insert(victim), "victim {} yielded twice", victim);
        }
        prop_assert_eq!(drained, live);
    }
}
