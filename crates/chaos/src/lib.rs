//! Deterministic, seeded fault injection for the Agar reproduction.
//!
//! Everything the simulator can break is driven from pure data plus the
//! run seed, so a failing run replays bit-identically:
//!
//! - [`RegionOutage`] — periodic fail→heal partitions/blackouts of a
//!   whole region, shaped like the `tail` harness's `FlakyRegion`
//!   schedule (pure function of the sim clock, no RNG draws);
//! - [`FetchFaultSpec`] — per-fetch error returns at a configured rate
//!   inside scheduled fault windows, decided by hashing the run seed
//!   with a per-plane fetch sequence number (again: no RNG draws, so
//!   installing a quiet plane perturbs nothing);
//! - [`corrupt_segments`] — deterministic byte flips in live
//!   `DiskStore` append-log segments, exercising the checksum/length
//!   validation fall-through;
//! - node crash mid-write is driven by the cluster tier itself
//!   (`WriteLease::crash` + `ClusterRouter::crash_node`), which this
//!   crate's scenarios compose with the schedules above.
//!
//! The injection point for the first two is [`ChaosPlane`], a
//! [`ChunkFetcher`] decorator installed between the node and its real
//! fetcher (direct or cluster coordinator). Faulted fetches return
//! [`StoreError::RegionUnavailable`] without touching the inner
//! fetcher, which funnels them into exactly the re-plan / retry /
//! breaker machinery the read path uses for real region failures.
//!
//! With an empty [`ChaosSpec`] the plane delegates wholesale — same
//! calls, same RNG draw order, byte-identical results — matching the
//! repo-wide "disabled ⇒ byte-identical" convention
//! (`trace_sample_every = 0`, `disk_capacity = 0`, `max_hedges = 0`).

#![warn(missing_docs)]

use agar::{ChunkFetcher, FetchRequest};
use agar_net::{RegionId, SimTime};
use agar_obs::{Counter, Labels, MetricsRegistry};
use agar_store::{ChunkFetch, StoreError};
use rand::RngCore;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A periodic region blackout: the region is unreachable during
/// `[first_failure_s + i·period_s, first_failure_s + i·period_s + down_s)`
/// for every cycle `i`. Pure data — the schedule is a function of the
/// sim clock only, mirroring the `tail` harness's flaky-region shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionOutage {
    /// The region to black out.
    pub region: RegionId,
    /// Sim-clock second of the first blackout's onset.
    pub first_failure_s: u64,
    /// How many seconds each blackout lasts.
    pub down_s: u64,
    /// Cycle length in seconds (must be > `down_s` for the region to
    /// ever heal; a huge period gives a one-shot outage).
    pub period_s: u64,
}

impl RegionOutage {
    /// Whether the region is blacked out at sim-second `now_s`.
    pub fn is_down_at(&self, now_s: u64) -> bool {
        if now_s < self.first_failure_s || self.period_s == 0 {
            return false;
        }
        (now_s - self.first_failure_s) % self.period_s < self.down_s
    }
}

/// Per-fetch error injection: inside each scheduled fault window,
/// every fetch independently errors with probability
/// `per_1024 / 1024`, decided by hashing the run seed with the plane's
/// fetch sequence number (no RNG draws, so the decision stream is
/// reproducible and does not perturb the node's seeded RNG).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchFaultSpec {
    /// Fault probability numerator out of 1024 (1024 ⇒ every fetch).
    pub per_1024: u16,
    /// Sim-clock second the first fault window opens.
    pub first_failure_s: u64,
    /// How many seconds each fault window lasts.
    pub down_s: u64,
    /// Window cycle length in seconds.
    pub period_s: u64,
}

impl FetchFaultSpec {
    /// Whether the fault window is open at sim-second `now_s`.
    pub fn is_active_at(&self, now_s: u64) -> bool {
        if now_s < self.first_failure_s || self.period_s == 0 {
            return false;
        }
        (now_s - self.first_failure_s) % self.period_s < self.down_s
    }
}

/// The full fault schedule for one run, drawn from the run seed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed every hash-based fault decision mixes in. Same seed ⇒
    /// byte-identical fault schedule.
    pub seed: u64,
    /// Region blackout schedules.
    pub outages: Vec<RegionOutage>,
    /// Per-fetch error injection, if any.
    pub fetch_faults: Option<FetchFaultSpec>,
}

impl ChaosSpec {
    /// A spec that injects nothing. A [`ChaosPlane`] built from it
    /// delegates wholesale and is byte-identical to no plane at all.
    pub fn quiet() -> Self {
        ChaosSpec::default()
    }

    /// True when the spec can never inject a fault.
    pub fn is_quiet(&self) -> bool {
        self.outages.is_empty() && self.fetch_faults.is_none()
    }
}

/// Shared sim-clock cell the fault plane reads its "now" from. The
/// harness stores the same instant it hands to `AgarNode::set_sim_now`,
/// so fault windows and breaker cooldowns tick on one clock.
#[derive(Clone, Debug, Default)]
pub struct ChaosClock(Arc<AtomicU64>);

impl ChaosClock {
    /// A clock starting at sim-time zero.
    pub fn new() -> Self {
        ChaosClock::default()
    }

    /// Advances the clock to `now` (monotonicity is the caller's
    /// responsibility; the schedules only read the latest value).
    pub fn set(&self, now: SimTime) {
        self.0.store(now.as_micros(), Ordering::Relaxed);
    }

    /// Current sim time in whole seconds (what the schedules key on).
    pub fn now_s(&self) -> u64 {
        self.0.load(Ordering::Relaxed) / 1_000_000
    }
}

/// SplitMix64 finalizer — the pure hash behind every per-fetch fault
/// decision. Keyed draws instead of RNG state keep the schedule
/// replayable and leave the node's seeded RNG streams untouched.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A [`ChunkFetcher`] decorator that injects scheduled faults before
/// delegating to the real fetcher. See the crate docs for the fault
/// model and the quiet-spec byte-identity guarantee.
pub struct ChaosPlane {
    inner: Arc<dyn ChunkFetcher>,
    spec: ChaosSpec,
    clock: ChaosClock,
    /// Monotone per-plane fetch sequence number; the hash key that
    /// makes per-fetch fault decisions deterministic.
    sequence: AtomicU64,
    faults_injected: Counter,
    partition_faults: Counter,
    fetch_error_faults: Counter,
}

impl ChaosPlane {
    /// Wraps `inner` with the fault schedule in `spec`, reading the
    /// sim clock from `clock`.
    pub fn new(inner: Arc<dyn ChunkFetcher>, spec: ChaosSpec, clock: ChaosClock) -> Self {
        ChaosPlane {
            inner,
            spec,
            clock,
            sequence: AtomicU64::new(0),
            faults_injected: Counter::default(),
            partition_faults: Counter::default(),
            fetch_error_faults: Counter::default(),
        }
    }

    /// Total faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.get()
    }

    /// Faults injected because the target region was blacked out.
    pub fn partition_faults(&self) -> u64 {
        self.partition_faults.get()
    }

    /// Faults injected by the per-fetch error schedule.
    pub fn fetch_error_faults(&self) -> u64 {
        self.fetch_error_faults.get()
    }

    /// Registers the plane's fault counters. Families:
    /// `agar_chaos_faults_injected_total`,
    /// `agar_chaos_partition_faults_total`,
    /// `agar_chaos_fetch_error_faults_total`.
    pub fn register_metrics(&self, registry: &MetricsRegistry, base: Labels) {
        registry.register_counter(
            "agar_chaos_faults_injected_total",
            "Faults injected by the chaos plane, all classes.",
            base.clone(),
            &self.faults_injected,
        );
        registry.register_counter(
            "agar_chaos_partition_faults_total",
            "Fetches failed because their region was blacked out.",
            base.clone(),
            &self.partition_faults,
        );
        registry.register_counter(
            "agar_chaos_fetch_error_faults_total",
            "Fetches failed by the per-fetch error schedule.",
            base,
            &self.fetch_error_faults,
        );
    }

    /// Decides whether the fault plane fails this request, and counts
    /// the injection if so.
    fn inject(&self, request: &FetchRequest, now_s: u64, sequence: u64) -> bool {
        for outage in &self.spec.outages {
            if outage.region == request.region && outage.is_down_at(now_s) {
                self.partition_faults.inc();
                self.faults_injected.inc();
                return true;
            }
        }
        if let Some(faults) = &self.spec.fetch_faults {
            if faults.is_active_at(now_s)
                && mix(self.spec.seed ^ sequence) % 1024 < u64::from(faults.per_1024)
            {
                self.fetch_error_faults.inc();
                self.faults_injected.inc();
                return true;
            }
        }
        false
    }
}

impl ChunkFetcher for ChaosPlane {
    fn fetch(
        &self,
        client_region: RegionId,
        requests: &[FetchRequest],
        rng: &mut dyn RngCore,
    ) -> Vec<(FetchRequest, Result<ChunkFetch, StoreError>)> {
        if self.spec.is_quiet() {
            // Byte-identity fast path: no sequence bookkeeping, no
            // schedule checks — indistinguishable from no plane.
            return self.inner.fetch(client_region, requests, rng);
        }
        let now_s = self.clock.now_s();
        let mut faulted = None;
        for (position, request) in requests.iter().enumerate() {
            let sequence = self.sequence.fetch_add(1, Ordering::Relaxed);
            if self.inject(request, now_s, sequence) {
                faulted = Some(position);
                break;
            }
        }
        let Some(position) = faulted else {
            return self.inner.fetch(client_region, requests, rng);
        };
        // Fetch the clean prefix through the real fetcher, then append
        // the injected failure. The trait allows stopping early after a
        // RegionUnavailable entry, so the tail is never attempted —
        // the node re-plans around the "failed" region exactly as it
        // would for a real one.
        let mut results = if position == 0 {
            Vec::new()
        } else {
            self.inner.fetch(client_region, &requests[..position], rng)
        };
        if results.len() == position {
            // The inner fetcher delivered the full prefix (it may
            // itself have short-circuited, in which case its result is
            // already terminal and ours would never be reached).
            let request = requests[position];
            results.push((
                request,
                Err(StoreError::RegionUnavailable {
                    region: request.region,
                }),
            ));
        }
        results
    }
}

impl std::fmt::Debug for ChaosPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosPlane")
            .field("spec", &self.spec)
            .field("sequence", &self.sequence.load(Ordering::Relaxed))
            .field("faults_injected", &self.faults_injected.get())
            .finish()
    }
}

/// Deterministically flips `flips` bytes across the given disk-store
/// segment files (seeded byte positions, XOR `0xFF`), simulating media
/// corruption under live traffic. Empty files are skipped. Returns the
/// number of bytes actually flipped.
pub fn corrupt_segments(
    paths: &[std::path::PathBuf],
    seed: u64,
    flips: usize,
) -> std::io::Result<usize> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut flipped = 0;
    for flip in 0..flips as u64 {
        let candidates: Vec<&Path> = paths.iter().map(|p| p.as_path()).collect();
        if candidates.is_empty() {
            break;
        }
        let pick = mix(seed ^ flip.wrapping_mul(0x517C_C1B7_2722_0A95)) as usize % candidates.len();
        let path = candidates[pick];
        let mut file = match std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
        {
            Ok(file) => file,
            Err(_) => continue, // segment rotated away under us
        };
        let len = file.metadata()?.len();
        if len == 0 {
            continue;
        }
        let offset = mix(seed ^ flip ^ 0xC0FF_EE00) % len;
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut byte)?;
        byte[0] ^= 0xFF;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(&byte)?;
        flipped += 1;
    }
    Ok(flipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::{ChunkId, ObjectId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct CountingFetcher {
        calls: AtomicU64,
    }

    impl ChunkFetcher for CountingFetcher {
        fn fetch(
            &self,
            _client_region: RegionId,
            requests: &[FetchRequest],
            _rng: &mut dyn RngCore,
        ) -> Vec<(FetchRequest, Result<ChunkFetch, StoreError>)> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            requests
                .iter()
                .map(|&request| {
                    (
                        request,
                        Err(StoreError::FetchInterrupted {
                            chunk: request.chunk,
                        }),
                    )
                })
                .collect()
        }
    }

    fn request(region: u16) -> FetchRequest {
        FetchRequest {
            chunk: ChunkId::new(ObjectId::new(1), 0),
            region: RegionId::new(region),
            version: 1,
        }
    }

    #[test]
    fn outage_schedule_matches_the_flaky_region_shape() {
        let outage = RegionOutage {
            region: RegionId::new(2),
            first_failure_s: 5,
            down_s: 3,
            period_s: 10,
        };
        assert!(!outage.is_down_at(0));
        assert!(!outage.is_down_at(4));
        assert!(outage.is_down_at(5));
        assert!(outage.is_down_at(7));
        assert!(!outage.is_down_at(8));
        assert!(outage.is_down_at(15));
    }

    #[test]
    fn quiet_plane_delegates_wholesale() {
        let inner = Arc::new(CountingFetcher {
            calls: AtomicU64::new(0),
        });
        let plane = ChaosPlane::new(
            Arc::clone(&inner) as _,
            ChaosSpec::quiet(),
            ChaosClock::new(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let results = plane.fetch(RegionId::new(0), &[request(0), request(1)], &mut rng);
        assert_eq!(results.len(), 2);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 1);
        assert_eq!(plane.faults_injected(), 0);
    }

    #[test]
    fn partitioned_region_faults_without_touching_the_inner_fetcher() {
        let inner = Arc::new(CountingFetcher {
            calls: AtomicU64::new(0),
        });
        let clock = ChaosClock::new();
        clock.set(SimTime::from_secs(6));
        let spec = ChaosSpec {
            seed: 7,
            outages: vec![RegionOutage {
                region: RegionId::new(1),
                first_failure_s: 5,
                down_s: 5,
                period_s: 20,
            }],
            fetch_faults: None,
        };
        let plane = ChaosPlane::new(Arc::clone(&inner) as _, spec, clock.clone());
        let mut rng = StdRng::seed_from_u64(0);
        // First request is to the dead region: injected failure, inner
        // never called, tail never attempted.
        let results = plane.fetch(RegionId::new(0), &[request(1), request(0)], &mut rng);
        assert_eq!(results.len(), 1);
        assert!(matches!(
            results[0].1,
            Err(StoreError::RegionUnavailable { region }) if region == RegionId::new(1)
        ));
        assert_eq!(inner.calls.load(Ordering::Relaxed), 0);
        assert_eq!(plane.partition_faults(), 1);

        // After the heal the same fetch goes straight through.
        clock.set(SimTime::from_secs(11));
        let results = plane.fetch(RegionId::new(0), &[request(1), request(0)], &mut rng);
        assert_eq!(results.len(), 2);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fetch_fault_rate_is_deterministic_in_the_seed() {
        let schedule = |seed: u64| -> Vec<bool> {
            let inner = Arc::new(CountingFetcher {
                calls: AtomicU64::new(0),
            });
            let clock = ChaosClock::new();
            clock.set(SimTime::from_secs(1));
            let spec = ChaosSpec {
                seed,
                outages: Vec::new(),
                fetch_faults: Some(FetchFaultSpec {
                    per_1024: 512,
                    first_failure_s: 0,
                    down_s: 10,
                    period_s: 10,
                }),
            };
            let plane = ChaosPlane::new(inner as _, spec, clock);
            let mut rng = StdRng::seed_from_u64(0);
            (0..64)
                .map(|_| {
                    let results = plane.fetch(RegionId::new(0), &[request(0)], &mut rng);
                    matches!(results[0].1, Err(StoreError::RegionUnavailable { .. }))
                })
                .collect()
        };
        let a = schedule(42);
        let b = schedule(42);
        let c = schedule(43);
        assert_eq!(a, b, "same seed, same fault schedule");
        assert_ne!(a, c, "different seed, different schedule");
        let faults = a.iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&faults), "rate ~1/2, got {faults}/64");
    }

    #[test]
    fn corrupt_segments_flips_seeded_bytes() {
        let dir = std::env::temp_dir().join(format!("agar-chaos-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-0.log");
        std::fs::write(&path, vec![0u8; 256]).unwrap();
        let flipped = corrupt_segments(std::slice::from_ref(&path), 9, 4).unwrap();
        assert_eq!(flipped, 4);
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.contains(&0xFF), "some byte was flipped");
        std::fs::remove_dir_all(&dir).ok();
    }
}
