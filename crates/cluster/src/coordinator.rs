//! Single-flight, region-batched backend fetches.
//!
//! Every node of a cluster shares one [`FetchCoordinator`], installed
//! as the node's [`ChunkFetcher`]. It improves on per-chunk direct
//! fetches in two ways:
//!
//! - **Single-flight coalescing** — a per-chunk in-flight table
//!   deduplicates concurrent fetches: the first reader to request a
//!   chunk becomes the *leader* and actually fetches it; readers that
//!   arrive while the fetch is in flight park on the flight's condvar
//!   and share the leader's result (one backend round trip instead of
//!   N identical ones — the thundering-herd killer for hot cold
//!   objects).
//! - **Region batching** — the leader's chunks are grouped by hosting
//!   region and each group travels as **one** batched store call
//!   ([`Backend::fetch_chunks`]), so the fixed WAN round-trip overhead
//!   is paid once per region instead of once per chunk.
//!
//! Coalesced fetches draw no RNG of their own (they reuse the
//! leader's sampled latency), so coalescing never perturbs another
//! read's latency stream. The in-flight table is keyed by **(client
//! region, chunk, expected version)**: a fetch in flight toward
//! Frankfurt does not move the bytes to Sydney, so readers only
//! coalesce with leaders in their own region — sharing across regions
//! would hand the joiner a latency sampled for someone else's WAN
//! path and poison its region manager's estimates — and a reader
//! planning against a fresh manifest never joins a flight started for
//! a stale one (its retry after a version race leads its own fetch
//! instead of re-joining the doomed flight until the attempts run
//! out). Version races are otherwise handled exactly as in the direct
//! path: results carry the stored version and the node validates it
//! against its manifest snapshot.

use agar::fetcher::{ChunkFetcher, FetchRequest};
use agar_cache::{AtomicCacheStats, CacheStats};
use agar_ec::ChunkId;
use agar_net::RegionId;
use agar_obs::{Counter, Labels, MetricsRegistry};
use agar_store::{Backend, ChunkFetch, StoreError};
use rand::RngCore;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One in-flight chunk fetch: the leader publishes into `slot` and
/// notifies; losers wait on the condvar.
struct Flight {
    slot: Mutex<Option<Result<ChunkFetch, StoreError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<ChunkFetch, StoreError>) {
        *self.slot.lock().expect("flight lock poisoned") = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<ChunkFetch, StoreError> {
        let mut slot = self.slot.lock().expect("flight lock poisoned");
        while slot.is_none() {
            slot = self.done.wait(slot).expect("flight lock poisoned");
        }
        slot.clone().expect("guarded by the loop above")
    }
}

/// The shared fetch coordinator of a cluster (see the module docs).
///
/// Thread-safe behind `&self`; installed per node via
/// [`agar::AgarNode::set_chunk_fetcher`].
pub struct FetchCoordinator {
    backend: Arc<Backend>,
    /// In-flight fetches keyed by (client region, chunk, expected
    /// version) — see the module docs for why flights cross neither
    /// regions nor manifest versions.
    inflight: Mutex<HashMap<(RegionId, ChunkId, u64), Arc<Flight>>>,
    /// Optional *wall-clock* hold applied to each leader fetch before
    /// its results are published. The simulation prices latency on a
    /// virtual clock, so backend calls return in microseconds and
    /// concurrent readers would rarely overlap for real; tests and
    /// throughput benches set a small hold to make in-flight windows
    /// physically wide enough to exercise coalescing.
    wall_delay: Option<Duration>,
    stats: AtomicCacheStats,
    primary_fetches: Counter,
}

impl FetchCoordinator {
    /// Creates a coordinator against `backend`.
    pub fn new(backend: Arc<Backend>) -> Self {
        FetchCoordinator {
            backend,
            inflight: Mutex::new(HashMap::new()),
            wall_delay: None,
            stats: AtomicCacheStats::new(),
            primary_fetches: Counter::new(),
        }
    }

    /// Holds each leader fetch open for `delay` of real time before
    /// publishing (testing/bench aid — see the field docs).
    #[must_use]
    pub fn with_wall_delay(mut self, delay: Duration) -> Self {
        self.wall_delay = Some(delay);
        self
    }

    /// Chunk fetches that actually hit the backend (flight leaders).
    pub fn primary_fetches(&self) -> u64 {
        self.primary_fetches.get()
    }

    /// Chunk fetches served by piggybacking on another reader's
    /// in-flight fetch.
    pub fn coalesced_fetches(&self) -> u64 {
        self.stats.snapshot().coalesced_fetches()
    }

    /// Batched (region-grouped) round trips issued.
    pub fn batched_requests(&self) -> u64 {
        self.stats.snapshot().batched_requests()
    }

    /// Number of entries currently in the single-flight table. Quiesced
    /// coordinators must report zero — a nonzero count with no fetch in
    /// progress means a leader leaked its entry (and any joiners parked
    /// on its condvar are stranded). Tests assert this after hedged
    /// reads discard stragglers.
    pub fn in_flight(&self) -> usize {
        self.inflight
            .lock()
            .expect("in-flight table poisoned")
            .len()
    }

    /// Snapshot of the coordination counters as [`CacheStats`] (only
    /// the `coalesced_fetches` / `batched_requests` fields are used);
    /// routers merge this into their aggregated cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Late-binds the coordination counters (plus the primary-fetch
    /// count) into a metrics registry under `base` labels.
    pub fn register_metrics(&self, registry: &MetricsRegistry, base: &Labels) {
        self.stats
            .register_with(registry, &base.clone().with("source", "coordinator"));
        registry.register_counter(
            "agar_fetch_primary_total",
            "Chunk fetches that actually hit the backend (flight leaders).",
            base.clone(),
            &self.primary_fetches,
        );
    }
}

/// Unwind insurance for a flight leader: if the leader panics between
/// registering its flights and publishing their results, the guard's
/// `Drop` clears the table entries and publishes an error, so parked
/// joiners (and every future reader of those chunks) surface a
/// failure instead of hanging on a dead flight forever.
struct LeadGuard<'a> {
    coordinator: &'a FetchCoordinator,
    keys: Vec<(RegionId, ChunkId, u64)>,
}

impl LeadGuard<'_> {
    /// Normal completion: the leader published everything itself.
    fn disarm(mut self) {
        self.keys.clear();
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if self.keys.is_empty() {
            return;
        }
        let mut table = self
            .coordinator
            .inflight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for key in self.keys.drain(..) {
            if let Some(flight) = table.remove(&key) {
                flight.publish(Err(StoreError::FetchInterrupted { chunk: key.1 }));
            }
        }
    }
}

impl ChunkFetcher for FetchCoordinator {
    fn fetch(
        &self,
        client_region: RegionId,
        requests: &[FetchRequest],
        rng: &mut dyn RngCore,
    ) -> Vec<(FetchRequest, Result<ChunkFetch, StoreError>)> {
        // Classify under the table lock: chunks with no flight are led
        // by this call; chunks already in flight are joined.
        let mut lead: Vec<usize> = Vec::new();
        let mut joined: Vec<(usize, Arc<Flight>)> = Vec::new();
        {
            let mut table = self.inflight.lock().expect("in-flight table poisoned");
            for (i, request) in requests.iter().enumerate() {
                match table.entry((client_region, request.chunk, request.version)) {
                    Entry::Occupied(entry) => joined.push((i, Arc::clone(entry.get()))),
                    Entry::Vacant(entry) => {
                        entry.insert(Arc::new(Flight::new()));
                        lead.push(i);
                    }
                }
            }
        }

        let mut slots: Vec<Option<Result<ChunkFetch, StoreError>>> = vec![None; requests.len()];

        // Lead: one region-batched store call for every led chunk, then
        // publish and clear the flights (whether fetched or failed —
        // a flight must never outlive its leader, even across a panic:
        // the guard error-publishes anything left unresolved).
        if !lead.is_empty() {
            let guard = LeadGuard {
                coordinator: self,
                keys: lead
                    .iter()
                    .map(|&i| (client_region, requests[i].chunk, requests[i].version))
                    .collect(),
            };
            let chunks: Vec<ChunkId> = lead.iter().map(|&i| requests[i].chunk).collect();
            let outcome = self.backend.fetch_chunks(client_region, &chunks, rng);
            self.stats.record_batched_requests(outcome.batches() as u64);
            self.primary_fetches.add(lead.len() as u64);
            if let Some(delay) = self.wall_delay {
                std::thread::sleep(delay);
            }
            {
                let mut table = self.inflight.lock().expect("in-flight table poisoned");
                for (&i, (chunk, result)) in lead.iter().zip(outcome.results) {
                    debug_assert_eq!(chunk, requests[i].chunk);
                    if let Some(flight) = table.remove(&(client_region, chunk, requests[i].version))
                    {
                        flight.publish(result.clone());
                    }
                    slots[i] = Some(result);
                }
            }
            guard.disarm();
        }

        // Join: park until each leader publishes.
        for (i, flight) in joined {
            self.stats.record_coalesced_fetch();
            slots[i] = Some(flight.wait());
        }

        requests
            .iter()
            .zip(slots)
            .map(|(&request, slot)| (request, slot.expect("every request classified")))
            .collect()
    }
}

impl std::fmt::Debug for FetchCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchCoordinator")
            .field("primary_fetches", &self.primary_fetches())
            .field("coalesced_fetches", &self.coalesced_fetches())
            .field("batched_requests", &self.batched_requests())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::{CodingParams, ObjectId};
    use agar_net::{ConstantLatency, Topology};
    use agar_store::{populate, RoundRobin};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn backend(regions: usize) -> Arc<Backend> {
        let names: Vec<String> = (0..regions).map(|i| format!("r{i}")).collect();
        let backend = Backend::new(
            Topology::from_names(names),
            Arc::new(ConstantLatency::new(Duration::from_millis(10))),
            CodingParams::new(4, 2).unwrap(),
            Box::new(RoundRobin),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        populate(&backend, 2, 8, &mut rng).unwrap();
        Arc::new(backend)
    }

    fn requests(backend: &Backend, object: u64, indices: &[u8]) -> Vec<FetchRequest> {
        let object = ObjectId::new(object);
        let manifest = backend.manifest(object).unwrap();
        indices
            .iter()
            .map(|&i| FetchRequest {
                chunk: ChunkId::new(object, i),
                region: manifest.location(i as usize),
                version: manifest.version(),
            })
            .collect()
    }

    #[test]
    fn uncontended_fetch_batches_by_region() {
        let backend = backend(3);
        let coordinator = FetchCoordinator::new(Arc::clone(&backend));
        let reqs = requests(&backend, 0, &[0, 1, 2, 3, 4, 5]);
        let mut rng = StdRng::seed_from_u64(1);
        let results = coordinator.fetch(RegionId::new(0), &reqs, &mut rng);
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        // Six chunks over three regions: three priced round trips.
        assert_eq!(coordinator.batched_requests(), 3);
        assert_eq!(coordinator.primary_fetches(), 6);
        assert_eq!(coordinator.coalesced_fetches(), 0);
        // The in-flight table drains completely.
        assert!(coordinator.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn concurrent_identical_fetches_coalesce() {
        let backend = backend(3);
        let coordinator = Arc::new(
            FetchCoordinator::new(Arc::clone(&backend)).with_wall_delay(Duration::from_millis(30)),
        );
        let reqs = requests(&backend, 0, &[0, 1, 2, 3]);
        let threads = 6;
        let barrier = std::sync::Barrier::new(threads);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let coordinator = Arc::clone(&coordinator);
                let reqs = reqs.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    barrier.wait();
                    let results = coordinator.fetch(RegionId::new(0), &reqs, &mut rng);
                    for (_, result) in results {
                        assert_eq!(result.unwrap().data.len(), 2);
                    }
                });
            }
        });
        let primary = coordinator.primary_fetches();
        let coalesced = coordinator.coalesced_fetches();
        assert_eq!(
            primary + coalesced,
            (threads * reqs.len()) as u64,
            "every request resolved exactly once"
        );
        assert!(coalesced > 0, "overlapping fetches must coalesce");
        assert!(coordinator.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn failures_propagate_to_coalesced_waiters_and_flights_clear() {
        let backend = backend(3);
        backend.fail_region(RegionId::new(1)); // chunks 1 and 4
        let coordinator = FetchCoordinator::new(Arc::clone(&backend));
        let reqs = requests(&backend, 0, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        let results = coordinator.fetch(RegionId::new(0), &reqs, &mut rng);
        assert!(results[0].1.is_ok());
        assert!(matches!(
            results[1].1,
            Err(StoreError::RegionUnavailable { .. })
        ));
        // Failed flights are cleared too: a retry leads fresh flights
        // rather than waiting forever on a dead one.
        assert!(coordinator.inflight.lock().unwrap().is_empty());
        backend.heal_region(RegionId::new(1));
        let results = coordinator.fetch(RegionId::new(0), &reqs, &mut rng);
        assert!(results.iter().all(|(_, r)| r.is_ok()));
    }

    #[test]
    fn readers_in_different_regions_never_coalesce() {
        // A flight toward region 0 does not move bytes to region 1:
        // same chunks, different client regions, overlapping in time —
        // each region must lead its own fetch (and so observe a
        // latency sampled for its own WAN path).
        let backend = backend(3);
        let coordinator = Arc::new(
            FetchCoordinator::new(Arc::clone(&backend)).with_wall_delay(Duration::from_millis(30)),
        );
        let reqs = requests(&backend, 0, &[0, 1, 2, 3]);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            for region in 0..2u16 {
                let coordinator = Arc::clone(&coordinator);
                let reqs = reqs.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(region as u64);
                    barrier.wait();
                    let results = coordinator.fetch(RegionId::new(region), &reqs, &mut rng);
                    assert!(results.iter().all(|(_, r)| r.is_ok()));
                });
            }
        });
        assert_eq!(coordinator.coalesced_fetches(), 0);
        assert_eq!(coordinator.primary_fetches(), 2 * reqs.len() as u64);
    }

    #[test]
    fn empty_request_list_is_a_no_op() {
        let backend = backend(3);
        let coordinator = FetchCoordinator::new(Arc::clone(&backend));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(coordinator
            .fetch(RegionId::new(0), &[], &mut rng)
            .is_empty());
        assert_eq!(coordinator.batched_requests(), 0);
    }
}
