//! Per-object write leases and the holder registry backing targeted
//! invalidation.
//!
//! The first cluster write path broadcast an invalidation to **every**
//! member on **every** write, while holding the router's state lock
//! across the owner's backend round trip — concurrent writes
//! serialised on that lock even when they touched different objects,
//! and membership changes stalled behind WAN I/O. This module replaces
//! both mechanisms, following the lease discipline of Nishtala et al.
//! (*Scaling Memcache at Facebook*, NSDI 2013) with per-key ownership
//! in the style of Dynamo (DeCandia et al., SOSP 2007):
//!
//! - **Per-object lease** — a write acquires the object's lease
//!   (granted on behalf of the object's ring owner) before touching
//!   the backend. Writes to the *same* object serialise on the lease;
//!   writes to *different* objects share nothing and proceed in
//!   parallel. The router's state lock is only held long enough to
//!   resolve the owner.
//! - **Holder registry** — every member reports its object-level
//!   cache occupancy through the node's
//!   [`CacheEventSink`] write hook (installed by
//!   the router on join). The registry is a *superset* of true
//!   holders: capacity evictions drop entries silently, and
//!   invalidating a non-holder is harmless — the version check on
//!   read remains the correctness backstop.
//! - **Targeted invalidation on release** —
//!   [`WriteLease::release_after_write`] invalidates the written
//!   object on exactly the registered holders (minus the writer,
//!   which already invalidated locally), instead of every member.
//!
//! A lease dropped without `release_after_write` (a failed write, a
//! panic) releases the slot without invalidating — waiters wake, and
//! no lease leaks. Statistics (`lease_grants`, `lease_contentions`,
//! `targeted_invalidations`) surface through [`CacheStats`].
//!
//! **Lease failover.** An owner that *crashes* mid-write
//! ([`WriteLease::crash`], driven by the fault plane) leaves the lease
//! *poisoned*: the slot is released so waiters wake, but the object is
//! marked dirty in the manager. The next writer to acquire the lease
//! **fences** first — every registered holder of the object is
//! invalidated before the new lease is granted, so no member keeps
//! serving chunks the dead writer may have half-replaced. Torn backend
//! state itself is harmless: the manifest is installed before the
//! chunks, so readers of a half-written object see version mismatches
//! and retry rather than decode across versions. The fence count
//! surfaces as `agar_lease_fences_total`.

use agar::{AgarNode, CacheEventSink};
use agar_cache::{AtomicCacheStats, CacheStats};
use agar_ec::ObjectId;
use agar_obs::Counter;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Condvar, Mutex};

/// One per-object lease slot: `held` flips under the mutex, waiters
/// park on the condvar.
struct LeaseSlot {
    held: Mutex<bool>,
    freed: Condvar,
}

impl LeaseSlot {
    fn new() -> Self {
        LeaseSlot {
            held: Mutex::new(false),
            freed: Condvar::new(),
        }
    }
}

/// Table entry: the slot plus a reference count so the entry can be
/// dropped once the last writer (holder or waiter) leaves.
struct SlotEntry {
    slot: Arc<LeaseSlot>,
    refs: usize,
}

/// The cluster's write-path coordinator (see the module docs):
/// per-object leases, the member/holder registry, and targeted
/// invalidation on lease release.
///
/// Thread-safe behind `&self`; owned by the `ClusterRouter`, which
/// registers members on join and unregisters them on departure.
pub struct WriteLeaseManager {
    /// Registered members by id (strong refs; the router removes an
    /// entry when the member leaves the cluster).
    members: Mutex<BTreeMap<u64, Arc<AgarNode>>>,
    /// Object → member ids whose caches (are believed to) hold chunks
    /// of it. Superset semantics — see the module docs.
    holders: Mutex<HashMap<ObjectId, BTreeSet<u64>>>,
    /// Active lease slots by object.
    leases: Mutex<HashMap<ObjectId, SlotEntry>>,
    /// Objects whose last lease holder crashed mid-write. Kept on the
    /// manager, not the slot: a crash with no waiters tears the slot
    /// entry down, and the poison must survive until the next writer
    /// arrives to fence.
    poisoned: Mutex<BTreeSet<ObjectId>>,
    /// Poisoned leases fenced and reclaimed by a subsequent writer.
    fences: Counter,
    stats: AtomicCacheStats,
}

impl WriteLeaseManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        WriteLeaseManager {
            members: Mutex::new(BTreeMap::new()),
            holders: Mutex::new(HashMap::new()),
            leases: Mutex::new(HashMap::new()),
            poisoned: Mutex::new(BTreeSet::new()),
            fences: Counter::new(),
            stats: AtomicCacheStats::new(),
        }
    }

    /// Registers a member and seeds the holder registry from whatever
    /// its cache already contains (a node warmed before joining must
    /// not be invisible to targeted invalidation).
    pub fn register_member(&self, id: u64, node: Arc<AgarNode>) {
        use agar::CachingClient;
        let warm: Vec<ObjectId> = node.cache_contents().keys().copied().collect();
        self.members
            .lock()
            .expect("member table poisoned")
            .insert(id, node);
        if !warm.is_empty() {
            let mut holders = self.holders.lock().expect("holder registry poisoned");
            for object in warm {
                holders.entry(object).or_default().insert(id);
            }
        }
    }

    /// Unregisters a member: removes it from the member table and
    /// purges it from every holder set. Outstanding leases are
    /// untouched — a write in flight to the departed owner completes
    /// against the `Arc` it already holds and releases normally.
    pub fn unregister_member(&self, id: u64) {
        self.members
            .lock()
            .expect("member table poisoned")
            .remove(&id);
        let mut holders = self.holders.lock().expect("holder registry poisoned");
        holders.retain(|_, members| {
            members.remove(&id);
            !members.is_empty()
        });
    }

    /// Marks `member` as holding chunks of `object`.
    pub fn record_fill(&self, member: u64, object: ObjectId) {
        self.holders
            .lock()
            .expect("holder registry poisoned")
            .entry(object)
            .or_default()
            .insert(member);
    }

    /// Marks `member` as no longer holding chunks of `object`.
    pub fn record_drop(&self, member: u64, object: ObjectId) {
        let mut holders = self.holders.lock().expect("holder registry poisoned");
        if let Some(members) = holders.get_mut(&object) {
            members.remove(&member);
            if members.is_empty() {
                holders.remove(&object);
            }
        }
    }

    /// The member ids currently registered as holding chunks of
    /// `object` (sorted).
    pub fn holders_of(&self, object: ObjectId) -> Vec<u64> {
        self.holders
            .lock()
            .expect("holder registry poisoned")
            .get(&object)
            .map(|members| members.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Acquires the write lease for `object` on behalf of its ring
    /// owner `owner`, blocking behind any writer already holding it
    /// (same-object writes serialise; different objects share
    /// nothing). The returned guard releases on drop; call
    /// [`WriteLease::release_after_write`] after a successful write to
    /// also run the targeted invalidation.
    pub fn acquire(&self, object: ObjectId, owner: u64) -> WriteLease<'_> {
        let slot = {
            let mut leases = self.leases.lock().expect("lease table poisoned");
            let entry = leases.entry(object).or_insert_with(|| SlotEntry {
                slot: Arc::new(LeaseSlot::new()),
                refs: 0,
            });
            entry.refs += 1;
            Arc::clone(&entry.slot)
        };
        let mut contended = false;
        {
            let mut held = slot.held.lock().expect("lease slot poisoned");
            if *held {
                contended = true;
                self.stats.record_lease_contention();
                while *held {
                    held = slot.freed.wait(held).expect("lease slot poisoned");
                }
            }
            *held = true;
        }
        // Fence a crashed predecessor before the grant becomes usable:
        // every registered holder is invalidated (no skip — the dead
        // writer may have half-replaced the object's chunks anywhere),
        // so stale chunks cannot outlive the crash.
        let fenced = self
            .poisoned
            .lock()
            .expect("poison set poisoned")
            .remove(&object);
        if fenced {
            self.fences.inc();
            self.invalidate_holders(object, u64::MAX);
        }
        self.stats.record_lease_grant();
        WriteLease {
            manager: self,
            object,
            owner,
            slot,
            contended,
            fenced,
        }
    }

    /// Poisoned leases fenced and reclaimed by a subsequent writer.
    pub fn fences(&self) -> u64 {
        self.fences.get()
    }

    /// Leases currently held or waited on (diagnostics; the race suite
    /// asserts this drains to zero — no leaked leases).
    pub fn active_leases(&self) -> usize {
        self.leases.lock().expect("lease table poisoned").len()
    }

    /// Snapshot of the lease counters as [`CacheStats`] (only the
    /// `lease_grants` / `lease_contentions` / `targeted_invalidations`
    /// fields are used); the router merges this into its aggregated
    /// statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Late-binds the lease counters into a metrics registry. The
    /// cells are labelled `source="leases"` so they never collide with
    /// the coordinator's or a member cache's cells, which register the
    /// same metric families under the shared `base` labels.
    pub fn register_metrics(&self, registry: &agar_obs::MetricsRegistry, base: &agar_obs::Labels) {
        self.stats
            .register_with(registry, &base.clone().with("source", "leases"));
        registry.register_counter(
            "agar_lease_fences_total",
            "Poisoned leases fenced and reclaimed after an owner crash.",
            base.clone(),
            &self.fences,
        );
    }

    /// Invalidates `object` on every registered holder except `skip`
    /// (the writer, which already invalidated locally); returns how
    /// many members were invalidated. The registry entry is consumed —
    /// holders re-register on their next fill.
    fn invalidate_holders(&self, object: ObjectId, skip: u64) -> u64 {
        let holder_ids: Vec<u64> = {
            let mut holders = self.holders.lock().expect("holder registry poisoned");
            holders
                .remove(&object)
                .map(|members| members.into_iter().collect())
                .unwrap_or_default()
        };
        let targets: Vec<Arc<AgarNode>> = {
            let members = self.members.lock().expect("member table poisoned");
            holder_ids
                .iter()
                .filter(|&&id| id != skip)
                .filter_map(|id| members.get(id).cloned())
                .collect()
        };
        // No registry or member lock is held across the cache work.
        let invalidated = targets.len() as u64;
        for node in targets {
            node.invalidate_object(object);
        }
        self.stats.record_targeted_invalidations(invalidated);
        invalidated
    }

    /// Releases the slot acquired by [`WriteLeaseManager::acquire`].
    fn release_slot(&self, object: ObjectId, slot: &Arc<LeaseSlot>) {
        {
            let mut held = slot
                .held
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *held = false;
        }
        slot.freed.notify_one();
        let mut leases = self
            .leases
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(entry) = leases.get_mut(&object) {
            entry.refs -= 1;
            if entry.refs == 0 {
                leases.remove(&object);
            }
        }
    }
}

impl Default for WriteLeaseManager {
    fn default() -> Self {
        WriteLeaseManager::new()
    }
}

impl std::fmt::Debug for WriteLeaseManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("WriteLeaseManager")
            .field("active_leases", &self.active_leases())
            .field(
                "tracked_objects",
                &self.holders.lock().expect("holder registry poisoned").len(),
            )
            .field("lease_grants", &stats.lease_grants())
            .field("lease_contentions", &stats.lease_contentions())
            .field("targeted_invalidations", &stats.targeted_invalidations())
            .field("fences", &self.fences.get())
            .finish()
    }
}

/// A held per-object write lease (see [`WriteLeaseManager::acquire`]).
///
/// Dropping the guard releases the lease *without* invalidating —
/// that is the failure path (backend write error, panic), so waiters
/// always wake and no lease leaks. The success path is
/// [`WriteLease::release_after_write`].
#[must_use = "dropping a lease releases it without invalidating"]
pub struct WriteLease<'a> {
    manager: &'a WriteLeaseManager,
    object: ObjectId,
    owner: u64,
    slot: Arc<LeaseSlot>,
    contended: bool,
    fenced: bool,
}

impl WriteLease<'_> {
    /// The leased object.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The ring owner the lease was granted on behalf of.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// Whether this acquisition had to wait behind another writer.
    pub fn contended(&self) -> bool {
        self.contended
    }

    /// Whether this acquisition fenced a crashed predecessor (every
    /// registered holder was invalidated before the grant).
    pub fn fenced(&self) -> bool {
        self.fenced
    }

    /// Simulates the holder dying mid-write: the lease is *poisoned*
    /// and released without any invalidation — waiters wake, but the
    /// next writer to acquire this object's lease fences (invalidates
    /// all registered holders) before its grant becomes usable. Fault
    /// injection's crash driver; real code paths release via drop or
    /// [`WriteLease::release_after_write`].
    pub fn crash(self) {
        self.manager
            .poisoned
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(self.object);
        // Drop releases the slot without invalidating: waiters wake
        // and the first of them finds the poison.
    }

    /// Completes a successful write: targeted invalidation of every
    /// registered holder except the owner (which invalidated locally
    /// as part of its write), then release. Returns the number of
    /// members invalidated.
    pub fn release_after_write(self) -> u64 {
        self.manager.invalidate_holders(self.object, self.owner)
        // Drop releases the slot.
    }
}

impl Drop for WriteLease<'_> {
    fn drop(&mut self) {
        self.manager.release_slot(self.object, &self.slot);
    }
}

/// The per-member [`CacheEventSink`] the router installs on join: it
/// forwards the node's object-level occupancy events into the holder
/// registry.
pub(crate) struct MemberCacheSink {
    pub(crate) manager: Arc<WriteLeaseManager>,
    pub(crate) member: u64,
}

impl CacheEventSink for MemberCacheSink {
    fn object_filled(&self, object: ObjectId) {
        self.manager.record_fill(self.member, object);
    }

    fn object_dropped(&self, object: ObjectId) {
        self.manager.record_drop(self.member, object);
    }

    fn object_written(&self, object: ObjectId, _version: u64) {
        // The writer's cache is already invalidated; make sure the
        // registry agrees even if the drop event never fired (nothing
        // was cached locally).
        self.manager.record_drop(self.member, object);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn same_object_leases_serialise_and_count_contention() {
        let manager = Arc::new(WriteLeaseManager::new());
        let object = ObjectId::new(1);
        let lease = manager.acquire(object, 0);
        assert!(!lease.contended());
        assert_eq!(manager.active_leases(), 1);

        let acquired = Arc::new(AtomicBool::new(false));
        let handle = {
            let manager = Arc::clone(&manager);
            let acquired = Arc::clone(&acquired);
            std::thread::spawn(move || {
                let second = manager.acquire(object, 0);
                acquired.store(true, Ordering::SeqCst);
                assert!(second.contended());
            })
        };
        // The second writer must park behind the held lease.
        std::thread::sleep(Duration::from_millis(50));
        assert!(!acquired.load(Ordering::SeqCst), "lease did not serialise");
        drop(lease);
        handle.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
        assert_eq!(manager.active_leases(), 0, "leaked lease slot");
        let stats = manager.stats();
        assert_eq!(stats.lease_grants(), 2);
        assert_eq!(stats.lease_contentions(), 1);
    }

    #[test]
    fn distinct_object_leases_are_independent() {
        let manager = WriteLeaseManager::new();
        let a = manager.acquire(ObjectId::new(1), 0);
        let b = manager.acquire(ObjectId::new(2), 1);
        assert!(!a.contended());
        assert!(!b.contended(), "distinct objects must not contend");
        assert_eq!(manager.active_leases(), 2);
        drop(a);
        drop(b);
        assert_eq!(manager.active_leases(), 0);
        assert_eq!(manager.stats().lease_contentions(), 0);
    }

    #[test]
    fn holder_registry_tracks_fills_and_drops() {
        let manager = WriteLeaseManager::new();
        let object = ObjectId::new(3);
        manager.record_fill(0, object);
        manager.record_fill(2, object);
        assert_eq!(manager.holders_of(object), vec![0, 2]);
        manager.record_drop(0, object);
        assert_eq!(manager.holders_of(object), vec![2]);
        manager.record_drop(2, object);
        assert!(manager.holders_of(object).is_empty());
        // Dropping an unknown holder is a no-op.
        manager.record_drop(9, object);
    }

    #[test]
    fn unregister_purges_the_member_from_every_holder_set() {
        let manager = WriteLeaseManager::new();
        manager.record_fill(1, ObjectId::new(0));
        manager.record_fill(1, ObjectId::new(7));
        manager.record_fill(2, ObjectId::new(7));
        manager.unregister_member(1);
        assert!(manager.holders_of(ObjectId::new(0)).is_empty());
        assert_eq!(manager.holders_of(ObjectId::new(7)), vec![2]);
    }

    #[test]
    fn debug_output() {
        let manager = WriteLeaseManager::default();
        assert!(format!("{manager:?}").contains("WriteLeaseManager"));
    }

    #[test]
    fn crashed_lease_is_fenced_by_the_next_writer() {
        let manager = WriteLeaseManager::new();
        let object = ObjectId::new(5);
        manager.record_fill(3, object);
        let lease = manager.acquire(object, 0);
        assert!(!lease.fenced());
        lease.crash();
        assert_eq!(manager.active_leases(), 0, "crash released the slot");
        assert!(
            !manager.holders_of(object).is_empty(),
            "the crash itself must not invalidate (no release_after_write ran)"
        );
        let next = manager.acquire(object, 1);
        assert!(next.fenced(), "the reclaiming writer fences");
        assert_eq!(manager.fences(), 1);
        assert!(
            manager.holders_of(object).is_empty(),
            "fencing purges every registered holder"
        );
        drop(next);
        // The poison is consumed by the fence, not sticky.
        let third = manager.acquire(object, 2);
        assert!(!third.fenced());
        drop(third);
        assert_eq!(manager.fences(), 1);
        assert_eq!(manager.active_leases(), 0);
    }

    #[test]
    fn crash_poison_reaches_a_parked_waiter() {
        let manager = Arc::new(WriteLeaseManager::new());
        let object = ObjectId::new(8);
        manager.record_fill(4, object);
        let lease = manager.acquire(object, 0);
        let handle = {
            let manager = Arc::clone(&manager);
            std::thread::spawn(move || {
                let waiter = manager.acquire(object, 1);
                assert!(waiter.contended());
                assert!(waiter.fenced(), "the woken waiter must fence the crash");
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        lease.crash();
        handle.join().unwrap();
        assert_eq!(manager.fences(), 1);
        assert!(manager.holders_of(object).is_empty());
        assert_eq!(manager.active_leases(), 0);
    }
}
