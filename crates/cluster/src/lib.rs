//! # agar-cluster — the cluster tier of the Agar reproduction
//!
//! The paper (Halalai et al., ICDCS 2017) evaluates one cache node per
//! region and sketches inter-node collaboration in §VI. This crate is
//! the layer between a single [`AgarNode`](agar::AgarNode) and a
//! deployment: several nodes fronted by one router, with membership,
//! routing and fetch deduplication owned in one place.
//!
//! - [`ClusterRing`] — a deterministic consistent-hash ring (seeded,
//!   virtual nodes) mapping objects and chunks to their owning node;
//!   adding or removing a member re-homes only the moved ring segment.
//! - [`ClusterRouter`] — routes each read to the object's owner,
//!   offers chunks from the next members on the ring walk (the §VI
//!   collaboration, now targeted instead of a linear scan of every
//!   member), falls back to the backend, and keeps writes coherent
//!   across members.
//! - [`WriteLeaseManager`] — the cluster write path: per-object
//!   leases (same-object writes serialise, distinct objects proceed
//!   in parallel, no router lock held across write I/O) and a holder
//!   registry fed by each member's cache events, so a write's
//!   invalidation on lease release touches only the members that
//!   actually hold chunks of the object.
//! - [`FetchCoordinator`] — shared by every member as its
//!   [`ChunkFetcher`](agar::fetcher::ChunkFetcher): concurrent readers
//!   of one chunk share a single in-flight backend fetch
//!   (single-flight), and one reader's same-region chunks travel as
//!   one batched, once-priced round trip.
//!
//! # Examples
//!
//! Route reads over a four-node cluster and watch ownership
//! concentrate:
//!
//! ```
//! use agar::{AgarNode, AgarSettings};
//! use agar_cluster::{ClusterRouter, ClusterSettings};
//! use agar_ec::{CodingParams, ObjectId};
//! use agar_net::presets::{aws_six_regions, FRANKFURT};
//! use agar_store::{populate, Backend, RoundRobin};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let preset = aws_six_regions();
//! let backend = Arc::new(Backend::new(
//!     preset.topology,
//!     Arc::new(preset.latency),
//!     CodingParams::paper_default(),
//!     Box::new(RoundRobin),
//! )?);
//! let mut rng = StdRng::seed_from_u64(0);
//! populate(&backend, 8, 900, &mut rng)?;
//!
//! let router = ClusterRouter::new(Arc::clone(&backend), ClusterSettings::default(), 42)?;
//! for i in 0..4 {
//!     let node = AgarNode::new(
//!         FRANKFURT,
//!         Arc::clone(&backend),
//!         AgarSettings::paper_default(2_700),
//!         i,
//!     )?;
//!     router.add_node(Arc::new(node));
//! }
//! let metrics = router.read(ObjectId::new(3))?;
//! assert_eq!(metrics.metrics().data.len(), 900);
//! // The same object always lands on the same member.
//! assert_eq!(router.read(ObjectId::new(3))?.home, metrics.home);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coordinator;
pub mod lease;
pub mod ring;
pub mod router;

pub use coordinator::FetchCoordinator;
pub use lease::{WriteLease, WriteLeaseManager};
pub use ring::{ClusterRing, DEFAULT_VNODES};
pub use router::{
    ClusterReadMetrics, ClusterRouter, ClusterSettings, ClusterWriteMetrics, MembershipChange,
};
