//! The deterministic consistent-hash ring.
//!
//! A [`ClusterRing`] maps objects (and chunks) to the member node that
//! *owns* them, so a router can send every read of an object to the
//! same node — concentrating that object's popularity in one monitor
//! and its chunks in one cache. Each member contributes `vnodes`
//! points to a 64-bit ring; a key is owned by the first point at or
//! after its hash (wrapping).
//!
//! Two properties the rest of the cluster tier leans on:
//!
//! - **Determinism** — point positions mix only `(seed, node id,
//!   vnode index)` and key hashes mix only the object/chunk id, so the
//!   same seed always produces the same mapping (run-to-run and
//!   machine-to-machine; `HashMap`'s randomly keyed hasher is
//!   deliberately avoided).
//! - **Minimal movement** — adding a member re-homes only the keys the
//!   new member now owns; removing one re-homes only the keys it owned
//!   (the classic consistent-hashing guarantee, asserted by the unit
//!   tests and relied on by [`ClusterRouter`](crate::ClusterRouter)'s
//!   rebalance).

use agar_ec::{ChunkId, ObjectId};

/// Default virtual nodes per member: enough to keep the ownership
/// split within a few percent of uniform for single-digit clusters
/// without bloating the point table.
pub const DEFAULT_VNODES: usize = 64;

/// SplitMix64-style finaliser used for both ring points and keys.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic consistent-hash ring over member node ids.
///
/// # Examples
///
/// ```
/// use agar_cluster::ClusterRing;
/// use agar_ec::ObjectId;
///
/// let mut ring = ClusterRing::new(42, 64);
/// ring.add_node(0);
/// ring.add_node(1);
/// let owner = ring.owner_of_object(ObjectId::new(7)).unwrap();
/// assert!(owner <= 1);
/// // Same seed, same mapping.
/// let mut twin = ClusterRing::new(42, 64);
/// twin.add_node(0);
/// twin.add_node(1);
/// assert_eq!(twin.owner_of_object(ObjectId::new(7)), Some(owner));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterRing {
    seed: u64,
    vnodes: usize,
    nodes: Vec<u64>,
    /// `(position, node id)`, sorted; ties broken by node id so the
    /// ring is identical regardless of insertion order.
    points: Vec<(u64, u64)>,
}

impl ClusterRing {
    /// Creates an empty ring. `vnodes` is clamped to at least one.
    pub fn new(seed: u64, vnodes: usize) -> Self {
        ClusterRing {
            seed,
            vnodes: vnodes.max(1),
            nodes: Vec::new(),
            points: Vec::new(),
        }
    }

    /// The member node ids, in insertion order.
    pub fn nodes(&self) -> &[u64] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    fn point(&self, node: u64, vnode: usize) -> u64 {
        mix64(self.seed ^ mix64(node) ^ mix64(vnode as u64 ^ 0xC1A5_7E12))
    }

    /// Adds a member; returns whether it was new.
    pub fn add_node(&mut self, node: u64) -> bool {
        if self.nodes.contains(&node) {
            return false;
        }
        self.nodes.push(node);
        for vnode in 0..self.vnodes {
            self.points.push((self.point(node, vnode), node));
        }
        self.points.sort_unstable();
        true
    }

    /// Removes a member; returns whether it was present.
    pub fn remove_node(&mut self, node: u64) -> bool {
        let before = self.nodes.len();
        self.nodes.retain(|&n| n != node);
        if self.nodes.len() == before {
            return false;
        }
        self.points.retain(|&(_, n)| n != node);
        true
    }

    /// The member owning a raw 64-bit key; `None` on an empty ring.
    pub fn owner_of(&self, key: u64) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        let hash = mix64(key);
        let at = self.points.partition_point(|&(pos, _)| pos < hash);
        let (_, node) = self.points[at % self.points.len()];
        Some(node)
    }

    /// The member owning an object (reads of the object route here).
    pub fn owner_of_object(&self, object: ObjectId) -> Option<u64> {
        self.owner_of(object.index())
    }

    /// The member owning an individual chunk. Chunks of one object
    /// spread over the ring independently — the hook for
    /// chunk-granular placement policies (whole-object reads route by
    /// [`ClusterRing::owner_of_object`]; nothing else consumes this
    /// yet).
    pub fn owner_of_chunk(&self, chunk: ChunkId) -> Option<u64> {
        self.owner_of(
            chunk
                .object()
                .index()
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(u64::from(chunk.index().value())),
        )
    }

    /// The first `n` *distinct* members encountered walking the ring
    /// from the object's hash: the owner first, then the deterministic
    /// fallback order a router probes on owner misses.
    pub fn preference_of_object(&self, object: ObjectId, n: usize) -> Vec<u64> {
        let mut order = Vec::with_capacity(n.min(self.nodes.len()));
        if self.points.is_empty() || n == 0 {
            return order;
        }
        let hash = mix64(object.index());
        let start = self.points.partition_point(|&(pos, _)| pos < hash);
        for offset in 0..self.points.len() {
            let (_, node) = self.points[(start + offset) % self.points.len()];
            if !order.contains(&node) {
                order.push(node);
                if order.len() == n || order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ring_of(seed: u64, nodes: &[u64]) -> ClusterRing {
        let mut ring = ClusterRing::new(seed, DEFAULT_VNODES);
        for &node in nodes {
            ring.add_node(node);
        }
        ring
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = ClusterRing::new(0, 8);
        assert!(ring.is_empty());
        assert_eq!(ring.owner_of_object(ObjectId::new(0)), None);
        assert!(ring.preference_of_object(ObjectId::new(0), 3).is_empty());
    }

    #[test]
    fn same_seed_same_mapping_regardless_of_insertion_order() {
        let a = ring_of(7, &[0, 1, 2, 3]);
        let b = ring_of(7, &[3, 1, 0, 2]);
        for i in 0..500u64 {
            let object = ObjectId::new(i);
            assert_eq!(a.owner_of_object(object), b.owner_of_object(object));
            assert_eq!(
                a.preference_of_object(object, 4),
                b.preference_of_object(object, 4)
            );
        }
        // A different seed shuffles the mapping.
        let c = ring_of(8, &[0, 1, 2, 3]);
        assert!((0..500u64).any(|i| {
            a.owner_of_object(ObjectId::new(i)) != c.owner_of_object(ObjectId::new(i))
        }));
    }

    #[test]
    fn ownership_is_reasonably_balanced() {
        let ring = ring_of(1, &[0, 1, 2, 3]);
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        let keys = 4_000u64;
        for i in 0..keys {
            *counts
                .entry(ring.owner_of_object(ObjectId::new(i)).unwrap())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 4, "every node owns something");
        let expected = keys as usize / 4;
        for (&node, &count) in &counts {
            assert!(
                count > expected / 3 && count < expected * 3,
                "node {node} owns {count} of {keys} (expected ~{expected})"
            );
        }
    }

    #[test]
    fn adding_a_node_moves_only_keys_it_now_owns() {
        let before = ring_of(3, &[0, 1, 2]);
        let mut after = before.clone();
        assert!(after.add_node(3));
        assert!(!after.add_node(3), "duplicate add is a no-op");
        let mut moved = 0;
        for i in 0..2_000u64 {
            let object = ObjectId::new(i);
            let old = before.owner_of_object(object).unwrap();
            let new = after.owner_of_object(object).unwrap();
            if old != new {
                assert_eq!(new, 3, "a moved key must move TO the new node");
                moved += 1;
            }
        }
        // Roughly a quarter of the key space re-homes, never all of it.
        assert!(moved > 0 && moved < 1_000, "moved {moved} of 2000");
    }

    #[test]
    fn removing_a_node_moves_only_keys_it_owned() {
        let before = ring_of(9, &[10, 20, 30, 40]);
        let mut after = before.clone();
        assert!(after.remove_node(20));
        assert!(!after.remove_node(20), "double remove is a no-op");
        for i in 0..2_000u64 {
            let object = ObjectId::new(i);
            let old = before.owner_of_object(object).unwrap();
            let new = after.owner_of_object(object).unwrap();
            if old != 20 {
                assert_eq!(old, new, "keys not owned by the removed node stay put");
            } else {
                assert_ne!(new, 20);
            }
        }
    }

    #[test]
    fn preference_walk_starts_at_the_owner_and_is_distinct() {
        let ring = ring_of(5, &[0, 1, 2, 3, 4]);
        for i in 0..200u64 {
            let object = ObjectId::new(i);
            let prefs = ring.preference_of_object(object, 5);
            assert_eq!(prefs.len(), 5);
            assert_eq!(prefs[0], ring.owner_of_object(object).unwrap());
            let mut sorted = prefs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "preference list has duplicates");
        }
        // Truncated walks are prefixes of the full walk.
        let object = ObjectId::new(17);
        let full = ring.preference_of_object(object, 5);
        assert_eq!(ring.preference_of_object(object, 2), full[..2].to_vec());
    }

    #[test]
    fn chunk_ownership_spreads_within_an_object() {
        let ring = ring_of(2, &[0, 1, 2, 3]);
        let object = ObjectId::new(1);
        let owners: std::collections::BTreeSet<u64> = (0..12u8)
            .map(|i| ring.owner_of_chunk(ChunkId::new(object, i)).unwrap())
            .collect();
        assert!(owners.len() > 1, "chunks of one object all co-located");
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = ring_of(0, &[99]);
        for i in 0..50u64 {
            assert_eq!(ring.owner_of_object(ObjectId::new(i)), Some(99));
        }
        assert_eq!(ring.preference_of_object(ObjectId::new(0), 4), vec![99]);
    }
}
