//! The cluster router: N Agar nodes behind one read/write front door.
//!
//! A [`ClusterRouter`] owns the ring, the membership list and the
//! shared [`FetchCoordinator`]. Reads route to the object's ring owner
//! (so each object's popularity concentrates in one node's monitor and
//! its chunks in one node's cache); chunks the owner does not hold are
//! offered from the next members on the ring walk — the deterministic
//! *preference list* — as [`RemoteChunk`]s before falling back to the
//! backend. The planner prices every offer against the live backend
//! estimates, so a far sibling's cache never beats a near region.
//! Disk-resident chunks stay in the auction on both sides: the home's
//! own disk tier is priced at its disk-read latency by the planner,
//! and a sibling's disk chunks are offered with the owner's disk
//! penalty added to the discounted WAN hop.
//!
//! This subsumes the paper's §VI collaboration sketch: the old
//! `CollaborativeGroup` scanned every member linearly on each lookup;
//! the ring walk probes a bounded, deterministic subset
//! ([`ClusterSettings::sibling_probes`]) and degenerates to a full —
//! but deterministically ordered — scan when the probe budget covers
//! the whole membership.

use crate::coordinator::FetchCoordinator;
use crate::lease::{MemberCacheSink, WriteLeaseManager};
use crate::ring::ClusterRing;
use agar::planner::RemoteChunk;
use agar::{AgarError, AgarNode, DirectFetcher, ReadMetrics};
use agar_cache::{CacheStats, CacheTier};
use agar_ec::{ChunkId, ObjectId};
use agar_net::SimTime;
use agar_obs::{Counter, Labels, MetricsRegistry};
use agar_store::Backend;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables of a [`ClusterRouter`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterSettings {
    /// Virtual nodes per member on the consistent-hash ring.
    pub vnodes: usize,
    /// How many members beyond the home node the read path consults
    /// for cached chunks (the ring-walk probe budget). `0` disables
    /// sibling lookups; `usize::MAX` probes every member.
    pub sibling_probes: usize,
    /// Fraction of the WAN latency a sibling *cache* read costs
    /// (caches skip the storage-service overhead; the §VI sketch's
    /// discount).
    pub remote_cache_discount: f64,
}

impl Default for ClusterSettings {
    fn default() -> Self {
        ClusterSettings {
            vnodes: crate::ring::DEFAULT_VNODES,
            sibling_probes: 2,
            remote_cache_discount: 0.5,
        }
    }
}

impl ClusterSettings {
    fn validate(&self) -> Result<(), AgarError> {
        if !(self.remote_cache_discount > 0.0 && self.remote_cache_discount <= 1.0) {
            return Err(AgarError::InvalidSetting {
                what: "remote cache discount must be in (0, 1]",
            });
        }
        if self.vnodes == 0 {
            return Err(AgarError::InvalidSetting {
                what: "virtual node count must be positive",
            });
        }
        Ok(())
    }
}

/// Metrics of one routed read.
#[derive(Clone, Debug)]
pub struct ClusterReadMetrics {
    metrics: ReadMetrics,
    /// Chunks served from a sibling member's cache.
    pub remote_hits: usize,
    /// The member that served the read (the ring owner for routed
    /// reads; the caller's choice for [`ClusterRouter::read_from`]).
    pub home: u64,
}

impl ClusterReadMetrics {
    /// The underlying read metrics.
    pub fn into_inner(self) -> ReadMetrics {
        self.metrics
    }

    /// Borrow the underlying read metrics.
    pub fn metrics(&self) -> &ReadMetrics {
        &self.metrics
    }
}

/// Metrics of one routed write (the per-object-lease write path).
#[derive(Clone, Copy, Debug)]
pub struct ClusterWriteMetrics {
    /// The object version the write created.
    pub version: u64,
    /// Simulated write latency (invalidation is off the latency path).
    pub latency: Duration,
    /// The ring owner that performed the write.
    pub home: u64,
    /// Members invalidated on lease release — only those whose caches
    /// actually held chunks of the object (the writer invalidates
    /// locally as part of its write and is not counted).
    pub invalidations: u64,
    /// Whether this write had to wait behind another writer's lease on
    /// the same object.
    pub lease_contended: bool,
}

/// Outcome of a membership change: which member changed and exactly
/// which objects re-homed (the moved ring segment — nothing else).
#[derive(Clone, Debug)]
pub struct MembershipChange {
    /// The added/removed member's id.
    pub node: u64,
    /// Objects whose ring owner changed, sorted. On add they all moved
    /// *to* the new member; on remove they all moved *off* it.
    pub moved_objects: Vec<ObjectId>,
}

struct Member {
    id: u64,
    node: Arc<AgarNode>,
}

struct RouterState {
    ring: ClusterRing,
    members: Vec<Member>,
}

impl RouterState {
    fn member(&self, id: u64) -> Option<&Arc<AgarNode>> {
        self.members
            .iter()
            .find(|member| member.id == id)
            .map(|member| &member.node)
    }
}

/// Consistent-hash front door over N [`AgarNode`]s (see module docs).
///
/// Thread-safe behind `&self`: reads take the membership snapshot
/// under a short read lock and run lock-free afterwards; membership
/// changes serialise on the write lock.
pub struct ClusterRouter {
    backend: Arc<Backend>,
    coordinator: Arc<FetchCoordinator>,
    leases: Arc<WriteLeaseManager>,
    state: RwLock<RouterState>,
    settings: ClusterSettings,
    seed: u64,
    ops: AtomicU64,
    next_id: AtomicU64,
    remote_hits: Counter,
    routed_reads: Counter,
}

impl ClusterRouter {
    /// Creates an empty router over `backend`. Members join via
    /// [`ClusterRouter::add_node`]; each gets the shared
    /// [`FetchCoordinator`] installed as its chunk fetcher.
    ///
    /// # Errors
    ///
    /// Returns [`AgarError::InvalidSetting`] for an out-of-range
    /// remote-cache discount or a zero virtual-node count.
    pub fn new(
        backend: Arc<Backend>,
        settings: ClusterSettings,
        seed: u64,
    ) -> Result<Self, AgarError> {
        let coordinator = Arc::new(FetchCoordinator::new(Arc::clone(&backend)));
        ClusterRouter::with_coordinator(backend, coordinator, settings, seed)
    }

    /// Creates a router with a pre-built coordinator (used by tests
    /// and benches to configure the wall-delay knob).
    ///
    /// # Errors
    ///
    /// Same as [`ClusterRouter::new`].
    pub fn with_coordinator(
        backend: Arc<Backend>,
        coordinator: Arc<FetchCoordinator>,
        settings: ClusterSettings,
        seed: u64,
    ) -> Result<Self, AgarError> {
        settings.validate()?;
        Ok(ClusterRouter {
            backend,
            coordinator,
            leases: Arc::new(WriteLeaseManager::new()),
            state: RwLock::new(RouterState {
                ring: ClusterRing::new(seed, settings.vnodes),
                members: Vec::new(),
            }),
            settings,
            seed,
            ops: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            remote_hits: Counter::new(),
            routed_reads: Counter::new(),
        })
    }

    /// The shared fetch coordinator (single-flight / batching counters
    /// live here).
    pub fn coordinator(&self) -> &Arc<FetchCoordinator> {
        &self.coordinator
    }

    /// The write-path coordinator: per-object leases and the holder
    /// registry backing targeted invalidation.
    pub fn lease_manager(&self) -> &Arc<WriteLeaseManager> {
        &self.leases
    }

    /// Member ids in join order.
    pub fn member_ids(&self) -> Vec<u64> {
        self.state.read().ring.nodes().to_vec()
    }

    /// The member node registered under `id`.
    pub fn member(&self, id: u64) -> Option<Arc<AgarNode>> {
        self.state.read().member(id).cloned()
    }

    /// Chunk lookups served from a sibling member's cache.
    pub fn remote_hits(&self) -> u64 {
        self.remote_hits.get()
    }

    /// Reads routed through [`ClusterRouter::read`].
    pub fn routed_reads(&self) -> u64 {
        self.routed_reads.get()
    }

    /// A snapshot of the current ring (diagnostics and tests).
    pub fn ring(&self) -> ClusterRing {
        self.state.read().ring.clone()
    }

    fn derive_rng(&self) -> StdRng {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        StdRng::seed_from_u64(
            self.seed
                ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x243F_6A88_85A3_08D3),
        )
    }

    /// Objects whose owner differs between two rings (sorted; the
    /// backend's catalogue is the key universe).
    fn moved_objects(&self, before: &ClusterRing, after: &ClusterRing) -> Vec<ObjectId> {
        self.backend
            .object_ids()
            .into_iter()
            .filter(|&object| before.owner_of_object(object) != after.owner_of_object(object))
            .collect()
    }

    /// Adds a member, re-homing only the ring segment it takes over:
    /// each moved object is dropped from its previous owner's cache
    /// (the new owner re-caches it through its own knapsack epochs) —
    /// untouched segments keep their cache contents. The shared fetch
    /// coordinator is installed as the node's chunk fetcher, and the
    /// node's cache-event hook is wired into the write path's holder
    /// registry (anything already cached is seeded as held).
    pub fn add_node(&self, node: Arc<AgarNode>) -> MembershipChange {
        node.set_chunk_fetcher(Arc::clone(&self.coordinator) as _);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        node.set_cache_event_sink(Some(Arc::new(MemberCacheSink {
            manager: Arc::clone(&self.leases),
            member: id,
        })));
        self.leases.register_member(id, Arc::clone(&node));
        let mut state = self.state.write();
        let before = state.ring.clone();
        state.ring.add_node(id);
        state.members.push(Member { id, node });
        let moved = self.moved_objects(&before, &state.ring);
        for &object in &moved {
            if let Some(old_owner) = before.owner_of_object(object) {
                if let Some(previous) = state.member(old_owner) {
                    previous.invalidate_object(object);
                }
            }
        }
        MembershipChange {
            node: id,
            moved_objects: moved,
        }
    }

    /// Removes a member. Only the segment it owned re-homes (onto the
    /// surviving members); every other object keeps its owner and its
    /// cache. The departing node is detached from the cluster
    /// machinery: the shared fetch coordinator is replaced by a
    /// default [`DirectFetcher`] (so it no longer fetches through —
    /// or parks readers on — the cluster's in-flight table), the
    /// cache-event hook is uninstalled, and its cached chunks of the
    /// re-homed objects are dropped (a later re-join must not resurrect
    /// the old segment's contents). Returns `None` for an unknown id.
    pub fn remove_node(&self, id: u64) -> Option<MembershipChange> {
        let (departing, moved) = {
            let mut state = self.state.write();
            let before = state.ring.clone();
            if !state.ring.remove_node(id) {
                return None;
            }
            let departing = state.member(id).cloned();
            state.members.retain(|member| member.id != id);
            (departing, self.moved_objects(&before, &state.ring))
        };
        // Detach outside the state lock: none of this needs the ring,
        // and membership readers should not wait on cache sweeps.
        if let Some(node) = departing {
            node.set_cache_event_sink(None);
            node.set_chunk_fetcher(Arc::new(DirectFetcher::new(Arc::clone(&self.backend))));
            for &object in &moved {
                node.invalidate_object(object);
            }
        }
        self.leases.unregister_member(id);
        Some(MembershipChange {
            node: id,
            moved_objects: moved,
        })
    }

    /// Removes a member *as a crash*: the ring and holder registry are
    /// cleaned up exactly like [`ClusterRouter::remove_node`], but the
    /// departed node gets no graceful cache sweep — its RAM and disk
    /// keep whatever chunks they held at the instant of the crash, the
    /// way a real process death would leave them. A lease the crashed
    /// member held is *not* released here; the write path's poison set
    /// handles that (see `WriteLease::crash`), and the next writer
    /// fences it. Returns `None` for an unknown id.
    pub fn crash_node(&self, id: u64) -> Option<MembershipChange> {
        let (departing, moved) = {
            let mut state = self.state.write();
            let before = state.ring.clone();
            if !state.ring.remove_node(id) {
                return None;
            }
            let departing = state.member(id).cloned();
            state.members.retain(|member| member.id != id);
            (departing, self.moved_objects(&before, &state.ring))
        };
        if let Some(node) = departing {
            node.set_cache_event_sink(None);
            node.set_chunk_fetcher(Arc::new(DirectFetcher::new(Arc::clone(&self.backend))));
        }
        self.leases.unregister_member(id);
        Some(MembershipChange {
            node: id,
            moved_objects: moved,
        })
    }

    /// Reads an object through its ring owner (see the module docs).
    ///
    /// # Errors
    ///
    /// [`AgarError::InvalidSetting`] on an empty cluster; otherwise
    /// the owner node's read errors.
    pub fn read(&self, object: ObjectId) -> Result<ClusterReadMetrics, AgarError> {
        self.routed_reads.inc();
        let (home_id, home, probes) = {
            let state = self.state.read();
            let prefs = state.ring.preference_of_object(
                object,
                1 + self.settings.sibling_probes.min(state.members.len()),
            );
            let Some((&home_id, sibling_ids)) = prefs.split_first() else {
                return Err(AgarError::InvalidSetting {
                    what: "cluster router has no member nodes",
                });
            };
            let home = state
                .member(home_id)
                .expect("ring and members agree")
                .clone();
            let probes: Vec<Arc<AgarNode>> = sibling_ids
                .iter()
                .filter_map(|&id| state.member(id).cloned())
                .collect();
            (home_id, home, probes)
        };
        self.read_at(home_id, &home, &probes, object)
    }

    /// Reads an object from an explicit member (the §VI collaboration
    /// pattern: the client sits next to `home_id`, whatever the ring
    /// says), consulting up to `sibling_probes` other members in ring
    /// preference order for cached chunks.
    ///
    /// # Errors
    ///
    /// [`AgarError::InvalidSetting`] for an unknown member id;
    /// otherwise the home node's read errors.
    pub fn read_from(
        &self,
        home_id: u64,
        object: ObjectId,
    ) -> Result<ClusterReadMetrics, AgarError> {
        let (home, probes) = {
            let state = self.state.read();
            let Some(home) = state.member(home_id).cloned() else {
                return Err(AgarError::InvalidSetting {
                    what: "unknown cluster member id",
                });
            };
            let prefs = state.ring.preference_of_object(object, state.members.len());
            let probes: Vec<Arc<AgarNode>> = prefs
                .iter()
                .filter(|&&id| id != home_id)
                .take(self.settings.sibling_probes)
                .filter_map(|&id| state.member(id).cloned())
                .collect();
            (home, probes)
        };
        self.read_at(home_id, &home, &probes, object)
    }

    /// The shared read body: collect sibling offers for chunks the
    /// home cache lacks, then let the home node plan and execute
    /// (single-flight + batching apply inside via the coordinator).
    fn read_at(
        &self,
        home_id: u64,
        home: &Arc<AgarNode>,
        probes: &[Arc<AgarNode>],
        object: ObjectId,
    ) -> Result<ClusterReadMetrics, AgarError> {
        let manifest = self.backend.manifest(object)?;
        let version = manifest.version();
        let total = manifest.params().total_chunks();
        let model = self.backend.latency_model();
        let mut rng = self.derive_rng();
        let mut remote: Vec<RemoteChunk> = Vec::new();
        for index in 0..total as u8 {
            let chunk = ChunkId::new(object, index);
            // A home RAM hit is free; a home *disk* hit is only a
            // candidate (priced at `disk_read` by the planner), so
            // sibling offers still compete for it — a nearby sibling's
            // RAM can beat the local disk.
            if matches!(
                home.peek_chunk_tier(&chunk, version),
                Some((_, CacheTier::Ram))
            ) {
                continue;
            }
            // Offer every probed holder; the planner keeps the
            // cheapest per chunk and discards offers dearer than the
            // backend estimate. Disk-resident sibling chunks pay the
            // owner's disk-read penalty on top of the WAN hop.
            for sibling in probes {
                let Some((data, tier)) = sibling.peek_chunk_tier(&chunk, version) else {
                    continue;
                };
                let wan = model.sample(home.region(), sibling.region(), data.len(), &mut rng);
                let mut latency = wan.mul_f64(self.settings.remote_cache_discount);
                if tier == CacheTier::Disk {
                    latency += sibling.settings().disk_read;
                }
                remote.push(RemoteChunk {
                    index,
                    data,
                    latency,
                    version,
                });
            }
        }
        let metrics = home.read_with_remote_chunks(object, &remote)?;
        if metrics.remote_hits > 0 {
            self.remote_hits.add(metrics.remote_hits as u64);
        }
        let remote_hits = metrics.remote_hits;
        Ok(ClusterReadMetrics {
            metrics: metrics.into_inner(),
            remote_hits,
            home: home_id,
        })
    }

    /// Writes an object through its ring owner under the object's
    /// write lease, then invalidates — targetedly — only the members
    /// whose caches hold chunks of it (write coherence across the
    /// cluster; see [`WriteLeaseManager`]).
    ///
    /// The router's state lock is held only to resolve the owner:
    /// neither the backend round trip nor the invalidations run under
    /// it, so writes to distinct objects proceed in parallel and
    /// membership changes never stall behind write I/O. Same-object
    /// writes serialise on the lease.
    ///
    /// # Errors
    ///
    /// [`AgarError::InvalidSetting`] on an empty cluster; otherwise
    /// backend write failures (the lease is released either way — a
    /// failed write never invalidates and never leaks the lease).
    pub fn write(&self, object: ObjectId, data: &[u8]) -> Result<ClusterWriteMetrics, AgarError> {
        let (owner_id, owner) = {
            let state = self.state.read();
            let Some(owner_id) = state.ring.owner_of_object(object) else {
                return Err(AgarError::InvalidSetting {
                    what: "cluster router has no member nodes",
                });
            };
            let owner = state
                .member(owner_id)
                .expect("ring and members agree")
                .clone();
            (owner_id, owner)
        };
        let lease = self.leases.acquire(object, owner_id);
        let lease_contended = lease.contended();
        let (version, latency) = owner.write(object, data)?;
        let invalidations = lease.release_after_write();
        Ok(ClusterWriteMetrics {
            version,
            latency,
            home: owner_id,
            invalidations,
            lease_contended,
        })
    }

    /// Ticks every member's reconfiguration clock; returns how many
    /// members reconfigured.
    pub fn maybe_reconfigure_all(&self, now: SimTime) -> usize {
        use agar::CachingClient;
        let members: Vec<Arc<AgarNode>> = {
            let state = self.state.read();
            state.members.iter().map(|m| Arc::clone(&m.node)).collect()
        };
        members
            .iter()
            .filter(|node| node.maybe_reconfigure(now))
            .count()
    }

    /// Immediately reconfigures every member.
    pub fn force_reconfigure_all(&self) {
        let members: Vec<Arc<AgarNode>> = {
            let state = self.state.read();
            state.members.iter().map(|m| Arc::clone(&m.node)).collect()
        };
        for node in members {
            node.force_reconfigure();
        }
    }

    /// Aggregated cache statistics: every member's counters plus the
    /// coordinator's `coalesced_fetches` / `batched_requests` and the
    /// lease manager's `lease_grants` / `lease_contentions` /
    /// `targeted_invalidations`.
    pub fn cache_stats(&self) -> CacheStats {
        use agar::CachingClient;
        let mut merged = CacheStats::new();
        {
            let state = self.state.read();
            for member in &state.members {
                merged.merge(&member.node.cache_stats());
            }
        }
        merged.merge(&self.coordinator.stats());
        merged.merge(&self.leases.stats());
        merged
    }

    /// Late-binds the whole cluster's telemetry into `registry`:
    /// router-level routing counters, the shared coordinator and lease
    /// manager, and every member node (labelled by member id on top of
    /// the caller's base labels).
    pub fn register_metrics(&self, registry: &MetricsRegistry, base: &Labels) {
        registry.register_counter(
            "agar_cluster_routed_reads_total",
            "Reads routed through the cluster router.",
            base.clone(),
            &self.routed_reads,
        );
        registry.register_counter(
            "agar_cluster_remote_hits_total",
            "Chunk lookups served from a sibling member's cache.",
            base.clone(),
            &self.remote_hits,
        );
        self.coordinator.register_metrics(registry, base);
        self.leases.register_metrics(registry, base);
        let state = self.state.read();
        for member in &state.members {
            let labels = base.clone().with("member", member.id.to_string());
            member.node.register_metrics(registry, &labels);
        }
    }
}

impl std::fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.read();
        f.debug_struct("ClusterRouter")
            .field("members", &state.members.len())
            .field("routed_reads", &self.routed_reads())
            .field("remote_hits", &self.remote_hits())
            .field("coordinator", &self.coordinator)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar::{AgarSettings, CachingClient};
    use agar_ec::CodingParams;
    use agar_net::presets::{aws_six_regions, DUBLIN, FRANKFURT};
    use agar_store::{expected_payload, populate, RoundRobin};

    const SIZE: usize = 900;

    fn backend(objects: u64) -> Arc<Backend> {
        let preset = aws_six_regions();
        let backend = Backend::new(
            preset.topology,
            Arc::new(preset.latency),
            CodingParams::paper_default(),
            Box::new(RoundRobin),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        populate(&backend, objects, SIZE, &mut rng).unwrap();
        Arc::new(backend)
    }

    fn node(backend: &Arc<Backend>, region: agar_net::RegionId, seed: u64) -> Arc<AgarNode> {
        Arc::new(
            AgarNode::new(
                region,
                Arc::clone(backend),
                AgarSettings::paper_default(3 * SIZE),
                seed,
            )
            .unwrap(),
        )
    }

    fn tiered_node(
        backend: &Arc<Backend>,
        region: agar_net::RegionId,
        seed: u64,
        ram_bytes: usize,
        disk_bytes: usize,
    ) -> Arc<AgarNode> {
        let mut settings = AgarSettings::paper_default(ram_bytes);
        settings.disk_capacity_bytes = disk_bytes;
        settings.disk_read = Duration::from_millis(45);
        settings.disk_write = Duration::from_millis(60);
        Arc::new(AgarNode::new(region, Arc::clone(backend), settings, seed).unwrap())
    }

    fn frankfurt_cluster(objects: u64, members: usize) -> (Arc<Backend>, ClusterRouter) {
        let backend = backend(objects);
        let router =
            ClusterRouter::new(Arc::clone(&backend), ClusterSettings::default(), 5).unwrap();
        for i in 0..members {
            router.add_node(node(&backend, FRANKFURT, i as u64));
        }
        (backend, router)
    }

    #[test]
    fn settings_are_validated() {
        let backend = backend(1);
        let settings = ClusterSettings {
            remote_cache_discount: 0.0,
            ..ClusterSettings::default()
        };
        assert!(matches!(
            ClusterRouter::new(Arc::clone(&backend), settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
        let settings = ClusterSettings {
            vnodes: 0,
            ..ClusterSettings::default()
        };
        assert!(matches!(
            ClusterRouter::new(backend, settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
    }

    #[test]
    fn empty_cluster_rejects_reads_and_writes() {
        let backend = backend(1);
        let router = ClusterRouter::new(backend, ClusterSettings::default(), 0).unwrap();
        assert!(matches!(
            router.read(ObjectId::new(0)),
            Err(AgarError::InvalidSetting { .. })
        ));
        assert!(matches!(
            router.write(ObjectId::new(0), &[1; 8]),
            Err(AgarError::InvalidSetting { .. })
        ));
        assert!(matches!(
            router.read_from(7, ObjectId::new(0)),
            Err(AgarError::InvalidSetting { .. })
        ));
    }

    #[test]
    fn reads_route_to_a_stable_owner_and_return_correct_bytes() {
        let (_, router) = frankfurt_cluster(8, 4);
        for i in 0..8u64 {
            let object = ObjectId::new(i);
            let first = router.read(object).unwrap();
            assert_eq!(
                first.metrics().data.as_ref(),
                expected_payload(i, SIZE).as_slice()
            );
            for _ in 0..3 {
                assert_eq!(router.read(object).unwrap().home, first.home);
            }
        }
        // Four members, eight objects: ownership actually spreads.
        let homes: std::collections::BTreeSet<u64> = (0..8u64)
            .map(|i| router.read(ObjectId::new(i)).unwrap().home)
            .collect();
        assert!(homes.len() > 1, "all objects landed on one member");
        assert_eq!(router.routed_reads(), 8 * 5);
    }

    #[test]
    fn sibling_caches_serve_ring_walk_offers() {
        // Two members; warm the object on a NON-owner member, then
        // route a read from the other: the ring walk must find the
        // warm sibling's chunks (priced under the cross-region
        // discount) and record remote hits.
        let backend = backend(4);
        let settings = ClusterSettings {
            sibling_probes: 5,
            ..ClusterSettings::default()
        };
        let router = ClusterRouter::new(Arc::clone(&backend), settings, 5).unwrap();
        let frankfurt = node(&backend, FRANKFURT, 0);
        let dublin = node(&backend, DUBLIN, 1);
        let frankfurt_id = router.add_node(Arc::clone(&frankfurt)).node;
        let dublin_id = router.add_node(Arc::clone(&dublin)).node;
        let object = ObjectId::new(0);
        // Warm Dublin directly (node-level reads, off the router).
        for _ in 0..30 {
            dublin.read(object).unwrap();
        }
        dublin.force_reconfigure();
        dublin.read(object).unwrap();
        assert!(!dublin.cache_contents().is_empty());

        let solo = frankfurt.read(object).unwrap();
        let collab = router.read_from(frankfurt_id, object).unwrap();
        assert_eq!(collab.home, frankfurt_id);
        assert_eq!(collab.metrics().data.as_ref(), solo.data.as_ref());
        assert!(
            collab.metrics().latency <= solo.latency,
            "sibling offers must not slow the read: {:?} vs {:?}",
            collab.metrics().latency,
            solo.latency
        );
        assert!(router.remote_hits() > 0, "no sibling hits recorded");
        let _ = dublin_id;
    }

    #[test]
    fn disk_resident_sibling_chunks_join_the_ring_walk() {
        // Dublin's RAM holds a sliver of the catalogue and its disk
        // tier the rest; the ring walk must still surface the
        // disk-resident chunks (with the disk penalty priced into the
        // offer) and the read must stay correct and no slower.
        let backend = backend(4);
        let settings = ClusterSettings {
            sibling_probes: 5,
            ..ClusterSettings::default()
        };
        let router = ClusterRouter::new(Arc::clone(&backend), settings, 5).unwrap();
        let frankfurt = node(&backend, FRANKFURT, 0);
        let dublin = tiered_node(&backend, DUBLIN, 1, SIZE, 16 * SIZE);
        let frankfurt_id = router.add_node(Arc::clone(&frankfurt)).node;
        router.add_node(Arc::clone(&dublin));
        // Warm the whole catalogue on Dublin so its knapsack spills
        // beyond the one-object RAM budget onto disk.
        for i in 0..4u64 {
            for _ in 0..30 {
                dublin.read(ObjectId::new(i)).unwrap();
            }
        }
        dublin.force_reconfigure();
        for i in 0..4u64 {
            dublin.read(ObjectId::new(i)).unwrap();
            dublin.read(ObjectId::new(i)).unwrap();
        }
        let dublin_stats = dublin.cache_stats();
        assert!(
            dublin_stats.disk_hits() > 0,
            "warm-up never touched Dublin's disk tier"
        );

        let object = ObjectId::new(0);
        let solo = frankfurt.read(object).unwrap();
        let collab = router.read_from(frankfurt_id, object).unwrap();
        assert_eq!(collab.home, frankfurt_id);
        assert_eq!(collab.metrics().data.as_ref(), solo.data.as_ref());
        assert!(
            collab.metrics().latency <= solo.latency,
            "disk-tier offers must not slow the read: {:?} vs {:?}",
            collab.metrics().latency,
            solo.latency
        );
        assert!(router.remote_hits() > 0, "no sibling hits recorded");
    }

    #[test]
    fn writes_route_to_the_owner_and_invalidate_siblings() {
        let (_, router) = frankfurt_cluster(2, 3);
        let object = ObjectId::new(0);
        // Warm the owner so there is something to invalidate.
        for _ in 0..30 {
            router.read(object).unwrap();
        }
        router.force_reconfigure_all();
        router.read(object).unwrap();

        let payload = vec![0xABu8; SIZE];
        let metrics = router.write(object, &payload).unwrap();
        assert_eq!(metrics.version, 2);
        assert!(!metrics.lease_contended, "single writer cannot contend");
        // Routed warm-up only filled the ring owner's cache, and the
        // owner invalidates locally: targeted invalidation touches no
        // sibling (the old broadcast would have hit members-1 = 2).
        assert_eq!(metrics.invalidations, 0);
        // Every member now returns the new payload (no stale cache).
        for id in router.member_ids() {
            let read = router.read_from(id, object).unwrap();
            assert_eq!(read.metrics().data.as_ref(), payload.as_slice());
        }
    }

    #[test]
    fn writes_invalidate_exactly_the_holders() {
        let backend = backend(2);
        let settings = ClusterSettings {
            sibling_probes: 5,
            ..ClusterSettings::default()
        };
        let router = ClusterRouter::new(Arc::clone(&backend), settings, 5).unwrap();
        for i in 0..4 {
            router.add_node(node(&backend, FRANKFURT, i));
        }
        let object = ObjectId::new(0);
        let owner_id = router.ring().owner_of_object(object).unwrap();
        let sibling_id = router
            .member_ids()
            .into_iter()
            .find(|&id| id != owner_id)
            .unwrap();
        // Warm the object on its owner AND one explicit non-owner.
        for _ in 0..30 {
            router.read(object).unwrap();
            router.read_from(sibling_id, object).unwrap();
        }
        router.force_reconfigure_all();
        router.read(object).unwrap();
        router.read_from(sibling_id, object).unwrap();
        assert_eq!(
            router.lease_manager().holders_of(object),
            {
                let mut expected = vec![owner_id, sibling_id];
                expected.sort_unstable();
                expected
            },
            "holder registry must track exactly the warm members"
        );

        let metrics = router.write(object, &[0x5A; SIZE]).unwrap();
        assert_eq!(metrics.home, owner_id);
        // Exactly the one non-owner holder was invalidated; the two
        // members that never cached the object were left alone.
        assert_eq!(metrics.invalidations, 1);
        assert!(router.lease_manager().holders_of(object).is_empty());
        // A second write finds no holders at all.
        let metrics = router.write(object, &[0x5B; SIZE]).unwrap();
        assert_eq!(metrics.invalidations, 0);
        let stats = router.cache_stats();
        assert_eq!(stats.lease_grants(), 2);
        assert_eq!(stats.targeted_invalidations(), 1);
    }

    #[test]
    fn membership_changes_move_only_the_rehomed_segment() {
        let backend = backend(24);
        let router =
            ClusterRouter::new(Arc::clone(&backend), ClusterSettings::default(), 5).unwrap();
        for i in 0..3 {
            router.add_node(node(&backend, FRANKFURT, i));
        }
        let before = router.ring();
        let owner_before: Vec<(ObjectId, u64)> = (0..24u64)
            .map(|i| {
                let object = ObjectId::new(i);
                (object, before.owner_of_object(object).unwrap())
            })
            .collect();

        // Add a member: every moved object is now owned by it; every
        // other object keeps its owner.
        let change = router.add_node(node(&backend, FRANKFURT, 9));
        let after = router.ring();
        assert!(!change.moved_objects.is_empty(), "nothing re-homed");
        for (object, old_owner) in &owner_before {
            let new_owner = after.owner_of_object(*object).unwrap();
            if change.moved_objects.contains(object) {
                assert_eq!(new_owner, change.node);
            } else {
                assert_eq!(new_owner, *old_owner, "untouched segment moved");
            }
        }

        // Remove it again: exactly its segment re-homes, back onto the
        // survivors, and reads stay correct throughout.
        let removal = router.remove_node(change.node).unwrap();
        for object in &removal.moved_objects {
            assert_eq!(after.owner_of_object(*object), Some(change.node));
        }
        assert!(router.remove_node(change.node).is_none(), "double remove");
        for i in 0..24u64 {
            let metrics = router.read(ObjectId::new(i)).unwrap();
            assert_eq!(
                metrics.metrics().data.as_ref(),
                expected_payload(i, SIZE).as_slice()
            );
        }
    }

    #[test]
    fn maybe_reconfigure_ticks_every_member() {
        let (_, router) = frankfurt_cluster(2, 2);
        router.read(ObjectId::new(0)).unwrap();
        assert_eq!(router.maybe_reconfigure_all(SimTime::from_secs(0)), 0);
        assert_eq!(router.maybe_reconfigure_all(SimTime::from_secs(31)), 2);
    }

    #[test]
    fn stats_merge_members_and_coordinator() {
        let (_, router) = frankfurt_cluster(3, 2);
        for i in 0..3u64 {
            router.read(ObjectId::new(i)).unwrap();
        }
        let stats = router.cache_stats();
        assert_eq!(stats.object_reads(), 3);
        // Cold reads batch their backend fetches by region.
        assert!(stats.batched_requests() > 0);
        assert!(format!("{router:?}").contains("ClusterRouter"));
    }

    #[test]
    fn register_metrics_exposes_live_cluster_cells() {
        let (_, router) = frankfurt_cluster(3, 2);
        let registry = MetricsRegistry::new();
        // Register BEFORE any traffic: late binding means the cells go
        // live immediately and every later read shows up in the scrape.
        router.register_metrics(&registry, &Labels::new().with("cluster", "test"));
        for i in 0..3u64 {
            router.read(ObjectId::new(i)).unwrap();
        }
        let text = registry.render_prometheus();
        assert!(text.contains("agar_cluster_routed_reads_total{cluster=\"test\"} 3"));
        // Coordinator, lease manager, and per-member cells all land in
        // the same registry under disjoint label sets.
        assert!(text.contains("source=\"coordinator\""));
        assert!(text.contains("source=\"leases\""));
        assert!(text.contains("member=\"0\""));
        assert!(text.contains("member=\"1\""));
        assert!(text.contains("agar_fetch_primary_total{cluster=\"test\"}"));
        // Registration is idempotent: a second scrape pass registers
        // nothing new and renders identically.
        let before = registry.len();
        router.register_metrics(&registry, &Labels::new().with("cluster", "test"));
        assert_eq!(registry.len(), before);
        assert_eq!(registry.render_prometheus(), text);
    }
}
