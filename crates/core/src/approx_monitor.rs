//! Approximate request monitoring (the paper's §III-b scaling note).
//!
//! "For large deployments, we believe that techniques like TinyLFU's
//! approximate access statistics can avoid the request monitor becoming
//! a bottleneck, while maintaining similar effectiveness."
//!
//! [`ApproxRequestMonitor`] replaces the exact per-object frequency map
//! with a Count-Min sketch plus a bounded candidate set of the hottest
//! objects: memory is O(sketch + top-K) instead of O(working set), and
//! `record_read` touches only the sketch and a small heap-ordered map.
//! The ablation test compares the configurations it produces against the
//! exact monitor's.

use agar_cache::CountMinSketch;
use agar_ec::ObjectId;
use std::collections::{BTreeSet, HashMap};

/// A bounded-memory popularity tracker: Count-Min sketch for counting,
/// a top-K candidate set for reporting, EWMA across epochs like the
/// exact [`crate::RequestMonitor`].
#[derive(Clone, Debug)]
pub struct ApproxRequestMonitor {
    alpha: f64,
    sketch: CountMinSketch,
    /// The K hottest objects discovered this epoch (estimated counts).
    candidates: HashMap<ObjectId, u32>,
    max_candidates: usize,
    popularity: HashMap<ObjectId, f64>,
    epoch: u64,
    total_requests: u64,
}

impl ApproxRequestMonitor {
    /// Creates an approximate monitor tracking at most `max_candidates`
    /// hot objects with a sketch of `sketch_width` counters.
    ///
    /// # Panics
    ///
    /// Panics if `max_candidates` is zero or `alpha` outside `(0, 1]`.
    pub fn new(max_candidates: usize, sketch_width: usize, alpha: f64) -> Self {
        assert!(max_candidates > 0, "need at least one candidate slot");
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        ApproxRequestMonitor {
            alpha,
            sketch: CountMinSketch::new(sketch_width, 4),
            candidates: HashMap::with_capacity(max_candidates + 1),
            max_candidates,
            popularity: HashMap::new(),
            epoch: 0,
            total_requests: 0,
        }
    }

    /// A configuration sized for the paper's deployment: 4× the cache's
    /// object capacity as candidates, 1 024-counter sketch, α = 0.8.
    pub fn paper_default(cache_objects: usize) -> Self {
        Self::new(
            (cache_objects * 4).max(16),
            1_024,
            crate::RequestMonitor::PAPER_ALPHA,
        )
    }

    /// Records one request.
    pub fn record_read(&mut self, object: ObjectId) {
        self.sketch.increment(&object);
        self.total_requests += 1;
        let estimate = self.sketch.estimate(&object);

        // Maintain the top-K candidate set under the estimated counts.
        if let Some(count) = self.candidates.get_mut(&object) {
            *count = estimate;
            return;
        }
        if self.candidates.len() < self.max_candidates {
            self.candidates.insert(object, estimate);
            return;
        }
        // Replace the coldest candidate if this object now beats it.
        if let Some((&coldest, &cold_count)) = self
            .candidates
            .iter()
            .min_by_key(|&(id, &count)| (count, id.index()))
        {
            if estimate > cold_count {
                self.candidates.remove(&coldest);
                self.candidates.insert(object, estimate);
            }
        }
    }

    /// Closes the epoch: candidate counts fold into EWMA popularity,
    /// the sketch ages, and the candidate set resets.
    pub fn end_epoch(&mut self) {
        // BTreeSet: dedup plus a deterministic fold order in one shot.
        let touched: BTreeSet<ObjectId> = self
            .candidates
            .keys()
            .chain(self.popularity.keys())
            .copied()
            .collect();
        for object in touched {
            let freq = self.candidates.get(&object).copied().unwrap_or(0) as f64;
            let prev = self.popularity.get(&object).copied().unwrap_or(0.0);
            let next = self.alpha * freq + (1.0 - self.alpha) * prev;
            if next < 1e-3 {
                self.popularity.remove(&object);
            } else {
                self.popularity.insert(object, next);
            }
        }
        self.candidates.clear();
        self.sketch.halve();
        self.epoch += 1;
    }

    /// EWMA popularity of `object` (0 when it never made the candidate
    /// set — the deliberate approximation).
    pub fn popularity(&self, object: ObjectId) -> f64 {
        self.popularity.get(&object).copied().unwrap_or(0.0)
    }

    /// Tracked objects with popularity, hottest first.
    pub fn popularities(&self) -> Vec<(ObjectId, f64)> {
        let mut v: Vec<(ObjectId, f64)> = self.popularity.iter().map(|(&k, &p)| (k, p)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("popularities are finite")
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// Completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total requests recorded.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Memory used by the sketch, in bytes (the scaling argument).
    pub fn sketch_memory_bytes(&self) -> usize {
        self.sketch.memory_bytes()
    }

    /// Exports the tracked popularities into an exact
    /// [`crate::RequestMonitor`]-compatible snapshot, so the cache
    /// manager can consume either monitor uniformly.
    pub fn snapshot(&self) -> Vec<(ObjectId, f64)> {
        self.popularities()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_workload::Zipfian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hot_objects_dominate_the_candidate_set() {
        let mut monitor = ApproxRequestMonitor::new(8, 512, 0.8);
        // Zipf-ish: object i read 100 / (i + 1) times.
        for i in 0..50u64 {
            for _ in 0..(100 / (i + 1)) {
                monitor.record_read(ObjectId::new(i));
            }
        }
        monitor.end_epoch();
        let pops = monitor.popularities();
        assert!(!pops.is_empty());
        assert!(pops.len() <= 8);
        assert_eq!(pops[0].0, ObjectId::new(0), "hottest object must lead");
    }

    #[test]
    fn ranking_agrees_with_exact_monitor_on_the_head() {
        let zipf = Zipfian::new(300, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut exact = crate::RequestMonitor::new();
        let mut approx = ApproxRequestMonitor::new(40, 2_048, 0.8);
        for _ in 0..20_000 {
            let key = ObjectId::new(zipf.sample(&mut rng));
            exact.record_read(key);
            approx.record_read(key);
        }
        exact.end_epoch();
        approx.end_epoch();
        let exact_top: Vec<ObjectId> = exact
            .popularities()
            .into_iter()
            .take(10)
            .map(|(o, _)| o)
            .collect();
        let approx_top: Vec<ObjectId> = approx
            .popularities()
            .into_iter()
            .take(10)
            .map(|(o, _)| o)
            .collect();
        // The top-10 sets overlap almost entirely (order may differ in
        // the tail of the head).
        let overlap = exact_top.iter().filter(|o| approx_top.contains(o)).count();
        assert!(overlap >= 8, "only {overlap}/10 of the hot set matched");
    }

    #[test]
    fn memory_is_bounded_regardless_of_key_space() {
        let mut monitor = ApproxRequestMonitor::new(16, 256, 0.8);
        for i in 0..100_000u64 {
            monitor.record_read(ObjectId::new(i));
        }
        monitor.end_epoch();
        assert!(monitor.popularities().len() <= 16);
        assert_eq!(monitor.sketch_memory_bytes(), 256 * 4 * 4);
        assert_eq!(monitor.total_requests(), 100_000);
    }

    #[test]
    fn ewma_folds_like_the_exact_monitor() {
        let mut monitor = ApproxRequestMonitor::new(4, 256, 0.8);
        let key = ObjectId::new(1);
        for _ in 0..100 {
            monitor.record_read(key);
        }
        monitor.end_epoch();
        let p1 = monitor.popularity(key);
        assert!(p1 >= 80.0, "sketch should count ~100: {p1}");
        monitor.end_epoch(); // idle epoch decays
        assert!(monitor.popularity(key) < p1);
        assert_eq!(monitor.epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "candidate slot")]
    fn zero_candidates_rejected() {
        let _ = ApproxRequestMonitor::new(0, 256, 0.8);
    }

    #[test]
    fn paper_default_sizing() {
        let monitor = ApproxRequestMonitor::paper_default(10);
        assert_eq!(monitor.popularities().len(), 0);
        assert!(monitor.sketch_memory_bytes() > 0);
    }
}
