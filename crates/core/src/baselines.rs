//! The paper's baseline clients (§V-A):
//!
//! - **LRU-c** — memcached-style: per-chunk LRU cache storing a
//!   predefined number `c` of chunks per object, populated on every read;
//! - **LFU-c** — the paper's LFU client: a proxy tracks per-object
//!   request frequency and the cache is reconfigured every period to the
//!   top objects' `c` chunks (the paper sets the same 30 s period for
//!   Agar and LFU);
//! - **Backend** — no cache at all ([`BackendOnlyClient`]).
//!
//! All implement [`CachingClient`], so the experiment harness drives
//! Agar and the baselines identically.

use crate::error::AgarError;
use crate::monitor::RequestMonitor;
use crate::node::{CachingClient, ReadMetrics};
use crate::options::generate_options;
use agar_cache::{chunk_cache, CacheStats, CachedChunk, ChunkCache, PolicyKind};
use agar_ec::{ChunkId, ObjectId};
use agar_net::{RegionId, SimTime};
use agar_store::{plan_backend_fetch, regions_by_latency, Backend};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Which fixed-chunk baseline policy to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselinePolicy {
    /// Online per-chunk LRU (memcached's behaviour): every miss inserts,
    /// the least recently used chunks are evicted.
    Lru,
    /// Online per-chunk LFU (the paper's "LFU cache replacement policy"
    /// with its frequency-tracking proxy): every miss inserts, the least
    /// frequently used chunks are evicted.
    Lfu,
    /// Epoch-based top-N LFU: a request-frequency proxy admits only the
    /// most popular objects at each 30 s reconfiguration. *Stronger*
    /// than the paper's baseline (no cold-object churn); kept for
    /// ablations.
    LfuEpoch,
}

impl std::fmt::Display for BaselinePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselinePolicy::Lru => f.write_str("LRU"),
            BaselinePolicy::Lfu => f.write_str("LFU"),
            BaselinePolicy::LfuEpoch => f.write_str("LFUtop"),
        }
    }
}

struct BaselineInner {
    cache: ChunkCache,
    monitor: RequestMonitor,
    /// LFU only: objects admitted this epoch.
    admitted: HashSet<ObjectId>,
    rng: StdRng,
    last_reconfiguration: Option<SimTime>,
    /// Latency estimates per region (static model means).
    estimates: Vec<Duration>,
}

/// The LRU-c / LFU-c baseline client.
pub struct FixedChunksClient {
    region: RegionId,
    backend: Arc<Backend>,
    policy: BaselinePolicy,
    chunks_per_object: usize,
    cache_read: Duration,
    client_overhead: Duration,
    reconfiguration_period: Duration,
    capacity_bytes: usize,
    inner: Mutex<BaselineInner>,
}

impl FixedChunksClient {
    /// Creates a baseline client caching `chunks_per_object` chunks per
    /// object in a `capacity_bytes` cache.
    ///
    /// # Errors
    ///
    /// Returns [`AgarError::InvalidSetting`] if `chunks_per_object` is
    /// zero or exceeds the code's `k`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        region: RegionId,
        backend: Arc<Backend>,
        policy: BaselinePolicy,
        chunks_per_object: usize,
        capacity_bytes: usize,
        cache_read: Duration,
        client_overhead: Duration,
        seed: u64,
    ) -> Result<Self, AgarError> {
        let k = backend.params().data_chunks();
        if chunks_per_object == 0 || chunks_per_object > k {
            return Err(AgarError::InvalidSetting {
                what: "chunks_per_object must be in 1..=k",
            });
        }
        // Static latency estimates: baselines do not probe; they use the
        // same nearest-region ordering as the paper's YCSB clients.
        let model = backend.latency_model();
        let estimates: Vec<Duration> = backend
            .topology()
            .ids()
            .map(|r| model.mean(region, r, 100_000))
            .collect();
        let cache_policy = match policy {
            BaselinePolicy::Lru => PolicyKind::Lru,
            BaselinePolicy::Lfu => PolicyKind::Lfu,
            // Epoch mode drives evictions itself; the underlying order
            // only breaks ties within the admitted set.
            BaselinePolicy::LfuEpoch => PolicyKind::Lru,
        };
        Ok(FixedChunksClient {
            region,
            backend,
            policy,
            chunks_per_object,
            cache_read,
            client_overhead,
            reconfiguration_period: Duration::from_secs(30),
            capacity_bytes,
            inner: Mutex::new(BaselineInner {
                cache: chunk_cache(capacity_bytes, cache_policy),
                monitor: RequestMonitor::new(),
                admitted: HashSet::new(),
                rng: StdRng::seed_from_u64(seed),
                last_reconfiguration: None,
                estimates,
            }),
        })
    }

    /// Overrides the LFU reconfiguration period (default 30 s).
    #[must_use]
    pub fn with_period(mut self, period: Duration) -> Self {
        self.reconfiguration_period = period;
        self
    }

    /// The fixed number of chunks cached per object.
    pub fn chunks_per_object(&self) -> usize {
        self.chunks_per_object
    }

    /// The `c` most distant used chunks of `object` — what this client
    /// caches, mirroring the motivating experiment's policy.
    fn designated_chunks(
        &self,
        inner: &BaselineInner,
        object: ObjectId,
    ) -> Result<Vec<u8>, AgarError> {
        let manifest = self.backend.manifest(object)?;
        let options = generate_options(&manifest, &inner.estimates, self.cache_read, 1.0);
        Ok(options
            .by_weight(self.chunks_per_object as u32)
            .map(|o| o.chunks().to_vec())
            .unwrap_or_default())
    }

    fn read_inner(
        &self,
        inner: &mut BaselineInner,
        object: ObjectId,
    ) -> Result<ReadMetrics, AgarError> {
        inner.monitor.record_read(object);
        let manifest = self.backend.manifest(object)?;
        let k = manifest.params().data_chunks();
        let version = manifest.version();

        // Which chunks this client would cache for the object, and
        // whether caching is allowed for it right now.
        let designated = self.designated_chunks(inner, object)?;
        let may_cache = match self.policy {
            BaselinePolicy::Lru | BaselinePolicy::Lfu => true,
            BaselinePolicy::LfuEpoch => inner.admitted.contains(&object),
        };

        // 1. Cache lookups (version-checked).
        let mut have: Vec<(u8, Bytes)> = Vec::new();
        for &index in &designated {
            let id = ChunkId::new(object, index);
            let stale = match inner.cache.get(&id) {
                Some(chunk) if chunk.version() == version => {
                    have.push((index, chunk.data().clone()));
                    false
                }
                Some(_) => true,
                None => false,
            };
            if stale {
                inner.cache.remove(&id);
            }
        }
        let cache_hits = have.len();

        // 2. Backend fetches for the remainder.
        let exclude: Vec<ChunkId> = have.iter().map(|&(i, _)| ChunkId::new(object, i)).collect();
        let order = regions_by_latency(&self.backend, self.region);
        let plan = plan_backend_fetch(&self.backend, self.region, object, &order, &exclude)?;
        let mut worst = Duration::ZERO;
        let mut fetched: Vec<(u8, Bytes)> = Vec::with_capacity(plan.len());
        for &(chunk, _) in &plan {
            let fetch = self
                .backend
                .fetch_chunk(self.region, chunk, &mut inner.rng)?;
            worst = worst.max(fetch.latency);
            fetched.push((chunk.index().value(), fetch.data));
        }

        // 3. Latency.
        let cache_component = if cache_hits > 0 {
            self.cache_read
        } else {
            Duration::ZERO
        };
        let latency = self.client_overhead + cache_component.max(worst);

        // 4. Reconstruct.
        let total = manifest.params().total_chunks();
        let mut shards: Vec<Option<Bytes>> = vec![None; total];
        for (index, data) in have.iter().chain(fetched.iter()) {
            shards[*index as usize] = Some(data.clone());
        }
        let (data, decode_report) = self
            .backend
            .codec()
            .reconstruct_object_report(&shards, manifest.size())?;
        let decoded = !decode_report.systematic_fast_path;
        if decode_report.systematic_fast_path {
            inner.cache.stats_mut().record_systematic_fast_read();
        } else if decode_report.plan_cache_hit {
            inner.cache.stats_mut().record_decode_plan_hit();
        }

        // 5. Populate the cache (async in the paper: no latency impact).
        let mut fill_fetches = 0;
        if may_cache {
            for &index in &designated {
                let id = ChunkId::new(object, index);
                if inner.cache.contains(&id) {
                    continue;
                }
                let payload = fetched
                    .iter()
                    .find(|&&(i, _)| i == index)
                    .map(|(_, d)| d.clone())
                    .or_else(|| {
                        self.backend
                            .fetch_chunk(self.region, id, &mut inner.rng)
                            .ok()
                            .map(|f| {
                                fill_fetches += 1;
                                f.data
                            })
                    });
                if let Some(p) = payload {
                    inner.cache.insert(id, CachedChunk::new(p, version));
                }
            }
        }

        inner.cache.stats_mut().record_object_read(cache_hits, k);

        Ok(ReadMetrics {
            data,
            latency,
            cache_hits,
            backend_fetches: fetched.len(),
            fill_fetches,
            decoded,
        })
    }

    fn reconfigure_lfu(&self, inner: &mut BaselineInner) {
        inner.monitor.end_epoch();
        // Admit the top-N objects by popularity, N = capacity / (c
        // chunks per object).
        let chunk_size = inner
            .cache
            .iter()
            .next()
            .map(|(_, v)| v.data().len())
            .or_else(|| {
                self.backend
                    .object_ids()
                    .first()
                    .and_then(|&id| self.backend.manifest(id).ok())
                    .map(|m| m.chunk_size())
            })
            .unwrap_or(0);
        if chunk_size == 0 {
            return;
        }
        let capacity_chunks = self.capacity_bytes / chunk_size;
        let n = capacity_chunks / self.chunks_per_object;
        inner.admitted = inner
            .monitor
            .popularities()
            .into_iter()
            .take(n)
            .map(|(object, _)| object)
            .collect();
        let admitted = &inner.admitted;
        inner
            .cache
            .remove_matching(|id| !admitted.contains(&id.object()));
    }
}

impl CachingClient for FixedChunksClient {
    fn read(&self, object: ObjectId) -> Result<ReadMetrics, AgarError> {
        let inner = &mut *self.inner.lock();
        self.read_inner(inner, object)
    }

    fn maybe_reconfigure(&self, now: SimTime) -> bool {
        if self.policy != BaselinePolicy::LfuEpoch {
            return false; // LRU and online LFU are purely online
        }
        let inner = &mut *self.inner.lock();
        match inner.last_reconfiguration {
            None => {
                inner.last_reconfiguration = Some(now);
                false
            }
            Some(last) => {
                if now.saturating_duration_since(last) >= self.reconfiguration_period {
                    self.reconfigure_lfu(inner);
                    inner.last_reconfiguration = Some(now);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn cache_stats(&self) -> CacheStats {
        *self.inner.lock().cache.stats()
    }

    fn cache_contents(&self) -> BTreeMap<ObjectId, Vec<u8>> {
        let inner = self.inner.lock();
        let mut out: BTreeMap<ObjectId, Vec<u8>> = BTreeMap::new();
        for id in inner.cache.keys() {
            out.entry(id.object()).or_default().push(id.index().value());
        }
        for chunks in out.values_mut() {
            chunks.sort_unstable();
        }
        out
    }

    fn label(&self) -> String {
        format!("{}-{}", self.policy, self.chunks_per_object)
    }
}

impl std::fmt::Debug for FixedChunksClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FixedChunksClient")
            .field("label", &self.label())
            .field("region", &self.region)
            .field("capacity_bytes", &self.capacity_bytes)
            .finish()
    }
}

/// The cache-less "Backend" client: every chunk comes from the store.
pub struct BackendOnlyClient {
    region: RegionId,
    backend: Arc<Backend>,
    client_overhead: Duration,
    inner: Mutex<(StdRng, CacheStats)>,
}

impl BackendOnlyClient {
    /// Creates a backend-only client.
    pub fn new(
        region: RegionId,
        backend: Arc<Backend>,
        client_overhead: Duration,
        seed: u64,
    ) -> Self {
        BackendOnlyClient {
            region,
            backend,
            client_overhead,
            inner: Mutex::new((StdRng::seed_from_u64(seed), CacheStats::new())),
        }
    }
}

impl CachingClient for BackendOnlyClient {
    fn read(&self, object: ObjectId) -> Result<ReadMetrics, AgarError> {
        let inner = &mut *self.inner.lock();
        let manifest = self.backend.manifest(object)?;
        let k = manifest.params().data_chunks();
        let order = regions_by_latency(&self.backend, self.region);
        let plan = plan_backend_fetch(&self.backend, self.region, object, &order, &[])?;
        let total = manifest.params().total_chunks();
        let mut shards: Vec<Option<Bytes>> = vec![None; total];
        let mut worst = Duration::ZERO;
        for &(chunk, _) in &plan {
            let fetch = self.backend.fetch_chunk(self.region, chunk, &mut inner.0)?;
            worst = worst.max(fetch.latency);
            shards[chunk.index().value() as usize] = Some(fetch.data);
        }
        let (data, decode_report) = self
            .backend
            .codec()
            .reconstruct_object_report(&shards, manifest.size())?;
        let decoded = !decode_report.systematic_fast_path;
        if decode_report.systematic_fast_path {
            inner.1.record_systematic_fast_read();
        } else if decode_report.plan_cache_hit {
            inner.1.record_decode_plan_hit();
        }
        inner.1.record_object_read(0, k);
        Ok(ReadMetrics {
            data,
            latency: self.client_overhead + worst,
            cache_hits: 0,
            backend_fetches: plan.len(),
            fill_fetches: 0,
            decoded,
        })
    }

    fn maybe_reconfigure(&self, _now: SimTime) -> bool {
        false
    }

    fn cache_stats(&self) -> CacheStats {
        self.inner.lock().1
    }

    fn cache_contents(&self) -> BTreeMap<ObjectId, Vec<u8>> {
        BTreeMap::new()
    }

    fn label(&self) -> String {
        "Backend".to_string()
    }
}

impl std::fmt::Debug for BackendOnlyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendOnlyClient")
            .field("region", &self.region)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::CodingParams;
    use agar_net::presets::{aws_six_regions, FRANKFURT};
    use agar_store::{expected_payload, populate, RoundRobin};

    fn test_backend(objects: u64, size: usize) -> Arc<Backend> {
        let preset = aws_six_regions();
        let backend = Backend::new(
            preset.topology,
            Arc::new(preset.latency),
            CodingParams::paper_default(),
            Box::new(RoundRobin),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        populate(&backend, objects, size, &mut rng).unwrap();
        Arc::new(backend)
    }

    fn lru_client(backend: Arc<Backend>, c: usize, capacity: usize) -> FixedChunksClient {
        FixedChunksClient::new(
            FRANKFURT,
            backend,
            BaselinePolicy::Lru,
            c,
            capacity,
            Duration::from_millis(40),
            Duration::from_millis(100),
            3,
        )
        .unwrap()
    }

    #[test]
    fn lru_client_caches_designated_chunks() {
        let backend = test_backend(3, 900);
        let client = lru_client(backend, 3, 900);
        assert_eq!(client.label(), "LRU-3");
        let cold = client.read(ObjectId::new(0)).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.data.as_ref(), expected_payload(0, 900).as_slice());
        let warm = client.read(ObjectId::new(0)).unwrap();
        assert_eq!(warm.cache_hits, 3);
        assert!(warm.latency < cold.latency);
        // The cached chunks are the most distant used ones (Tokyo + São
        // Paulo under the calibrated matrix).
        let contents = client.cache_contents();
        assert_eq!(contents[&ObjectId::new(0)].len(), 3);
    }

    #[test]
    fn lru_evicts_older_objects() {
        let backend = test_backend(5, 900);
        // Capacity: 3 chunks of 100 bytes — one object's worth at c = 3.
        let client = lru_client(backend, 3, 300);
        client.read(ObjectId::new(0)).unwrap();
        client.read(ObjectId::new(1)).unwrap();
        // Object 0's chunks were evicted by object 1's.
        let contents = client.cache_contents();
        assert!(!contents.contains_key(&ObjectId::new(0)));
        assert!(contents.contains_key(&ObjectId::new(1)));
        let again = client.read(ObjectId::new(0)).unwrap();
        assert_eq!(again.cache_hits, 0);
    }

    #[test]
    fn full_replica_mode_hits_everything() {
        let backend = test_backend(2, 900);
        let client = lru_client(backend, 9, 1_800);
        client.read(ObjectId::new(0)).unwrap();
        let warm = client.read(ObjectId::new(0)).unwrap();
        assert_eq!(warm.cache_hits, 9);
        assert_eq!(warm.backend_fetches, 0);
        // Full hit: latency = overhead + cache read.
        assert_eq!(warm.latency, Duration::from_millis(140));
        let stats = client.cache_stats();
        assert_eq!(stats.object_total_hits(), 1);
    }

    #[test]
    fn online_lfu_protects_frequent_objects() {
        let backend = test_backend(6, 900);
        // Two objects' worth of cache at c = 3.
        let client = FixedChunksClient::new(
            FRANKFURT,
            Arc::clone(&backend),
            BaselinePolicy::Lfu,
            3,
            600,
            Duration::from_millis(40),
            Duration::from_millis(100),
            3,
        )
        .unwrap();
        assert_eq!(client.label(), "LFU-3");
        // Object 0 is read often; a stream of cold objects passes by.
        for _ in 0..10 {
            client.read(ObjectId::new(0)).unwrap();
        }
        for i in 1..6 {
            client.read(ObjectId::new(i)).unwrap();
        }
        // The hot object's chunks survived the cold streak.
        let warm = client.read(ObjectId::new(0)).unwrap();
        assert_eq!(warm.cache_hits, 3, "hot object evicted by cold traffic");
    }

    #[test]
    fn lfu_epoch_client_admits_only_after_reconfiguration() {
        let backend = test_backend(4, 900);
        let client = FixedChunksClient::new(
            FRANKFURT,
            backend,
            BaselinePolicy::LfuEpoch,
            9,
            900, // one object's worth
            Duration::from_millis(40),
            Duration::from_millis(100),
            3,
        )
        .unwrap();
        assert_eq!(client.label(), "LFUtop-9");
        // Before any reconfiguration nothing is admitted.
        client.read(ObjectId::new(0)).unwrap();
        let warm = client.read(ObjectId::new(0)).unwrap();
        assert_eq!(warm.cache_hits, 0, "LFU must not cache unadmitted objects");

        // Make object 0 clearly hottest, then reconfigure.
        for _ in 0..20 {
            client.read(ObjectId::new(0)).unwrap();
        }
        client.read(ObjectId::new(1)).unwrap();
        assert!(!client.maybe_reconfigure(SimTime::from_secs(0))); // anchor
        assert!(client.maybe_reconfigure(SimTime::from_secs(30)));

        client.read(ObjectId::new(0)).unwrap(); // fill
        let warm = client.read(ObjectId::new(0)).unwrap();
        assert_eq!(warm.cache_hits, 9);
        // Object 1 is not admitted: no fill for it.
        client.read(ObjectId::new(1)).unwrap();
        let cold = client.read(ObjectId::new(1)).unwrap();
        assert_eq!(cold.cache_hits, 0);
    }

    #[test]
    fn lfu_epoch_reconfiguration_evicts_demoted_objects() {
        let backend = test_backend(3, 900);
        let client = FixedChunksClient::new(
            FRANKFURT,
            backend,
            BaselinePolicy::LfuEpoch,
            9,
            900,
            Duration::from_millis(40),
            Duration::from_millis(100),
            3,
        )
        .unwrap();
        // Epoch 1: object 0 hot.
        for _ in 0..20 {
            client.read(ObjectId::new(0)).unwrap();
        }
        client.maybe_reconfigure(SimTime::from_secs(0));
        client.maybe_reconfigure(SimTime::from_secs(30));
        client.read(ObjectId::new(0)).unwrap(); // fill
        assert!(client.cache_contents().contains_key(&ObjectId::new(0)));
        // Epochs 2-4: object 1 takes over.
        for epoch in 1..=3 {
            for _ in 0..100 {
                client.read(ObjectId::new(1)).unwrap();
            }
            client.maybe_reconfigure(SimTime::from_secs(30 + 30 * epoch));
        }
        let contents = client.cache_contents();
        assert!(!contents.contains_key(&ObjectId::new(0)), "{contents:?}");
    }

    #[test]
    fn invalid_chunk_count_rejected() {
        let backend = test_backend(1, 900);
        for c in [0usize, 10] {
            assert!(matches!(
                FixedChunksClient::new(
                    FRANKFURT,
                    Arc::clone(&backend),
                    BaselinePolicy::Lru,
                    c,
                    900,
                    Duration::from_millis(40),
                    Duration::from_millis(100),
                    0,
                ),
                Err(AgarError::InvalidSetting { .. })
            ));
        }
    }

    #[test]
    fn backend_only_client_never_caches() {
        let backend = test_backend(2, 900);
        let client = BackendOnlyClient::new(FRANKFURT, backend, Duration::from_millis(100), 5);
        assert_eq!(client.label(), "Backend");
        for _ in 0..3 {
            let metrics = client.read(ObjectId::new(0)).unwrap();
            assert_eq!(metrics.cache_hits, 0);
            assert_eq!(metrics.backend_fetches, 9);
            assert_eq!(metrics.data.as_ref(), expected_payload(0, 900).as_slice());
        }
        assert!(!client.maybe_reconfigure(SimTime::from_secs(100)));
        assert_eq!(client.cache_stats().object_misses(), 3);
        assert!(client.cache_contents().is_empty());
    }

    #[test]
    fn stale_versions_dropped_in_baselines() {
        let backend = test_backend(2, 900);
        let client = lru_client(Arc::clone(&backend), 3, 900);
        let object = ObjectId::new(0);
        client.read(object).unwrap();
        let warm = client.read(object).unwrap();
        assert_eq!(warm.cache_hits, 3);
        // Overwrite behind the cache's back.
        let mut rng = StdRng::seed_from_u64(2);
        let payload = vec![5u8; 900];
        backend
            .put_object(FRANKFURT, object, &payload, &mut rng)
            .unwrap();
        let metrics = client.read(object).unwrap();
        assert_eq!(metrics.cache_hits, 0);
        assert_eq!(metrics.data.as_ref(), payload.as_slice());
    }
}
