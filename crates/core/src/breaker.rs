//! Per-region circuit breakers for the read path.
//!
//! A region that keeps failing fetches should stop being *planned*,
//! not just retried around: the classic closed → open → half-open
//! state machine. The [`ReadPlanner`](crate::planner::ReadPlanner)
//! consults the breaker through
//! [`HedgePolicy::excluded`](crate::planner::HedgePolicy) so open
//! regions are excluded from primary **and** hedge pricing — plans
//! reroute to surviving regions, they never stall waiting on a dead
//! one. If exclusion would leave fewer than `k` reachable chunks the
//! node re-plans ungated and counts a degraded read instead of
//! failing: availability beats breaker hygiene.
//!
//! State advances only on recorded fetch outcomes and the simulated
//! clock (`AgarNode::set_sim_now`), so breaker behaviour replays
//! bit-identically. The default policy (`failure_threshold = 0`)
//! disables the breaker entirely: no state, no exclusions, and the
//! read path is byte-identical to pre-breaker builds.

use agar_net::RegionId;
use agar_obs::{Counter, Labels, MetricsRegistry};
use parking_lot::Mutex;

/// Breaker tuning. The default (`failure_threshold = 0`) disables the
/// breaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive fetch failures that trip a region open. `0`
    /// disables the breaker.
    pub failure_threshold: u32,
    /// Sim-clock time an open region waits before a half-open probe
    /// is admitted.
    pub cooldown: std::time::Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 0,
            cooldown: std::time::Duration::from_secs(5),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum RegionState {
    /// Healthy; counts consecutive failures toward the threshold.
    Closed { failures: u32 },
    /// Tripped; excluded from planning until the cooldown elapses.
    Open { since_micros: u64 },
    /// Cooldown elapsed; one probe plan is admitted. Success closes
    /// the breaker, failure re-opens it.
    HalfOpen,
}

/// Per-region circuit breaker consulted by the read planner.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    states: Mutex<Vec<RegionState>>,
    opens: Counter,
    probes: Counter,
    closes: Counter,
}

impl CircuitBreaker {
    /// Creates a breaker tracking `regions` regions under `policy`.
    pub fn new(policy: BreakerPolicy, regions: usize) -> Self {
        CircuitBreaker {
            policy,
            states: Mutex::new(vec![RegionState::Closed { failures: 0 }; regions]),
            opens: Counter::default(),
            probes: Counter::default(),
            closes: Counter::default(),
        }
    }

    /// Whether the breaker does anything at all.
    pub fn enabled(&self) -> bool {
        self.policy.failure_threshold > 0
    }

    /// Records a successful fetch from `region`. Closes a half-open
    /// (or even open — degraded re-plans may fetch from excluded
    /// regions) breaker and resets the failure streak.
    pub fn record_success(&self, region: RegionId) {
        if !self.enabled() {
            return;
        }
        let mut states = self.states.lock();
        let Some(state) = states.get_mut(region.index()) else {
            return;
        };
        match *state {
            RegionState::Closed { failures: 0 } => {}
            RegionState::Closed { .. } => *state = RegionState::Closed { failures: 0 },
            RegionState::HalfOpen | RegionState::Open { .. } => {
                *state = RegionState::Closed { failures: 0 };
                self.closes.inc();
            }
        }
    }

    /// Records a failed fetch from `region` at sim-time `now_micros`.
    /// Trips the region open once the consecutive-failure streak hits
    /// the threshold; a failed half-open probe re-opens immediately.
    pub fn record_failure(&self, region: RegionId, now_micros: u64) {
        if !self.enabled() {
            return;
        }
        let mut states = self.states.lock();
        let Some(state) = states.get_mut(region.index()) else {
            return;
        };
        match *state {
            RegionState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.policy.failure_threshold {
                    *state = RegionState::Open {
                        since_micros: now_micros,
                    };
                    self.opens.inc();
                } else {
                    *state = RegionState::Closed { failures };
                }
            }
            RegionState::HalfOpen => {
                *state = RegionState::Open {
                    since_micros: now_micros,
                };
                self.opens.inc();
            }
            RegionState::Open { .. } => {}
        }
    }

    /// The per-region exclusion mask at sim-time `now_micros`:
    /// `mask[region] == true` means the planner must not schedule the
    /// region. Open regions whose cooldown has elapsed transition to
    /// half-open here and are *admitted* (the probe). Returns an empty
    /// mask when the breaker is disabled — the planner treats that as
    /// "nothing excluded" with zero overhead.
    pub fn exclusion_mask(&self, now_micros: u64) -> Vec<bool> {
        if !self.enabled() {
            return Vec::new();
        }
        let mut states = self.states.lock();
        states
            .iter_mut()
            .map(|state| match *state {
                RegionState::Open { since_micros } => {
                    let elapsed = now_micros.saturating_sub(since_micros);
                    if elapsed >= self.policy.cooldown.as_micros() as u64 {
                        *state = RegionState::HalfOpen;
                        self.probes.inc();
                        false
                    } else {
                        true
                    }
                }
                RegionState::Closed { .. } | RegionState::HalfOpen => false,
            })
            .collect()
    }

    /// How many regions are currently open (excluded).
    pub fn open_regions(&self) -> usize {
        if !self.enabled() {
            return 0;
        }
        self.states
            .lock()
            .iter()
            .filter(|state| matches!(state, RegionState::Open { .. }))
            .count()
    }

    /// Closed→open (and half-open→open) transitions so far.
    pub fn opens(&self) -> u64 {
        self.opens.get()
    }

    /// Half-open probes admitted so far.
    pub fn probes(&self) -> u64 {
        self.probes.get()
    }

    /// Open/half-open→closed recoveries so far.
    pub fn closes(&self) -> u64 {
        self.closes.get()
    }

    /// Registers the breaker's transition counters. Families:
    /// `agar_breaker_opens_total`, `agar_breaker_probes_total`,
    /// `agar_breaker_closes_total`.
    pub fn register_metrics(&self, registry: &MetricsRegistry, base: Labels) {
        registry.register_counter(
            "agar_breaker_opens_total",
            "Circuit-breaker transitions to open (region excluded from plans).",
            base.clone(),
            &self.opens,
        );
        registry.register_counter(
            "agar_breaker_probes_total",
            "Half-open probe admissions after an open region's cooldown.",
            base.clone(),
            &self.probes,
        );
        registry.register_counter(
            "agar_breaker_closes_total",
            "Circuit-breaker recoveries to closed after a successful probe.",
            base,
            &self.closes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn enabled_breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            BreakerPolicy {
                failure_threshold: 3,
                cooldown: Duration::from_secs(2),
            },
            4,
        )
    }

    #[test]
    fn disabled_breaker_excludes_nothing_and_keeps_no_state() {
        let breaker = CircuitBreaker::new(BreakerPolicy::default(), 4);
        for _ in 0..10 {
            breaker.record_failure(RegionId::new(1), 0);
        }
        assert!(breaker.exclusion_mask(u64::MAX).is_empty());
        assert_eq!(breaker.opens(), 0);
    }

    #[test]
    fn consecutive_failures_trip_the_region_open() {
        let breaker = enabled_breaker();
        let region = RegionId::new(2);
        breaker.record_failure(region, 0);
        breaker.record_failure(region, 0);
        assert!(
            !breaker.exclusion_mask(0)[2],
            "below threshold stays closed"
        );
        breaker.record_failure(region, 0);
        assert!(breaker.exclusion_mask(0)[2], "threshold trips open");
        assert_eq!(breaker.opens(), 1);
        assert_eq!(breaker.open_regions(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let breaker = enabled_breaker();
        let region = RegionId::new(0);
        breaker.record_failure(region, 0);
        breaker.record_failure(region, 0);
        breaker.record_success(region);
        breaker.record_failure(region, 0);
        breaker.record_failure(region, 0);
        assert!(!breaker.exclusion_mask(0)[0]);
    }

    #[test]
    fn cooldown_admits_a_probe_and_the_probe_outcome_decides() {
        let breaker = enabled_breaker();
        let region = RegionId::new(1);
        for _ in 0..3 {
            breaker.record_failure(region, 1_000_000);
        }
        assert!(breaker.exclusion_mask(1_500_000)[1], "cooling down");
        // Cooldown (2s) elapsed: probe admitted, region re-planned.
        assert!(!breaker.exclusion_mask(3_000_000)[1]);
        assert_eq!(breaker.probes(), 1);
        // Probe failed: straight back to open, no threshold needed.
        breaker.record_failure(region, 3_000_000);
        assert!(breaker.exclusion_mask(3_500_000)[1]);
        assert_eq!(breaker.opens(), 2);
        // Second probe succeeds: closed and counted.
        assert!(!breaker.exclusion_mask(6_000_000)[1]);
        breaker.record_success(region);
        assert_eq!(breaker.closes(), 1);
        assert!(!breaker.exclusion_mask(6_000_000)[1]);
        assert_eq!(breaker.open_regions(), 0);
    }
}
