//! The cache manager (paper §III-c): periodically turns popularity
//! statistics and latency estimates into a static cache configuration by
//! running the Knapsack dynamic program.

use crate::config::CacheConfiguration;
use crate::knapsack::KnapsackSolver;
use crate::monitor::RequestMonitor;
use crate::options::{generate_disk_options, generate_options, ObjectOptions};
use crate::region_manager::RegionManager;
use agar_ec::ObjectId;
use agar_store::Backend;
use std::collections::HashMap;
use std::time::Duration;

/// Computes cache configurations from live statistics.
///
/// Weights are counted in chunks: the paper's catalogue is homogeneous
/// (300 × 1 MB objects), so capacity in bytes divides evenly by the
/// chunk size of the first known object. Heterogeneous object sizes
/// would need byte-granular weights; see DESIGN.md.
#[derive(Clone, Debug)]
pub struct CacheManager {
    capacity_bytes: usize,
    disk_capacity_bytes: usize,
    solver: KnapsackSolver,
}

impl CacheManager {
    /// Creates a manager for a RAM cache of `capacity_bytes` (no disk
    /// tier).
    pub fn new(capacity_bytes: usize) -> Self {
        CacheManager {
            capacity_bytes,
            disk_capacity_bytes: 0,
            solver: KnapsackSolver::new(),
        }
    }

    /// Overrides the Knapsack solver (e.g. to enable §VI early
    /// termination).
    #[must_use]
    pub fn with_solver(mut self, solver: KnapsackSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Attaches a disk-tier budget of `bytes` (0 disables the disk
    /// phase of [`CacheManager::recompute_tiered`]).
    #[must_use]
    pub fn with_disk_capacity(mut self, bytes: usize) -> Self {
        self.disk_capacity_bytes = bytes;
        self
    }

    /// The configured RAM capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The configured disk-tier capacity in bytes.
    pub fn disk_capacity_bytes(&self) -> usize {
        self.disk_capacity_bytes
    }

    /// Generates the option sets for every object the monitor tracks.
    ///
    /// Exposed separately so benchmarks can time option generation and
    /// the Knapsack independently.
    pub fn build_options(
        &self,
        monitor: &RequestMonitor,
        region_manager: &RegionManager,
        backend: &Backend,
        cache_read: Duration,
    ) -> HashMap<ObjectId, ObjectOptions> {
        let estimates = region_manager.estimates();
        let mut all_options = HashMap::new();
        for (object, popularity) in monitor.popularities() {
            let Ok(manifest) = backend.manifest(object) else {
                continue; // object deleted or never stored
            };
            all_options.insert(
                object,
                generate_options(&manifest, estimates, cache_read, popularity),
            );
        }
        all_options
    }

    /// Recomputes the cache configuration from current statistics.
    ///
    /// Returns the empty configuration when the monitor has seen nothing
    /// (or capacity fits no chunk).
    pub fn recompute(
        &self,
        monitor: &RequestMonitor,
        region_manager: &RegionManager,
        backend: &Backend,
        cache_read: Duration,
        epoch: u64,
    ) -> CacheConfiguration {
        let all_options = self.build_options(monitor, region_manager, backend, cache_read);
        let Some(first) = all_options.keys().next() else {
            return CacheConfiguration::empty();
        };
        let chunk_size = backend
            .manifest(*first)
            .map(|m| m.chunk_size())
            .unwrap_or(0);
        if chunk_size == 0 {
            return CacheConfiguration::empty();
        }
        let capacity_chunks = (self.capacity_bytes / chunk_size) as u32;
        let solved = self.solver.populate(&all_options, capacity_chunks);
        CacheConfiguration::from_knapsack(&solved, epoch)
    }

    /// The two-budget recompute: phase 1 solves the RAM tier exactly
    /// like [`CacheManager::recompute`]; phase 2 generates disk-tier
    /// options conditioned on the RAM allocation (the chunks it left on
    /// the remote path, priced against `disk_read`) and solves them
    /// against the disk budget. With a zero disk budget the result is
    /// identical to [`CacheManager::recompute`] — the node calls this
    /// unconditionally and relies on that for `disk_capacity = 0`
    /// byte-identity.
    pub fn recompute_tiered(
        &self,
        monitor: &RequestMonitor,
        region_manager: &RegionManager,
        backend: &Backend,
        cache_read: Duration,
        disk_read: Duration,
        epoch: u64,
    ) -> CacheConfiguration {
        let all_options = self.build_options(monitor, region_manager, backend, cache_read);
        let Some(first) = all_options.keys().next() else {
            return CacheConfiguration::empty();
        };
        let chunk_size = backend
            .manifest(*first)
            .map(|m| m.chunk_size())
            .unwrap_or(0);
        if chunk_size == 0 {
            return CacheConfiguration::empty();
        }
        let capacity_chunks = (self.capacity_bytes / chunk_size) as u32;
        let disk_chunks = (self.disk_capacity_bytes / chunk_size) as u32;
        let estimates = region_manager.estimates();
        let tiered =
            self.solver
                .populate_tiered(&all_options, capacity_chunks, disk_chunks, |ram| {
                    let mut disk_options = HashMap::new();
                    for (object, popularity) in monitor.popularities() {
                        let Ok(manifest) = backend.manifest(object) else {
                            continue;
                        };
                        let ram_chunks = ram
                            .options()
                            .iter()
                            .find(|o| o.object() == object)
                            .map_or(&[][..], |o| o.chunks());
                        if let Some(options) = generate_disk_options(
                            &manifest, estimates, cache_read, disk_read, ram_chunks, popularity,
                        ) {
                            disk_options.insert(object, options);
                        }
                    }
                    disk_options
                });
        CacheConfiguration::from_tiered(tiered.ram(), tiered.disk(), epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::CodingParams;
    use agar_net::presets::{aws_six_regions, FRANKFURT};
    use agar_store::{populate, RoundRobin};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (Arc<Backend>, RegionManager, RequestMonitor) {
        let preset = aws_six_regions();
        let backend = Backend::new(
            preset.topology.clone(),
            Arc::new(preset.latency.clone()),
            CodingParams::paper_default(),
            Box::new(RoundRobin),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        populate(&backend, 20, 900, &mut rng).unwrap();

        let mut region_manager = RegionManager::new(FRANKFURT, preset.topology);
        region_manager.warm_up(&preset.latency, 100, 5, &mut rng);

        let mut monitor = RequestMonitor::new();
        // Object popularity proportional to (20 - id).
        for id in 0..20u64 {
            for _ in 0..(20 - id) * 5 {
                monitor.record_read(agar_ec::ObjectId::new(id));
            }
        }
        monitor.end_epoch();
        (Arc::new(backend), region_manager, monitor)
    }

    #[test]
    fn recompute_fills_capacity_with_popular_objects() {
        let (backend, region_manager, monitor) = setup();
        // Chunk size = 100 bytes; 1 000-byte cache = 10 chunks.
        let manager = CacheManager::new(1_000);
        let config = manager.recompute(
            &monitor,
            &region_manager,
            &backend,
            Duration::from_millis(40),
            1,
        );
        assert!(config.total_chunks() > 0);
        assert!(config.total_chunks() <= 10);
        // The hottest object must be in the configuration.
        assert!(config.objects().any(|o| o == agar_ec::ObjectId::new(0)));
        assert_eq!(config.epoch(), 1);
    }

    #[test]
    fn empty_monitor_yields_empty_config() {
        let (backend, region_manager, _) = setup();
        let manager = CacheManager::new(1_000);
        let monitor = RequestMonitor::new();
        let config = manager.recompute(
            &monitor,
            &region_manager,
            &backend,
            Duration::from_millis(40),
            0,
        );
        assert_eq!(config.total_chunks(), 0);
    }

    #[test]
    fn tiny_capacity_yields_few_chunks() {
        let (backend, region_manager, monitor) = setup();
        // 150 bytes = 1 chunk.
        let manager = CacheManager::new(150);
        let config = manager.recompute(
            &monitor,
            &region_manager,
            &backend,
            Duration::from_millis(40),
            0,
        );
        assert!(config.total_chunks() <= 1);
    }

    #[test]
    fn unknown_objects_are_skipped() {
        let (backend, region_manager, mut monitor) = setup();
        // Record traffic for an object the backend never stored.
        for _ in 0..1000 {
            monitor.record_read(agar_ec::ObjectId::new(999));
        }
        monitor.end_epoch();
        let manager = CacheManager::new(1_000);
        let config = manager.recompute(
            &monitor,
            &region_manager,
            &backend,
            Duration::from_millis(40),
            0,
        );
        assert!(config.objects().all(|o| o.index() != 999));
    }

    #[test]
    fn tiered_recompute_fills_both_budgets() {
        let (backend, region_manager, monitor) = setup();
        // 10 RAM chunks + 30 disk chunks over a hot 20-object catalogue.
        let manager = CacheManager::new(1_000).with_disk_capacity(3_000);
        assert_eq!(manager.disk_capacity_bytes(), 3_000);
        let config = manager.recompute_tiered(
            &monitor,
            &region_manager,
            &backend,
            Duration::from_millis(40),
            Duration::from_millis(45),
            2,
        );
        assert!(config.ram_chunks() > 0);
        assert!(config.ram_chunks() <= 10);
        assert!(config.disk_chunks() > 0, "disk budget must be used");
        assert!(config.disk_chunks() <= 30);
        assert_eq!(config.epoch(), 2);
    }

    #[test]
    fn tiered_recompute_with_zero_disk_matches_plain_recompute() {
        let (backend, region_manager, monitor) = setup();
        let manager = CacheManager::new(1_000);
        let plain = manager.recompute(
            &monitor,
            &region_manager,
            &backend,
            Duration::from_millis(40),
            1,
        );
        let tiered = manager.recompute_tiered(
            &monitor,
            &region_manager,
            &backend,
            Duration::from_millis(40),
            Duration::from_millis(45),
            1,
        );
        assert_eq!(tiered.total_chunks(), plain.total_chunks());
        assert_eq!(tiered.planned_value(), plain.planned_value());
        assert_eq!(tiered.disk_chunks(), 0);
        let mut plain_objects: Vec<_> = plain.objects().collect();
        let mut tiered_objects: Vec<_> = tiered.objects().collect();
        plain_objects.sort_unstable();
        tiered_objects.sort_unstable();
        assert_eq!(plain_objects, tiered_objects);
        for object in plain.objects() {
            assert_eq!(plain.chunks_for(object), tiered.chunks_for(object));
        }
    }

    #[test]
    fn build_options_covers_tracked_objects() {
        let (backend, region_manager, monitor) = setup();
        let manager = CacheManager::new(1_000);
        let options = manager.build_options(
            &monitor,
            &region_manager,
            &backend,
            Duration::from_millis(40),
        );
        assert_eq!(options.len(), 20);
        assert_eq!(manager.capacity_bytes(), 1_000);
    }
}
