//! Write-path cache coherence (the paper's §VI "supporting data writes"
//! discussion, implemented as an extension).
//!
//! Two complementary mechanisms keep caches coherent:
//!
//! 1. **Version validation on read** (always on, built into
//!    [`crate::AgarNode`] and the baselines): every cached chunk carries
//!    the object version it was encoded from; a read compares it against
//!    the manifest and treats stale chunks as misses.
//! 2. **Invalidation broadcast on write** (this module): a
//!    [`WriteCoordinator`] fans a write out to the backend and then
//!    invalidates the object's chunks in *every* region's Agar node, so
//!    remote caches do not serve an extra round of stale lookups.
//!
//! The paper suggests Paxos for full coherence; with a single
//! authoritative backend per object and monotonically increasing
//! versions, validation + best-effort invalidation already provides
//! read-your-writes from any region in this simulation (the backend's
//! manifest is the linearisation point).

use crate::error::AgarError;
use crate::node::AgarNode;
use agar_ec::ObjectId;
use agar_net::RegionId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Fans writes out to the backend and invalidates every region's cache.
pub struct WriteCoordinator {
    nodes: Vec<Arc<AgarNode>>,
    backend: Arc<agar_store::Backend>,
    rng: Mutex<StdRng>,
    writes: Mutex<u64>,
}

impl WriteCoordinator {
    /// Creates a coordinator over the given Agar nodes (one per region).
    pub fn new(backend: Arc<agar_store::Backend>, nodes: Vec<Arc<AgarNode>>, seed: u64) -> Self {
        WriteCoordinator {
            nodes,
            backend,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            writes: Mutex::new(0),
        }
    }

    /// Writes `data` to `object` from `writer_region` and broadcasts
    /// invalidations. Returns the new version and the write latency
    /// (invalidation is asynchronous and off the latency path).
    ///
    /// # Errors
    ///
    /// Propagates backend write failures; invalidation is best-effort.
    pub fn write(
        &self,
        writer_region: RegionId,
        object: ObjectId,
        data: &[u8],
    ) -> Result<(u64, Duration), AgarError> {
        let (version, latency) = {
            let mut rng = self.rng.lock();
            // The backend put is a simulated write that draws its
            // latency sample from this RNG; holding the coordinator's
            // RNG lock across it is what serialises writers.
            self.backend
                // agar-lint: allow(lock-across-blocking)
                .put_object(writer_region, object, data, &mut *rng)?
        };
        for node in &self.nodes {
            node.invalidate_object(object);
        }
        *self.writes.lock() += 1;
        Ok((version, latency))
    }

    /// Number of coordinated writes so far.
    pub fn writes(&self) -> u64 {
        *self.writes.lock()
    }

    /// The coordinated nodes.
    pub fn nodes(&self) -> &[Arc<AgarNode>] {
        &self.nodes
    }
}

impl std::fmt::Debug for WriteCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteCoordinator")
            .field("nodes", &self.nodes.len())
            .field("writes", &self.writes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{AgarSettings, CachingClient};
    use agar_ec::CodingParams;
    use agar_net::presets::{aws_six_regions, FRANKFURT, SYDNEY};
    use agar_store::{populate, Backend, RoundRobin};

    fn setup() -> (Arc<Backend>, Vec<Arc<AgarNode>>) {
        let preset = aws_six_regions();
        let backend = Arc::new(
            Backend::new(
                preset.topology.clone(),
                Arc::new(preset.latency),
                CodingParams::paper_default(),
                Box::new(RoundRobin),
            )
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        populate(&backend, 3, 900, &mut rng).unwrap();
        let nodes: Vec<Arc<AgarNode>> = preset
            .topology
            .ids()
            .map(|region| {
                Arc::new(
                    AgarNode::new(
                        region,
                        Arc::clone(&backend),
                        AgarSettings::paper_default(1_800),
                        region.index() as u64,
                    )
                    .unwrap(),
                )
            })
            .collect();
        (backend, nodes)
    }

    fn warm(node: &AgarNode, object: ObjectId) {
        for _ in 0..20 {
            node.read(object).unwrap();
        }
        node.force_reconfigure();
        node.read(object).unwrap(); // fill
    }

    #[test]
    fn write_invalidates_all_regions() {
        let (backend, nodes) = setup();
        let object = ObjectId::new(0);
        // Warm the Frankfurt and Sydney caches.
        warm(&nodes[FRANKFURT.index()], object);
        warm(&nodes[SYDNEY.index()], object);
        assert!(nodes[FRANKFURT.index()]
            .cache_contents()
            .contains_key(&object));
        assert!(nodes[SYDNEY.index()].cache_contents().contains_key(&object));

        let coordinator = WriteCoordinator::new(Arc::clone(&backend), nodes.clone(), 9);
        let payload = vec![3u8; 900];
        let (version, latency) = coordinator.write(FRANKFURT, object, &payload).unwrap();
        assert_eq!(version, 2);
        assert!(latency > Duration::ZERO);
        assert_eq!(coordinator.writes(), 1);

        // Every region's cache dropped the object...
        for node in coordinator.nodes() {
            assert!(!node.cache_contents().contains_key(&object));
        }
        // ...and reads from any region observe the new data.
        let metrics = nodes[SYDNEY.index()].read(object).unwrap();
        assert_eq!(metrics.data.as_ref(), payload.as_slice());
        let metrics = nodes[FRANKFURT.index()].read(object).unwrap();
        assert_eq!(metrics.data.as_ref(), payload.as_slice());
    }

    #[test]
    fn version_validation_alone_guarantees_freshness() {
        // Even WITHOUT broadcast, the version check ensures
        // read-your-writes: a direct backend write leaves stale cached
        // chunks behind, and reads still return fresh data.
        let (backend, nodes) = setup();
        let object = ObjectId::new(1);
        warm(&nodes[SYDNEY.index()], object);
        let mut rng = StdRng::seed_from_u64(4);
        let payload = vec![8u8; 900];
        backend
            .put_object(FRANKFURT, object, &payload, &mut rng)
            .unwrap();
        let metrics = nodes[SYDNEY.index()].read(object).unwrap();
        assert_eq!(metrics.cache_hits, 0);
        assert_eq!(metrics.data.as_ref(), payload.as_slice());
    }

    #[test]
    fn debug_output() {
        let (backend, nodes) = setup();
        let coordinator = WriteCoordinator::new(backend, nodes, 0);
        assert!(format!("{coordinator:?}").contains("WriteCoordinator"));
    }
}
