//! Collaborative caching between nearby regions (the paper's §VI
//! discussion, implemented as an extension).
//!
//! "Nearby caches, such as Frankfurt and Dublin, could collaborate in
//! order to make better use of their shared storage size." A
//! [`CollaborativeGroup`] lets a node serve chunk lookups from a
//! neighbour's cache when the neighbour is closer than the chunk's
//! backend region: a *remote cache hit*. Remote cache reads cost the
//! inter-region latency (they skip the backend's storage-service
//! overhead, modelled as a configurable discount).

use crate::error::AgarError;
use crate::node::{AgarNode, ReadMetrics};
use crate::planner::RemoteChunk;
use agar_ec::{ChunkId, ObjectId};
use agar_store::Backend;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Fraction of the WAN chunk-read latency a remote *cache* read costs
/// (caches skip the storage-service overhead).
const REMOTE_CACHE_DISCOUNT: f64 = 0.5;

/// A set of Agar nodes whose caches answer each other's lookups.
pub struct CollaborativeGroup {
    backend: Arc<Backend>,
    nodes: Vec<Arc<AgarNode>>,
    rng: Mutex<StdRng>,
    remote_hits: Mutex<u64>,
}

impl CollaborativeGroup {
    /// Creates a collaborative group over `nodes`.
    pub fn new(backend: Arc<Backend>, nodes: Vec<Arc<AgarNode>>, seed: u64) -> Self {
        CollaborativeGroup {
            backend,
            nodes,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            remote_hits: Mutex::new(0),
        }
    }

    /// The member nodes.
    pub fn nodes(&self) -> &[Arc<AgarNode>] {
        &self.nodes
    }

    /// Total chunk lookups served from a neighbour's cache.
    pub fn remote_hits(&self) -> u64 {
        *self.remote_hits.lock()
    }

    /// Looks up a chunk in every member cache except `home`'s, returning
    /// the payload and the simulated transfer latency from the nearest
    /// holder.
    pub fn remote_lookup(
        &self,
        home_index: usize,
        chunk: ChunkId,
        version: u64,
    ) -> Option<(Bytes, Duration)> {
        let model = self.backend.latency_model();
        let home_region = self.nodes[home_index].region();
        let mut best: Option<(Bytes, Duration)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if i == home_index {
                continue;
            }
            // Peek into the neighbour's cache without disturbing its
            // recency metadata or statistics.
            let Some(data) = node.peek_chunk(&chunk, version) else {
                continue;
            };
            let mut rng = self.rng.lock();
            let wan = model.sample(home_region, node.region(), data.len(), &mut *rng);
            let latency = wan.mul_f64(REMOTE_CACHE_DISCOUNT);
            if best.as_ref().is_none_or(|(_, b)| latency < *b) {
                best = Some((data, latency));
            }
        }
        best
    }

    /// A collaborative read: the home node performs its normal read, but
    /// chunks it would fetch from a backend region further than a
    /// neighbour holding them in cache come from the neighbour instead.
    ///
    /// Returns the metrics with the (possibly improved) latency.
    ///
    /// # Errors
    ///
    /// Propagates the home node's read errors.
    pub fn read(&self, home_index: usize, object: ObjectId) -> Result<ReadMetrics, AgarError> {
        // First consult neighbours for the object's chunks that the home
        // cache does not hold, then let the home node read the rest.
        let home = &self.nodes[home_index];
        let manifest = self.backend.manifest(object)?;
        let version = manifest.version();
        let k = manifest.params().data_chunks();

        let mut remote: Vec<RemoteChunk> = Vec::new();
        for index in 0..manifest.params().total_chunks() as u8 {
            let chunk = ChunkId::new(object, index);
            if home.peek_chunk(&chunk, version).is_some() {
                continue; // home cache already has it
            }
            if let Some((data, latency)) = self.remote_lookup(home_index, chunk, version) {
                remote.push(RemoteChunk {
                    index,
                    data,
                    latency,
                    version,
                });
            }
            if remote.len() >= k {
                break;
            }
        }

        // Let the home node read normally, excluding chunks obtainable
        // from neighbours only if the neighbour is actually closer than
        // the backend would be.
        let metrics = home.read_with_remote_chunks(object, &remote)?;
        if metrics.remote_hits > 0 {
            *self.remote_hits.lock() += metrics.remote_hits as u64;
        }
        Ok(metrics.into_inner())
    }
}

impl std::fmt::Debug for CollaborativeGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollaborativeGroup")
            .field("nodes", &self.nodes.len())
            .field("remote_hits", &self.remote_hits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{AgarSettings, CachingClient};
    use agar_ec::CodingParams;
    use agar_net::presets::{aws_six_regions, DUBLIN, FRANKFURT};
    use agar_store::{populate, RoundRobin};

    fn setup() -> (Arc<Backend>, Vec<Arc<AgarNode>>) {
        let preset = aws_six_regions();
        let backend = Arc::new(
            Backend::new(
                preset.topology.clone(),
                Arc::new(preset.latency),
                CodingParams::paper_default(),
                Box::new(RoundRobin),
            )
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        populate(&backend, 3, 900, &mut rng).unwrap();
        let nodes: Vec<Arc<AgarNode>> = preset
            .topology
            .ids()
            .map(|region| {
                Arc::new(
                    AgarNode::new(
                        region,
                        Arc::clone(&backend),
                        AgarSettings::paper_default(2_700),
                        region.index() as u64,
                    )
                    .unwrap(),
                )
            })
            .collect();
        (backend, nodes)
    }

    #[test]
    fn remote_lookup_finds_neighbour_chunks() {
        let (backend, nodes) = setup();
        let object = ObjectId::new(0);
        // Warm Dublin's cache.
        let dublin = &nodes[DUBLIN.index()];
        for _ in 0..20 {
            dublin.read(object).unwrap();
        }
        dublin.force_reconfigure();
        dublin.read(object).unwrap();
        let dublin_chunks = dublin.cache_contents()[&object].clone();
        assert!(!dublin_chunks.is_empty());

        let group = CollaborativeGroup::new(backend, nodes, 1);
        let chunk = ChunkId::new(object, dublin_chunks[0]);
        let hit = group.remote_lookup(FRANKFURT.index(), chunk, 1);
        assert!(hit.is_some());
        let (_, latency) = hit.unwrap();
        // Dublin is 280 ms from Frankfurt; the cache discount halves it.
        assert!(latency < Duration::from_millis(250), "latency {latency:?}");
    }

    #[test]
    fn collaborative_read_beats_solo_read_when_neighbour_is_warm() {
        let (backend, nodes) = setup();
        let object = ObjectId::new(0);
        // Dublin holds a full replica of the object.
        let dublin = &nodes[DUBLIN.index()];
        for _ in 0..30 {
            dublin.read(object).unwrap();
        }
        dublin.force_reconfigure();
        dublin.read(object).unwrap();
        assert_eq!(dublin.cache_contents()[&object].len(), 9);

        let group = CollaborativeGroup::new(Arc::clone(&backend), nodes.clone(), 1);
        // Frankfurt's cache is cold; a solo read pays the Tokyo fetch.
        let solo = nodes[FRANKFURT.index()].read(object).unwrap();
        let collab = group.read(FRANKFURT.index(), object).unwrap();
        assert!(
            collab.latency < solo.latency,
            "collab {:?} vs solo {:?}",
            collab.latency,
            solo.latency
        );
        assert!(group.remote_hits() > 0);
        assert_eq!(collab.data.as_ref(), solo.data.as_ref());
    }

    #[test]
    fn collaborative_read_falls_back_to_backend() {
        let (backend, nodes) = setup();
        let group = CollaborativeGroup::new(backend, nodes, 1);
        // No cache anywhere: behaves like a normal read.
        let metrics = group.read(FRANKFURT.index(), ObjectId::new(1)).unwrap();
        assert_eq!(metrics.cache_hits, 0);
        assert_eq!(group.remote_hits(), 0);
        assert!(metrics.data.len() == 900);
    }
}
