//! The static cache configuration Agar's cache manager produces
//! (paper §III-c): which objects to cache and which chunks of each.

use crate::knapsack::Config;
use agar_cache::CacheTier;
use agar_ec::{ChunkId, ObjectId};
use std::collections::{BTreeMap, HashMap};

/// The per-object chunk sets the cache should hold until the next
/// reconfiguration.
///
/// `per_object` is the **union** across tiers — [`Self::chunks_for`] and
/// [`Self::contains`] answer "should this chunk be cached at all?",
/// which is what fill hints and purge predicates want regardless of
/// tier. The disk-tier subset is tracked separately so
/// [`Self::tier_for`] can route each fill to its planned tier.
#[derive(Clone, Debug, Default)]
pub struct CacheConfiguration {
    per_object: HashMap<ObjectId, Vec<u8>>,
    disk_per_object: HashMap<ObjectId, Vec<u8>>,
    total_chunks: u32,
    disk_chunks: u32,
    planned_value: f64,
    epoch: u64,
}

impl CacheConfiguration {
    /// The empty configuration (cache nothing).
    pub fn empty() -> Self {
        CacheConfiguration::default()
    }

    /// Converts a solved Knapsack [`Config`] into a cache configuration,
    /// tagging it with the epoch that produced it. Every chunk is
    /// RAM-tier (the single-budget solve has no disk phase).
    pub fn from_knapsack(config: &Config, epoch: u64) -> Self {
        let mut per_object = HashMap::with_capacity(config.options().len());
        for option in config.options() {
            per_object.insert(option.object(), option.chunks().to_vec());
        }
        CacheConfiguration {
            per_object,
            disk_per_object: HashMap::new(),
            total_chunks: config.weight(),
            disk_chunks: 0,
            planned_value: config.value(),
            epoch,
        }
    }

    /// Converts a two-budget solve into a cache configuration: the RAM
    /// and disk allocations (disjoint by construction — the disk phase
    /// only sees chunks the RAM phase left behind) merge into the
    /// per-object union, and the disk subset is kept for
    /// [`Self::tier_for`]. With an empty disk configuration the result
    /// is identical to [`Self::from_knapsack`] on the RAM half.
    pub fn from_tiered(ram: &Config, disk: &Config, epoch: u64) -> Self {
        let mut config = CacheConfiguration::from_knapsack(ram, epoch);
        for option in disk.options() {
            config
                .per_object
                .entry(option.object())
                .or_default()
                .extend_from_slice(option.chunks());
            config
                .disk_per_object
                .insert(option.object(), option.chunks().to_vec());
        }
        config.total_chunks += disk.weight();
        config.disk_chunks = disk.weight();
        config.planned_value += disk.value();
        config
    }

    /// The chunks to cache for `object` (empty when the object is not in
    /// the configuration).
    pub fn chunks_for(&self, object: ObjectId) -> &[u8] {
        self.per_object.get(&object).map_or(&[], Vec::as_slice)
    }

    /// Whether a specific chunk belongs to the configuration.
    pub fn contains(&self, chunk: ChunkId) -> bool {
        self.chunks_for(chunk.object())
            .contains(&chunk.index().value())
    }

    /// Objects in the configuration.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.per_object.keys().copied()
    }

    /// Number of configured objects.
    pub fn object_count(&self) -> usize {
        self.per_object.len()
    }

    /// Total chunks across all objects and both tiers.
    pub fn total_chunks(&self) -> u32 {
        self.total_chunks
    }

    /// Chunks planned for the RAM tier.
    pub fn ram_chunks(&self) -> u32 {
        self.total_chunks - self.disk_chunks
    }

    /// Chunks planned for the disk tier.
    pub fn disk_chunks(&self) -> u32 {
        self.disk_chunks
    }

    /// The disk-tier chunks planned for `object` (empty when the object
    /// has no disk allocation).
    pub fn disk_chunks_for(&self, object: ObjectId) -> &[u8] {
        self.disk_per_object.get(&object).map_or(&[], Vec::as_slice)
    }

    /// Which tier the configuration plans `chunk` for, or `None` when
    /// the chunk is not in the configuration at all.
    pub fn tier_for(&self, chunk: ChunkId) -> Option<CacheTier> {
        if self
            .disk_chunks_for(chunk.object())
            .contains(&chunk.index().value())
        {
            Some(CacheTier::Disk)
        } else if self.contains(chunk) {
            Some(CacheTier::Ram)
        } else {
            None
        }
    }

    /// The solver's predicted value (popularity-weighted improvement).
    pub fn planned_value(&self) -> f64 {
        self.planned_value
    }

    /// The epoch that produced this configuration.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Figure 10's breakdown: how many objects are cached with each
    /// chunk count.
    pub fn breakdown(&self) -> BTreeMap<usize, usize> {
        let mut out = BTreeMap::new();
        for chunks in self.per_object.values() {
            *out.entry(chunks.len()).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knapsack::KnapsackSolver;
    use crate::options::generate_options;
    use agar_ec::CodingParams;
    use agar_net::RegionId;
    use agar_store::ObjectManifest;
    use std::time::Duration;

    fn solved_config() -> CacheConfiguration {
        let latencies: Vec<Duration> = [80u64, 200, 600, 1400, 3400, 4600]
            .into_iter()
            .map(Duration::from_millis)
            .collect();
        let params = CodingParams::paper_default();
        let options: HashMap<ObjectId, _> = [(0u64, 100.0), (1, 10.0)]
            .into_iter()
            .map(|(i, pop)| {
                let object = ObjectId::new(i);
                let locations = (0..12).map(|c| RegionId::new(c % 6)).collect();
                let manifest = ObjectManifest::new(object, 1_000_000, 1, params, locations);
                (
                    object,
                    generate_options(&manifest, &latencies, Duration::from_millis(40), pop),
                )
            })
            .collect();
        let solved = KnapsackSolver::new().populate(&options, 12);
        CacheConfiguration::from_knapsack(&solved, 3)
    }

    #[test]
    fn from_knapsack_preserves_totals() {
        let config = solved_config();
        assert!(config.total_chunks() <= 12);
        assert!(config.planned_value() > 0.0);
        assert_eq!(config.epoch(), 3);
        let sum: usize = config.objects().map(|o| config.chunks_for(o).len()).sum();
        assert_eq!(sum as u32, config.total_chunks());
    }

    #[test]
    fn contains_matches_chunks_for() {
        let config = solved_config();
        for object in config.objects() {
            for &index in config.chunks_for(object) {
                assert!(config.contains(ChunkId::new(object, index)));
            }
            assert!(!config.contains(ChunkId::new(object, 200)));
        }
        assert!(!config.contains(ChunkId::new(ObjectId::new(99), 0)));
        assert!(config.chunks_for(ObjectId::new(99)).is_empty());
    }

    #[test]
    fn breakdown_counts_objects_by_chunk_count() {
        let config = solved_config();
        let breakdown = config.breakdown();
        let objects: usize = breakdown.values().sum();
        assert_eq!(objects, config.object_count());
        let chunks: usize = breakdown.iter().map(|(&c, &n)| c * n).sum();
        assert_eq!(chunks as u32, config.total_chunks());
    }

    #[test]
    fn empty_configuration() {
        let config = CacheConfiguration::empty();
        assert_eq!(config.object_count(), 0);
        assert_eq!(config.total_chunks(), 0);
        assert!(config.breakdown().is_empty());
        assert!(!config.contains(ChunkId::new(ObjectId::new(0), 0)));
        assert!(config.tier_for(ChunkId::new(ObjectId::new(0), 0)).is_none());
    }

    fn tiered_config() -> CacheConfiguration {
        let latencies: Vec<Duration> = [80u64, 200, 600, 1400, 3400, 4600]
            .into_iter()
            .map(Duration::from_millis)
            .collect();
        let params = CodingParams::paper_default();
        let manifests: HashMap<ObjectId, _> = [(0u64, 100.0), (1, 10.0)]
            .into_iter()
            .map(|(i, pop)| {
                let object = ObjectId::new(i);
                let locations = (0..12).map(|c| RegionId::new(c % 6)).collect();
                (
                    object,
                    (
                        ObjectManifest::new(object, 1_000_000, 1, params, locations),
                        pop,
                    ),
                )
            })
            .collect();
        let options: HashMap<ObjectId, _> = manifests
            .iter()
            .map(|(&object, (manifest, pop))| {
                (
                    object,
                    generate_options(manifest, &latencies, Duration::from_millis(40), *pop),
                )
            })
            .collect();
        let tiered = KnapsackSolver::new().populate_tiered(&options, 9, 9, |ram| {
            manifests
                .iter()
                .filter_map(|(&object, (manifest, pop))| {
                    let ram_chunks = ram
                        .options()
                        .iter()
                        .find(|o| o.object() == object)
                        .map_or(&[][..], |o| o.chunks());
                    crate::options::generate_disk_options(
                        manifest,
                        &latencies,
                        Duration::from_millis(40),
                        Duration::from_millis(150),
                        ram_chunks,
                        *pop,
                    )
                    .map(|opts| (object, opts))
                })
                .collect()
        });
        CacheConfiguration::from_tiered(tiered.ram(), tiered.disk(), 5)
    }

    #[test]
    fn from_tiered_merges_both_tiers_into_the_union() {
        let config = tiered_config();
        assert_eq!(config.epoch(), 5);
        assert!(config.ram_chunks() > 0);
        assert!(config.disk_chunks() > 0, "disk tier must be used");
        assert_eq!(
            config.ram_chunks() + config.disk_chunks(),
            config.total_chunks()
        );
        let union: usize = config.objects().map(|o| config.chunks_for(o).len()).sum();
        assert_eq!(union as u32, config.total_chunks(), "union holds all");
    }

    #[test]
    fn tier_for_routes_each_configured_chunk() {
        let config = tiered_config();
        let mut ram_seen = 0u32;
        let mut disk_seen = 0u32;
        for object in config.objects() {
            for &index in config.chunks_for(object) {
                let chunk = ChunkId::new(object, index);
                assert!(config.contains(chunk));
                match config.tier_for(chunk) {
                    Some(CacheTier::Ram) => ram_seen += 1,
                    Some(CacheTier::Disk) => {
                        disk_seen += 1;
                        assert!(config.disk_chunks_for(object).contains(&index));
                    }
                    None => panic!("configured chunk {chunk:?} has no tier"),
                }
            }
        }
        assert_eq!(ram_seen, config.ram_chunks());
        assert_eq!(disk_seen, config.disk_chunks());
    }

    #[test]
    fn from_tiered_with_empty_disk_matches_from_knapsack() {
        let ram_only = solved_config();
        let latencies: Vec<Duration> = [80u64, 200, 600, 1400, 3400, 4600]
            .into_iter()
            .map(Duration::from_millis)
            .collect();
        let params = CodingParams::paper_default();
        let options: HashMap<ObjectId, _> = [(0u64, 100.0), (1, 10.0)]
            .into_iter()
            .map(|(i, pop)| {
                let object = ObjectId::new(i);
                let locations = (0..12).map(|c| RegionId::new(c % 6)).collect();
                let manifest = ObjectManifest::new(object, 1_000_000, 1, params, locations);
                (
                    object,
                    generate_options(&manifest, &latencies, Duration::from_millis(40), pop),
                )
            })
            .collect();
        let solved = KnapsackSolver::new().populate(&options, 12);
        let tiered = CacheConfiguration::from_tiered(&solved, &crate::knapsack::Config::empty(), 3);
        assert_eq!(tiered.total_chunks(), ram_only.total_chunks());
        assert_eq!(tiered.planned_value(), ram_only.planned_value());
        assert_eq!(tiered.disk_chunks(), 0);
        for object in ram_only.objects() {
            assert_eq!(tiered.chunks_for(object), ram_only.chunks_for(object));
            assert!(tiered.disk_chunks_for(object).is_empty());
            for &index in ram_only.chunks_for(object) {
                assert_eq!(
                    tiered.tier_for(ChunkId::new(object, index)),
                    Some(CacheTier::Ram)
                );
            }
        }
    }
}
