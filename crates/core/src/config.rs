//! The static cache configuration Agar's cache manager produces
//! (paper §III-c): which objects to cache and which chunks of each.

use crate::knapsack::Config;
use agar_ec::{ChunkId, ObjectId};
use std::collections::{BTreeMap, HashMap};

/// The per-object chunk sets the cache should hold until the next
/// reconfiguration.
#[derive(Clone, Debug, Default)]
pub struct CacheConfiguration {
    per_object: HashMap<ObjectId, Vec<u8>>,
    total_chunks: u32,
    planned_value: f64,
    epoch: u64,
}

impl CacheConfiguration {
    /// The empty configuration (cache nothing).
    pub fn empty() -> Self {
        CacheConfiguration::default()
    }

    /// Converts a solved Knapsack [`Config`] into a cache configuration,
    /// tagging it with the epoch that produced it.
    pub fn from_knapsack(config: &Config, epoch: u64) -> Self {
        let mut per_object = HashMap::with_capacity(config.options().len());
        for option in config.options() {
            per_object.insert(option.object(), option.chunks().to_vec());
        }
        CacheConfiguration {
            per_object,
            total_chunks: config.weight(),
            planned_value: config.value(),
            epoch,
        }
    }

    /// The chunks to cache for `object` (empty when the object is not in
    /// the configuration).
    pub fn chunks_for(&self, object: ObjectId) -> &[u8] {
        self.per_object.get(&object).map_or(&[], Vec::as_slice)
    }

    /// Whether a specific chunk belongs to the configuration.
    pub fn contains(&self, chunk: ChunkId) -> bool {
        self.chunks_for(chunk.object())
            .contains(&chunk.index().value())
    }

    /// Objects in the configuration.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.per_object.keys().copied()
    }

    /// Number of configured objects.
    pub fn object_count(&self) -> usize {
        self.per_object.len()
    }

    /// Total chunks across all objects.
    pub fn total_chunks(&self) -> u32 {
        self.total_chunks
    }

    /// The solver's predicted value (popularity-weighted improvement).
    pub fn planned_value(&self) -> f64 {
        self.planned_value
    }

    /// The epoch that produced this configuration.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Figure 10's breakdown: how many objects are cached with each
    /// chunk count.
    pub fn breakdown(&self) -> BTreeMap<usize, usize> {
        let mut out = BTreeMap::new();
        for chunks in self.per_object.values() {
            *out.entry(chunks.len()).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knapsack::KnapsackSolver;
    use crate::options::generate_options;
    use agar_ec::CodingParams;
    use agar_net::RegionId;
    use agar_store::ObjectManifest;
    use std::time::Duration;

    fn solved_config() -> CacheConfiguration {
        let latencies: Vec<Duration> = [80u64, 200, 600, 1400, 3400, 4600]
            .into_iter()
            .map(Duration::from_millis)
            .collect();
        let params = CodingParams::paper_default();
        let options: HashMap<ObjectId, _> = [(0u64, 100.0), (1, 10.0)]
            .into_iter()
            .map(|(i, pop)| {
                let object = ObjectId::new(i);
                let locations = (0..12).map(|c| RegionId::new(c % 6)).collect();
                let manifest = ObjectManifest::new(object, 1_000_000, 1, params, locations);
                (
                    object,
                    generate_options(&manifest, &latencies, Duration::from_millis(40), pop),
                )
            })
            .collect();
        let solved = KnapsackSolver::new().populate(&options, 12);
        CacheConfiguration::from_knapsack(&solved, 3)
    }

    #[test]
    fn from_knapsack_preserves_totals() {
        let config = solved_config();
        assert!(config.total_chunks() <= 12);
        assert!(config.planned_value() > 0.0);
        assert_eq!(config.epoch(), 3);
        let sum: usize = config.objects().map(|o| config.chunks_for(o).len()).sum();
        assert_eq!(sum as u32, config.total_chunks());
    }

    #[test]
    fn contains_matches_chunks_for() {
        let config = solved_config();
        for object in config.objects() {
            for &index in config.chunks_for(object) {
                assert!(config.contains(ChunkId::new(object, index)));
            }
            assert!(!config.contains(ChunkId::new(object, 200)));
        }
        assert!(!config.contains(ChunkId::new(ObjectId::new(99), 0)));
        assert!(config.chunks_for(ObjectId::new(99)).is_empty());
    }

    #[test]
    fn breakdown_counts_objects_by_chunk_count() {
        let config = solved_config();
        let breakdown = config.breakdown();
        let objects: usize = breakdown.values().sum();
        assert_eq!(objects, config.object_count());
        let chunks: usize = breakdown.iter().map(|(&c, &n)| c * n).sum();
        assert_eq!(chunks as u32, config.total_chunks());
    }

    #[test]
    fn empty_configuration() {
        let config = CacheConfiguration::empty();
        assert_eq!(config.object_count(), 0);
        assert_eq!(config.total_chunks(), 0);
        assert!(config.breakdown().is_empty());
        assert!(!config.contains(ChunkId::new(ObjectId::new(0), 0)));
    }
}
