//! Error type for the Agar core.

use agar_store::StoreError;
use std::error::Error;
use std::fmt;

/// Errors returned by the `agar` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AgarError {
    /// A configuration parameter was invalid.
    InvalidSetting {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// The storage backend failed.
    Store(StoreError),
    /// A read kept racing concurrent writes to the same object: every
    /// retry observed chunks from a newer version than its manifest
    /// snapshot. Practically unreachable without a writer rewriting
    /// the object in a tight loop.
    ReadContention {
        /// The contended object.
        object: agar_ec::ObjectId,
    },
}

impl fmt::Display for AgarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgarError::InvalidSetting { what } => write!(f, "invalid setting: {what}"),
            AgarError::Store(e) => write!(f, "storage error: {e}"),
            AgarError::ReadContention { object } => {
                write!(f, "read of {object} kept racing concurrent writes")
            }
        }
    }
}

impl Error for AgarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AgarError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for AgarError {
    fn from(e: StoreError) -> Self {
        AgarError::Store(e)
    }
}

impl From<agar_ec::EcError> for AgarError {
    fn from(e: agar_ec::EcError) -> Self {
        AgarError::Store(StoreError::Coding(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = AgarError::InvalidSetting { what: "period" };
        assert!(err.to_string().contains("period"));
        assert!(Error::source(&err).is_none());

        let err = AgarError::from(StoreError::InvalidPlacement { what: "x" });
        assert!(err.to_string().contains("storage error"));
        assert!(Error::source(&err).is_some());

        let err = AgarError::ReadContention {
            object: agar_ec::ObjectId::new(4),
        };
        assert!(err.to_string().contains("obj-4"));
        assert!(Error::source(&err).is_none());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<AgarError>();
    }
}
