//! The cluster-facing write hook: object-level cache occupancy events.
//!
//! A single [`AgarNode`](crate::AgarNode) keeps its cache coherent on
//! its own (version validation on read, local invalidation on write).
//! A *cluster* additionally needs to know **which members hold chunks
//! of which objects**, so a write can invalidate exactly the caches
//! that matter instead of broadcasting to every member (the
//! per-object-lease write path in `agar-cluster`, after Nishtala et
//! al., *Scaling Memcache at Facebook*, NSDI 2013).
//!
//! [`CacheEventSink`] is that hook. A cluster deployment installs one
//! per member via
//! [`AgarNode::set_cache_event_sink`](crate::AgarNode::set_cache_event_sink);
//! the node then reports, off its critical path:
//!
//! - [`object_filled`](CacheEventSink::object_filled) — chunks of an
//!   object entered the cache (a stage-6 best-effort fill or an
//!   a-priori reconfiguration download);
//! - [`object_dropped`](CacheEventSink::object_dropped) — the node
//!   dropped every cached chunk of an object on an explicit
//!   invalidation (a reconfiguration's purge deliberately reports no
//!   drops: the event could arrive after a concurrent fill re-inserted
//!   the object, deregistering a member that really holds chunks);
//! - [`object_written`](CacheEventSink::object_written) — the node
//!   itself wrote the object through the backend.
//!
//! The receiving registry must treat its view as a **superset** of
//! true holders: capacity evictions drop chunks silently, so an
//! object can leave the cache without a `object_dropped` event.
//! Invalidating a non-holder is harmless (the version check on read
//! is the correctness backstop either way); the events only make the
//! common case targeted. The one residual skew runs the other way: a
//! best-effort fill racing an explicit invalidation can leave a real
//! holder briefly unregistered — its stale chunks are then swept
//! lazily by the version check on that member's next read of the
//! object instead of by the write's invalidation, never served.

use agar_ec::ObjectId;

/// Observer of a node's object-level cache occupancy and writes (see
/// the module docs). Callbacks run on the node's calling thread and
/// must not call back into the node.
pub trait CacheEventSink: Send + Sync {
    /// At least one chunk of `object` entered this node's cache.
    fn object_filled(&self, object: ObjectId);

    /// This node dropped every cached chunk of `object`.
    fn object_dropped(&self, object: ObjectId);

    /// This node wrote `object` through the backend (its local cache
    /// is already invalidated when this fires).
    fn object_written(&self, object: ObjectId, version: u64);
}
