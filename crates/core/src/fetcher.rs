//! The backend-fetch hook of the read pipeline.
//!
//! The [`ReadPlanner`](crate::planner::ReadPlanner) decides *which*
//! chunks come from the backend; **how** they are fetched is pluggable
//! behind [`ChunkFetcher`]. The default [`DirectFetcher`] issues one
//! store call per chunk, exactly like the pre-hook node. The cluster
//! tier (`agar-cluster`'s `FetchCoordinator`) swaps in a coordinator
//! that coalesces concurrent fetches of the same chunk (single-flight)
//! and batches same-region chunks into one priced round trip.
//!
//! The contract keeps the node's execute stage oblivious to the
//! strategy:
//!
//! - results come back **in request order** (the node folds latency
//!   observations and version checks in that order, which keeps
//!   single-threaded runs bit-deterministic);
//! - a fetcher may stop early after pushing a
//!   [`StoreError::RegionUnavailable`] result — the node re-plans
//!   around the failed region and never looks at the tail;
//! - fetchers are called with **no node lock held**, so they may block
//!   (the single-flight coordinator parks losers until the winner's
//!   fetch completes).

use agar_ec::ChunkId;
use agar_net::RegionId;
use agar_store::{Backend, ChunkFetch, StoreError};
use rand::RngCore;
use std::sync::Arc;

/// One backend fetch the planner scheduled: a chunk, the region the
/// manifest places it in, and the object version the read's manifest
/// snapshot expects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchRequest {
    /// The chunk to fetch.
    pub chunk: ChunkId,
    /// The region holding it (from the plan; the fetcher trusts it).
    pub region: RegionId,
    /// The manifest version this read is decoding. Fetchers use it to
    /// discriminate in-flight fetches (a reader planning against a
    /// newer manifest must never share a stale flight's result) and to
    /// stop early when a concurrent write is detected.
    pub version: u64,
}

/// Strategy for executing the backend-fetch portion of a read plan.
pub trait ChunkFetcher: Send + Sync {
    /// Fetches the requested chunks on behalf of a client in
    /// `client_region`, returning one result per request **in request
    /// order**. Implementations may return early after a
    /// [`StoreError::RegionUnavailable`] entry; every preceding
    /// request must still carry its result.
    fn fetch(
        &self,
        client_region: RegionId,
        requests: &[FetchRequest],
        rng: &mut dyn RngCore,
    ) -> Vec<(FetchRequest, Result<ChunkFetch, StoreError>)>;
}

/// The default strategy: one store round trip per chunk,
/// short-circuiting on the first unavailable region (the node re-plans
/// immediately) and on the first version mismatch (the node abandons
/// the attempt for a fresh manifest) — fetching the tail would be
/// wasted work either way, and stopping exactly where the pre-hook
/// node stopped keeps its RNG draw sequence identical.
pub struct DirectFetcher {
    backend: Arc<Backend>,
}

impl DirectFetcher {
    /// Creates a direct fetcher against `backend`.
    pub fn new(backend: Arc<Backend>) -> Self {
        DirectFetcher { backend }
    }
}

impl ChunkFetcher for DirectFetcher {
    fn fetch(
        &self,
        client_region: RegionId,
        requests: &[FetchRequest],
        rng: &mut dyn RngCore,
    ) -> Vec<(FetchRequest, Result<ChunkFetch, StoreError>)> {
        let mut results = Vec::with_capacity(requests.len());
        for &request in requests {
            let outcome = self.backend.fetch_chunk(client_region, request.chunk, rng);
            let stop = match &outcome {
                // The caller re-plans around the failed region.
                Err(StoreError::RegionUnavailable { .. }) => true,
                // A write raced the read; the caller restarts on a
                // fresh manifest.
                Ok(fetch) => fetch.version != request.version,
                Err(_) => false,
            };
            results.push((request, outcome));
            if stop {
                break; // the tail would be wasted work
            }
        }
        results
    }
}

impl std::fmt::Debug for DirectFetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectFetcher").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::{CodingParams, ObjectId};
    use agar_net::{ConstantLatency, Topology};
    use agar_store::{populate, RoundRobin};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn backend() -> Arc<Backend> {
        let names: Vec<String> = (0..3).map(|i| format!("r{i}")).collect();
        let backend = Backend::new(
            Topology::from_names(names),
            Arc::new(ConstantLatency::new(Duration::from_millis(10))),
            CodingParams::new(4, 2).unwrap(),
            Box::new(RoundRobin),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        populate(&backend, 1, 8, &mut rng).unwrap();
        Arc::new(backend)
    }

    fn request(backend: &Backend, index: u8) -> FetchRequest {
        let object = ObjectId::new(0);
        let manifest = backend.manifest(object).unwrap();
        FetchRequest {
            chunk: ChunkId::new(object, index),
            region: manifest.location(index as usize),
            version: manifest.version(),
        }
    }

    #[test]
    fn direct_fetcher_returns_results_in_request_order() {
        let backend = backend();
        let fetcher = DirectFetcher::new(Arc::clone(&backend));
        let requests = [request(&backend, 3), request(&backend, 0)];
        let mut rng = StdRng::seed_from_u64(1);
        let results = fetcher.fetch(RegionId::new(0), &requests, &mut rng);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, requests[0]);
        assert_eq!(results[1].0, requests[1]);
        assert!(results.iter().all(|(_, r)| r.is_ok()));
    }

    #[test]
    fn direct_fetcher_short_circuits_on_unavailable_regions() {
        let backend = backend();
        backend.fail_region(RegionId::new(1)); // chunks 1 and 4 live here
        let fetcher = DirectFetcher::new(Arc::clone(&backend));
        let requests = [
            request(&backend, 0),
            request(&backend, 1),
            request(&backend, 2),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let results = fetcher.fetch(RegionId::new(0), &requests, &mut rng);
        // Chunk 0 fetched, chunk 1 errored, chunk 2 never attempted.
        assert_eq!(results.len(), 2);
        assert!(results[0].1.is_ok());
        assert!(matches!(
            results[1].1,
            Err(StoreError::RegionUnavailable { .. })
        ));
    }

    #[test]
    fn direct_fetcher_short_circuits_on_version_races() {
        let backend = backend();
        let fetcher = DirectFetcher::new(Arc::clone(&backend));
        // Requests planned against version 1, but a write bumped the
        // object to version 2: the first mismatching fetch ends the
        // attempt, exactly like the pre-hook execute loop.
        let requests = [
            request(&backend, 0),
            request(&backend, 1),
            request(&backend, 2),
        ];
        let mut rng = StdRng::seed_from_u64(2);
        backend
            .put_object(RegionId::new(0), ObjectId::new(0), &[7; 8], &mut rng)
            .unwrap();
        let results = fetcher.fetch(RegionId::new(0), &requests, &mut rng);
        assert_eq!(results.len(), 1, "stop at the first stale fetch");
        assert_eq!(results[0].1.as_ref().unwrap().version, 2);
    }
}
