//! The cache-configuration Knapsack solver (the paper's §IV-B,
//! Figures 4 & 5).
//!
//! Choosing which erasure-coded chunks to cache is a 0/1-Knapsack
//! variant: at most one caching option per object, weights are chunk
//! counts, values are popularity-weighted latency improvements. The
//! paper adapts the classic dynamic program with two improvement moves:
//!
//! - **Addition** — append an option to an existing intermediate
//!   configuration, producing a heavier configuration;
//! - **Relaxation** ([`relax`]) — shrink an option already in the
//!   configuration to a lower weight of the same object, using the freed
//!   space for the new option, keeping total weight constant.
//!
//! Documented deviations from the paper's pseudocode (see DESIGN.md §2):
//! weight keys are snapshotted per option (the pseudocode mutates `MaxV`
//! while iterating it), an option is never added to a configuration that
//! already caches its object (the pseudocode would double-count), and
//! the final answer is the best configuration of weight ≤ capacity
//! rather than exactly capacity.
//!
//! A greedy value-density solver and an exhaustive optimum are included
//! as baselines: §II-D argues greedy can err by as much as 50%, and the
//! tests verify the dynamic program dominates greedy and matches the
//! optimum on small instances.

use crate::options::{CachingOption, ObjectOptions};
use agar_ec::ObjectId;
use std::collections::{BTreeMap, HashMap};

/// An intermediate or final cache configuration: at most one caching
/// option per object.
#[derive(Clone, Debug, Default)]
pub struct Config {
    options: Vec<CachingOption>,
    weight: u32,
    value: f64,
}

impl Config {
    /// The empty configuration.
    pub fn empty() -> Self {
        Config::default()
    }

    /// Total weight in chunks.
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// Total popularity-weighted latency improvement.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The chosen options.
    pub fn options(&self) -> &[CachingOption] {
        &self.options
    }

    /// Whether an option for `object` is already present.
    pub fn contains_object(&self, object: ObjectId) -> bool {
        self.options.iter().any(|o| o.object() == object)
    }

    fn push(&mut self, option: CachingOption) {
        debug_assert!(!self.contains_object(option.object()));
        self.weight += option.weight();
        self.value += option.value();
        self.options.push(option);
    }

    /// Replaces this configuration's option for `option.object()` (if
    /// any) with `option`, returning the new configuration.
    fn with_option(&self, option: CachingOption) -> Config {
        match self
            .options
            .iter()
            .position(|o| o.object() == option.object())
        {
            Some(index) => self.replace_and_add(index, None, option),
            None => {
                let mut extended = self.clone();
                extended.push(option);
                extended
            }
        }
    }

    /// Replaces the option at `index` with `replacement` (possibly `None`
    /// for full eviction) and appends `addition`.
    fn replace_and_add(
        &self,
        index: usize,
        replacement: Option<CachingOption>,
        addition: CachingOption,
    ) -> Config {
        let mut options = Vec::with_capacity(self.options.len() + 1);
        for (i, option) in self.options.iter().enumerate() {
            if i == index {
                continue;
            }
            options.push(option.clone());
        }
        if let Some(r) = replacement {
            options.push(r);
        }
        options.push(addition);
        let weight = options.iter().map(CachingOption::weight).sum();
        let value = options.iter().map(CachingOption::value).sum();
        Config {
            options,
            weight,
            value,
        }
    }
}

/// The relaxation move (paper Figure 5): try to make room for `option`
/// by shrinking one existing option of the configuration to a lower
/// weight of the same object, keeping the configuration's total weight
/// unchanged. Returns the improved configuration if any replacement
/// raises the value.
pub fn relax(
    config: &Config,
    option: &CachingOption,
    all_options: &HashMap<ObjectId, ObjectOptions>,
) -> Option<Config> {
    if config.contains_object(option.object()) {
        return None;
    }
    let mut best: Option<Config> = None;
    let mut best_value = config.value();
    for (index, old) in config.options().iter().enumerate() {
        if old.weight() < option.weight() {
            continue; // cannot free enough space
        }
        let shrunk_weight = old.weight() - option.weight();
        // SEARCHOPTION: the same object's option at the reduced weight;
        // weight 0 means full eviction (an implicit empty option).
        let replacement = if shrunk_weight == 0 {
            None
        } else {
            match all_options
                .get(&old.object())
                .and_then(|opts| opts.by_weight(shrunk_weight))
            {
                Some(o) => Some(o.clone()),
                None => continue,
            }
        };
        let replacement_value = replacement.as_ref().map_or(0.0, CachingOption::value);
        let candidate_value = config.value() - old.value() + replacement_value + option.value();
        if candidate_value > best_value + 1e-9 {
            best_value = candidate_value;
            best = Some(config.replace_and_add(index, replacement, option.clone()));
        }
    }
    best
}

/// Dynamic-programming solver for the cache configuration (paper
/// Figure 4).
#[derive(Clone, Debug)]
pub struct KnapsackSolver {
    /// §VI optimisation: stop after this many additional keys once a
    /// configuration of full capacity weight first exists. `None` runs
    /// the dynamic program to completion.
    stop_keys_after_full: Option<usize>,
    /// Number of sweeps over the option list. The paper's single-table
    /// RELAX can destroy a configuration that a later option needed to
    /// extend; a second sweep recovers most such losses (DESIGN.md
    /// deviation list). The result remains an approximation, as the
    /// paper itself acknowledges (§VII-B).
    passes: usize,
}

impl Default for KnapsackSolver {
    fn default() -> Self {
        KnapsackSolver {
            stop_keys_after_full: None,
            passes: 2,
        }
    }
}

impl KnapsackSolver {
    /// The default solver: full run, two sweeps.
    pub fn new() -> Self {
        KnapsackSolver::default()
    }

    /// Overrides the number of sweeps over the option list (minimum 1).
    /// One sweep is the paper's literal single-pass table.
    #[must_use]
    pub fn with_passes(mut self, passes: usize) -> Self {
        self.passes = passes.max(1);
        self
    }

    /// Enables the paper's §VI early-termination heuristic: the run
    /// stops `keys` keys after a configuration of exactly the capacity
    /// weight first appears, making runtime independent of catalogue
    /// size.
    #[must_use]
    pub fn with_early_termination(mut self, keys: usize) -> Self {
        self.stop_keys_after_full = Some(keys);
        self
    }

    /// Computes the best configuration of weight ≤ `capacity` chunks.
    ///
    /// `POPULATE` from the paper: iterate objects in decreasing
    /// best-value order; for each of the object's options, first try to
    /// relax every intermediate configuration, then try to extend every
    /// intermediate configuration by addition.
    pub fn populate(
        &self,
        all_options: &HashMap<ObjectId, ObjectOptions>,
        capacity: u32,
    ) -> Config {
        let mut max_v: BTreeMap<u32, Config> = BTreeMap::new();
        max_v.insert(0, Config::empty());
        if capacity == 0 {
            return Config::empty();
        }

        // Keys in decreasing value order (ORDERBY in the paper).
        let mut keys: Vec<&ObjectOptions> = all_options.values().collect();
        keys.sort_by(|a, b| {
            b.best_value()
                .partial_cmp(&a.best_value())
                .expect("option values are finite")
                .then(a.object().cmp(&b.object()))
        });

        // Uncontended fast path: when every object's best option fits in
        // the budget simultaneously, the per-object choices are
        // independent and taking each object's maximum-value option is
        // exactly optimal — no dynamic program needed. This is the
        // common shape of the *disk* phase of a two-tier solve, where
        // the tier is sized to hold most of what RAM rejected. Value
        // ties break towards the heavier option, matching the dynamic
        // program below (its final scan keeps the last — heaviest —
        // configuration among equal values): a free upgrade to more
        // cached chunks at identical modelled value.
        let best_per_object: Vec<&CachingOption> = keys
            .iter()
            .filter_map(|opts| {
                opts.iter()
                    .filter(|o| o.value() > 0.0 && o.weight() > 0)
                    .max_by(|a, b| {
                        a.value()
                            .partial_cmp(&b.value())
                            .expect("option values are finite")
                            .then(a.weight().cmp(&b.weight()))
                    })
            })
            .collect();
        let best_total: u64 = best_per_object.iter().map(|o| u64::from(o.weight())).sum();
        if best_total <= u64::from(capacity) {
            let mut config = Config::empty();
            for option in best_per_object {
                config.push(option.clone());
            }
            return config;
        }

        let mut keys_since_full: usize = 0;
        let mut seen_full = false;

        for object_options in keys.iter().cycle().take(keys.len() * self.passes) {
            for option in object_options.iter() {
                if option.weight() > capacity {
                    continue;
                }
                // Relaxation pass: improve configurations in place
                // (weight unchanged).
                let weights: Vec<u32> = max_v.keys().copied().collect();
                for w in &weights {
                    let config = &max_v[w];
                    if let Some(improved) = relax(config, option, all_options) {
                        debug_assert_eq!(improved.weight(), *w);
                        max_v.insert(*w, improved);
                    }
                }
                // Addition pass: extend configurations to new weights.
                // When the configuration already holds an option for the
                // same object, this becomes a *replacement* (upgrade or
                // downgrade) — without it a small option admitted early
                // could never grow, and the DP would miss optima the
                // exhaustive solver finds (DESIGN.md deviation list).
                // Weights are visited in DESCENDING order, the classic
                // 0/1-knapsack trick: additions only ever target heavier
                // weights, so no configuration is overwritten before the
                // pass has extended it.
                let weights: Vec<u32> = max_v.keys().rev().copied().collect();
                for w in weights {
                    // Price the candidate without materialising it: the
                    // clone inside `with_option` dominates solver runtime
                    // when configurations hold hundreds of options, and
                    // almost every candidate loses the comparison below.
                    let base = &max_v[&w];
                    let (new_weight, new_value) =
                        match base.options.iter().find(|o| o.object() == option.object()) {
                            Some(old) => (
                                w - old.weight() + option.weight(),
                                base.value() - old.value() + option.value(),
                            ),
                            None => (w + option.weight(), base.value() + option.value()),
                        };
                    if new_weight > capacity || new_weight == w {
                        continue;
                    }
                    let should_replace = max_v
                        .get(&new_weight)
                        .is_none_or(|existing| existing.value() < new_value - 1e-12);
                    if should_replace {
                        let candidate = max_v[&w].with_option(option.clone());
                        debug_assert_eq!(candidate.weight(), new_weight);
                        max_v.insert(new_weight, candidate);
                    }
                }
            }

            if let Some(stop_after) = self.stop_keys_after_full {
                if seen_full {
                    keys_since_full += 1;
                    if keys_since_full >= stop_after {
                        break;
                    }
                } else if max_v.contains_key(&capacity) {
                    seen_full = true;
                }
            }
        }

        max_v
            .into_values()
            .max_by(|a, b| {
                a.value()
                    .partial_cmp(&b.value())
                    .expect("config values are finite")
            })
            .unwrap_or_default()
    }
}

/// The outcome of a two-budget solve: one configuration per cache tier.
///
/// The RAM configuration is exactly what [`KnapsackSolver::populate`]
/// would produce on its own (the disk phase never perturbs it), so a
/// deployment with `disk_capacity = 0` stays byte-identical to the
/// single-tier engine.
#[derive(Clone, Debug, Default)]
pub struct TieredConfig {
    ram: Config,
    disk: Config,
}

impl TieredConfig {
    /// The RAM-tier configuration (phase 1).
    pub fn ram(&self) -> &Config {
        &self.ram
    }

    /// The disk-tier configuration (phase 2).
    pub fn disk(&self) -> &Config {
        &self.disk
    }

    /// Total weight across both tiers.
    pub fn total_weight(&self) -> u32 {
        self.ram.weight() + self.disk.weight()
    }

    /// Total planned value across both tiers.
    pub fn total_value(&self) -> f64 {
        self.ram.value() + self.disk.value()
    }
}

impl KnapsackSolver {
    /// Two-budget solve over a RAM tier and a disk tier.
    ///
    /// Phase 1 runs the paper's dynamic program verbatim over
    /// `ram_options` against `ram_capacity`. Phase 2 asks
    /// `disk_options_for` for disk-tier options *conditioned on* the
    /// phase-1 allocation (the remaining chunks and the residual
    /// latencies they leave behind — see
    /// [`crate::options::generate_disk_options`]) and runs the same
    /// dynamic program against `disk_capacity`. The sequential
    /// decomposition is deliberate: RAM strictly dominates disk on
    /// latency, so any chunk worth a RAM slot is worth it regardless of
    /// what lands on disk, and conditioning phase 2 on phase 1 keeps
    /// the two allocations disjoint by construction.
    ///
    /// With `disk_capacity == 0` the closure is never called and the
    /// disk configuration is empty.
    pub fn populate_tiered(
        &self,
        ram_options: &HashMap<ObjectId, ObjectOptions>,
        ram_capacity: u32,
        disk_capacity: u32,
        disk_options_for: impl FnOnce(&Config) -> HashMap<ObjectId, ObjectOptions>,
    ) -> TieredConfig {
        let ram = self.populate(ram_options, ram_capacity);
        let disk = if disk_capacity == 0 {
            Config::empty()
        } else {
            let disk_options = disk_options_for(&ram);
            self.populate(&disk_options, disk_capacity)
        };
        TieredConfig { ram, disk }
    }
}

/// Greedy baseline: sort all options by value density (value per chunk)
/// and take the best-density option per object that still fits. §II-D
/// explains why this can be far from optimal.
pub fn greedy(all_options: &HashMap<ObjectId, ObjectOptions>, capacity: u32) -> Config {
    let mut candidates: Vec<&CachingOption> = all_options
        .values()
        .flat_map(ObjectOptions::iter)
        .filter(|o| o.weight() > 0 && o.value() > 0.0)
        .collect();
    candidates.sort_by(|a, b| {
        let da = a.value() / a.weight() as f64;
        let db = b.value() / b.weight() as f64;
        db.partial_cmp(&da)
            .expect("densities are finite")
            .then(a.object().cmp(&b.object()))
            .then(a.weight().cmp(&b.weight()))
    });
    let mut config = Config::empty();
    for option in candidates {
        if config.contains_object(option.object()) {
            continue;
        }
        if config.weight() + option.weight() <= capacity {
            config.push(option.clone());
        }
    }
    config
}

/// Exhaustive optimum for small instances (tests and ablations): tries
/// every combination of at most one option per object.
///
/// Runtime is `O((k + 1)^objects)`; intended for ≤ ~6 objects.
pub fn exhaustive_optimum(all_options: &HashMap<ObjectId, ObjectOptions>, capacity: u32) -> Config {
    let objects: Vec<&ObjectOptions> = {
        let mut v: Vec<&ObjectOptions> = all_options.values().collect();
        v.sort_by_key(|o| o.object());
        v
    };
    let mut best = Config::empty();
    let mut stack: Vec<(usize, Config)> = vec![(0, Config::empty())];
    while let Some((index, config)) = stack.pop() {
        if config.value() > best.value() {
            best = config.clone();
        }
        if index == objects.len() {
            continue;
        }
        // Skip this object.
        stack.push((index + 1, config.clone()));
        // Or take each of its options.
        for option in objects[index].iter() {
            if config.weight() + option.weight() <= capacity {
                let mut extended = config.clone();
                extended.push(option.clone());
                stack.push((index + 1, extended));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::generate_options;
    use agar_ec::CodingParams;
    use agar_net::RegionId;
    use agar_store::ObjectManifest;
    use std::time::Duration;

    /// Builds per-object options on the paper's Table I deployment with
    /// the given per-object popularities.
    fn build_options(popularities: &[f64]) -> HashMap<ObjectId, ObjectOptions> {
        let latencies: Vec<Duration> = [80u64, 200, 600, 1400, 3400, 4600]
            .into_iter()
            .map(Duration::from_millis)
            .collect();
        let params = CodingParams::paper_default();
        popularities
            .iter()
            .enumerate()
            .map(|(i, &pop)| {
                let object = ObjectId::new(i as u64);
                let locations = (0..12).map(|c| RegionId::new(c % 6)).collect();
                let manifest = ObjectManifest::new(object, 1_000_000, 1, params, locations);
                (
                    object,
                    generate_options(&manifest, &latencies, Duration::from_millis(40), pop),
                )
            })
            .collect()
    }

    #[test]
    fn zero_capacity_yields_empty_config() {
        let options = build_options(&[10.0, 5.0]);
        let config = KnapsackSolver::new().populate(&options, 0);
        assert_eq!(config.weight(), 0);
        assert_eq!(config.value(), 0.0);
        assert!(config.options().is_empty());
    }

    #[test]
    fn single_object_takes_best_affordable_weight() {
        let options = build_options(&[10.0]);
        // Capacity 9: full replica is affordable and most valuable.
        let config = KnapsackSolver::new().populate(&options, 9);
        assert_eq!(config.options().len(), 1);
        assert_eq!(config.weight(), 9);
        // Capacity 4: weight-3 option is the best (weight 4 adds nothing).
        let config = KnapsackSolver::new().populate(&options, 4);
        assert_eq!(config.value(), 10.0 * 2800.0);
    }

    #[test]
    fn never_exceeds_capacity() {
        let options = build_options(&[10.0, 8.0, 6.0, 4.0, 2.0]);
        for capacity in [0u32, 1, 3, 7, 10, 20, 45, 100] {
            let config = KnapsackSolver::new().populate(&options, capacity);
            assert!(config.weight() <= capacity, "capacity {capacity}");
        }
    }

    #[test]
    fn at_most_one_option_per_object() {
        let options = build_options(&[10.0, 8.0, 6.0]);
        let config = KnapsackSolver::new().populate(&options, 18);
        let mut seen = std::collections::HashSet::new();
        for option in config.options() {
            assert!(seen.insert(option.object()), "duplicate object in config");
        }
    }

    #[test]
    fn dp_matches_exhaustive_optimum_on_small_instances() {
        for (pops, capacity) in [
            (vec![10.0, 8.0], 9u32),
            (vec![10.0, 8.0, 6.0], 12),
            (vec![10.0, 1.0, 1.0, 1.0], 15),
            (vec![5.0, 5.0, 5.0], 7),
            (vec![100.0, 1.0], 10),
        ] {
            let options = build_options(&pops);
            let dp = KnapsackSolver::new().populate(&options, capacity);
            let opt = exhaustive_optimum(&options, capacity);
            assert!(
                (dp.value() - opt.value()).abs() < 1e-6,
                "pops {pops:?} capacity {capacity}: dp {} vs optimum {}",
                dp.value(),
                opt.value()
            );
        }
    }

    #[test]
    fn dp_dominates_greedy() {
        for (pops, capacity) in [
            (vec![10.0, 9.0, 8.0, 2.0], 12u32),
            (vec![10.0, 8.0, 6.0, 4.0, 2.0], 18),
            (vec![3.0, 3.0, 3.0, 3.0], 10),
        ] {
            let options = build_options(&pops);
            let dp = KnapsackSolver::new().populate(&options, capacity);
            let g = greedy(&options, capacity);
            assert!(
                dp.value() >= g.value() - 1e-9,
                "pops {pops:?} capacity {capacity}: dp {} < greedy {}",
                dp.value(),
                g.value()
            );
        }
    }

    #[test]
    fn popular_objects_get_more_chunks() {
        let options = build_options(&[100.0, 1.0]);
        // Room for one full replica plus a small option.
        let config = KnapsackSolver::new().populate(&options, 12);
        let hot = config
            .options()
            .iter()
            .find(|o| o.object() == ObjectId::new(0))
            .expect("hot object cached");
        let cold = config
            .options()
            .iter()
            .find(|o| o.object() == ObjectId::new(1));
        assert!(hot.weight() >= 7, "hot object got {} chunks", hot.weight());
        if let Some(cold) = cold {
            assert!(cold.weight() <= hot.weight());
        }
    }

    #[test]
    fn relax_shrinks_existing_entries_when_profitable() {
        let options = build_options(&[10.0, 9.9]);
        // Capacity 9 fits one full replica; equal-ish popularity means
        // two partial allocations (e.g. 3 + 5 or similar) beat 9 + 0:
        // weight 3 already captures 2800/3360 of the improvement.
        let config = KnapsackSolver::new().populate(&options, 9);
        assert!(config.options().len() == 2, "expected a split allocation");
        // And the split must beat the single full replica.
        assert!(config.value() > 10.0 * 3360.0);
    }

    #[test]
    fn relax_function_direct() {
        let options = build_options(&[10.0, 8.0]);
        let obj0 = ObjectId::new(0);
        let obj1 = ObjectId::new(1);
        // Config holding object 0 at weight 9.
        let mut config = Config::empty();
        config.push(options[&obj0].by_weight(9).unwrap().clone());
        // Relaxing with object 1's weight-3 option shrinks object 0 to 6.
        let incoming = options[&obj1].by_weight(3).unwrap();
        let improved = relax(&config, incoming, &options).expect("relaxation profitable");
        assert_eq!(improved.weight(), 9);
        assert!(improved.value() > config.value());
        assert!(improved.contains_object(obj1));
        // Relaxing with an option for an object already present: no-op.
        assert!(relax(&improved, options[&obj0].by_weight(1).unwrap(), &options).is_none());
    }

    #[test]
    fn early_termination_still_respects_capacity_and_quality() {
        let options = build_options(&[10.0, 8.0, 6.0, 4.0, 2.0, 1.0]);
        let exact = KnapsackSolver::new().populate(&options, 18);
        let fast = KnapsackSolver::new()
            .with_early_termination(2)
            .populate(&options, 18);
        assert!(fast.weight() <= 18);
        // The heuristic may lose some value but not most of it.
        assert!(
            fast.value() >= 0.8 * exact.value(),
            "fast {} vs exact {}",
            fast.value(),
            exact.value()
        );
    }

    #[test]
    fn greedy_fills_by_density() {
        let options = build_options(&[10.0, 1.0]);
        let config = greedy(&options, 9);
        assert!(config.weight() <= 9);
        assert!(config.value() > 0.0);
        // Highest-density option for the hot object must be present.
        assert!(config.contains_object(ObjectId::new(0)));
    }

    #[test]
    fn exhaustive_respects_capacity() {
        let options = build_options(&[10.0, 8.0]);
        let best = exhaustive_optimum(&options, 5);
        assert!(best.weight() <= 5);
    }

    /// Disk-option generation mirroring the cache manager's wiring: the
    /// RAM allocation per object conditions the second-phase options.
    fn disk_options_after(
        ram: &Config,
        popularities: &[f64],
        disk_read: Duration,
    ) -> HashMap<ObjectId, ObjectOptions> {
        let latencies: Vec<Duration> = [80u64, 200, 600, 1400, 3400, 4600]
            .into_iter()
            .map(Duration::from_millis)
            .collect();
        let params = CodingParams::paper_default();
        popularities
            .iter()
            .enumerate()
            .filter_map(|(i, &pop)| {
                let object = ObjectId::new(i as u64);
                let locations = (0..12).map(|c| RegionId::new(c % 6)).collect();
                let manifest = ObjectManifest::new(object, 1_000_000, 1, params, locations);
                let ram_chunks = ram
                    .options()
                    .iter()
                    .find(|o| o.object() == object)
                    .map_or(&[][..], |o| o.chunks());
                crate::options::generate_disk_options(
                    &manifest,
                    &latencies,
                    Duration::from_millis(40),
                    disk_read,
                    ram_chunks,
                    pop,
                )
                .map(|opts| (object, opts))
            })
            .collect()
    }

    #[test]
    fn tiered_solve_places_chunks_in_both_tiers() {
        let pops = [10.0, 8.0];
        let options = build_options(&pops);
        let solver = KnapsackSolver::new();
        let tiered = solver.populate_tiered(&options, 9, 18, |ram| {
            disk_options_after(ram, &pops, Duration::from_millis(150))
        });
        // Phase 1 is byte-identical to the plain solve.
        let plain = solver.populate(&options, 9);
        assert_eq!(tiered.ram().weight(), plain.weight());
        assert_eq!(tiered.ram().value(), plain.value());
        // The disk tier picks up chunks RAM could not afford.
        assert!(tiered.disk().weight() > 0, "disk tier must place chunks");
        assert!(tiered.disk().weight() <= 18);
        assert!(tiered.total_value() > plain.value());
        // Per object, RAM and disk allocations never overlap.
        for disk_option in tiered.disk().options() {
            let ram_chunks = tiered
                .ram()
                .options()
                .iter()
                .find(|o| o.object() == disk_option.object())
                .map_or(&[][..], |o| o.chunks());
            for chunk in disk_option.chunks() {
                assert!(
                    !ram_chunks.contains(chunk),
                    "chunk {chunk} placed in both tiers"
                );
            }
        }
    }

    #[test]
    fn zero_disk_capacity_skips_the_disk_phase() {
        let options = build_options(&[10.0, 8.0]);
        let tiered = KnapsackSolver::new().populate_tiered(&options, 9, 0, |_| {
            panic!("disk phase must not run with zero capacity")
        });
        assert_eq!(tiered.disk().weight(), 0);
        assert!(tiered.disk().options().is_empty());
        let plain = KnapsackSolver::new().populate(&options, 9);
        assert_eq!(tiered.ram().value(), plain.value());
        assert_eq!(tiered.total_weight(), plain.weight());
        assert_eq!(tiered.total_value(), plain.value());
    }

    #[test]
    fn config_accessors() {
        let config = Config::empty();
        assert_eq!(config.weight(), 0);
        assert_eq!(config.value(), 0.0);
        assert!(config.options().is_empty());
        assert!(!config.contains_object(ObjectId::new(0)));
    }
}
