//! # agar — a caching system for erasure-coded data
//!
//! A from-scratch Rust reproduction of **Agar** (Raluca Halalai, Pascal
//! Felber, Anne-Marie Kermarrec, François Taïani — ICDCS 2017): a caching
//! layer for geo-distributed, erasure-coded object stores that decides
//! not only *which objects* to cache but *how many erasure-coded chunks*
//! of each, by solving a 0/1-Knapsack-style optimisation with dynamic
//! programming.
//!
//! The crate mirrors the paper's Figure 3 architecture:
//!
//! - [`RequestMonitor`] (§III-b) — per-object popularity via an
//!   exponentially weighted moving average (α = 0.8);
//! - [`RegionManager`] (§III-a) — per-region chunk-read latency
//!   estimates from warm-up probes and live observations;
//! - [`options`] (§IV-A) — caching-option generation: discard the `m`
//!   furthest chunks, cache from the most distant remaining sites in,
//!   value = popularity × latency improvement;
//! - [`knapsack`] (§IV-B, Figures 4 & 5) — the POPULATE dynamic program
//!   with the RELAX move, plus greedy and exhaustive baselines;
//! - [`CacheManager`] (§III-c) — periodic reconfiguration;
//! - [`AgarNode`] — the per-region deployment: hint-driven reads,
//!   partial cache hits, off-critical-path cache fill;
//! - [`baselines`] (§V-A) — the LRU-c / LFU-c / Backend clients the
//!   paper compares against;
//! - [`coherence`] (§VI) — the write-support extension the paper
//!   sketches as future work;
//! - [`fetcher`] — the pluggable backend-fetch strategy: per-chunk
//!   direct fetches by default, swapped for the `agar-cluster`
//!   coordinator (single-flight coalescing + region-batched round
//!   trips) in multi-node deployments. Cache collaboration between
//!   nodes (the paper's §VI sketch) lives in `agar-cluster`'s
//!   consistent-hash-routed `ClusterRouter`;
//! - [`events`] — the cluster write hook: a node reports object-level
//!   cache fills/drops/writes to an installed [`CacheEventSink`], so
//!   the cluster's write path can invalidate only the members that
//!   actually hold chunks of the written object.
//!
//! # Examples
//!
//! Build a six-region deployment, warm it, and watch Agar beat a cold
//! read:
//!
//! ```
//! use agar::{AgarNode, AgarSettings, CachingClient};
//! use agar_ec::{CodingParams, ObjectId};
//! use agar_net::presets::{aws_six_regions, FRANKFURT};
//! use agar_store::{populate, Backend, RoundRobin};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let preset = aws_six_regions();
//! let backend = Arc::new(Backend::new(
//!     preset.topology,
//!     Arc::new(preset.latency),
//!     CodingParams::paper_default(),
//!     Box::new(RoundRobin),
//! )?);
//! let mut rng = StdRng::seed_from_u64(0);
//! populate(&backend, 10, 9_000, &mut rng)?;
//!
//! let node = AgarNode::new(
//!     FRANKFURT,
//!     backend,
//!     AgarSettings::paper_default(9_000), // fits one full object
//!     42,
//! )?;
//! let object = ObjectId::new(0);
//! let cold = node.read(object)?;
//! for _ in 0..20 { node.read(object)?; }
//! node.force_reconfigure();
//! node.read(object)?; // fills the cache
//! let warm = node.read(object)?;
//! assert!(warm.latency < cold.latency);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod approx_monitor;
pub mod baselines;
pub mod breaker;
pub mod cache_manager;
pub mod coherence;
pub mod config;
pub mod error;
pub mod events;
pub mod fetcher;
pub mod knapsack;
pub mod monitor;
pub mod node;
pub mod options;
pub mod planner;
pub mod region_manager;
pub mod retry;

pub use approx_monitor::ApproxRequestMonitor;
pub use baselines::{BackendOnlyClient, BaselinePolicy, FixedChunksClient};
pub use breaker::{BreakerPolicy, CircuitBreaker};
pub use cache_manager::CacheManager;
pub use coherence::WriteCoordinator;
pub use config::CacheConfiguration;
pub use error::AgarError;
pub use events::CacheEventSink;
pub use fetcher::{ChunkFetcher, DirectFetcher, FetchRequest};
pub use knapsack::{exhaustive_optimum, greedy, relax, Config, KnapsackSolver, TieredConfig};
pub use monitor::RequestMonitor;
pub use node::{AgarNode, AgarSettings, CachingClient, CollabReadMetrics, ReadMetrics};
pub use options::{generate_disk_options, generate_options, CachingOption, ObjectOptions};
pub use planner::{
    ChunkSet, ChunkSource, HedgePolicy, LocalHits, ReadPlan, ReadPlanner, RemoteChunk,
};
pub use region_manager::RegionManager;
pub use retry::RetryPolicy;
