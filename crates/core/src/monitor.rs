//! The request monitor (paper §III-b).
//!
//! Listens to every client request, counts per-object access frequencies
//! over a fixed epoch, and maintains an exponentially weighted moving
//! average of popularity:
//!
//! ```text
//! popularity_i(key) = α · freq_i(key) + (1 − α) · popularity_{i−1}(key)
//! ```
//!
//! with α = 0.8 in the paper's experiments.

use agar_ec::ObjectId;
use std::collections::{BTreeSet, HashMap};

/// Per-object popularity tracking with epoch-based EWMA.
#[derive(Clone, Debug)]
pub struct RequestMonitor {
    alpha: f64,
    current_epoch_freq: HashMap<ObjectId, u64>,
    popularity: HashMap<ObjectId, f64>,
    epoch: u64,
    total_requests: u64,
    /// Popularities below this are dropped at epoch end to keep the
    /// tracked set bounded.
    prune_threshold: f64,
}

impl RequestMonitor {
    /// The paper's EWMA weighting coefficient.
    pub const PAPER_ALPHA: f64 = 0.8;

    /// Creates a monitor with the paper's α = 0.8.
    pub fn new() -> Self {
        Self::with_alpha(Self::PAPER_ALPHA)
    }

    /// Creates a monitor with a custom α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        RequestMonitor {
            alpha,
            current_epoch_freq: HashMap::new(),
            popularity: HashMap::new(),
            epoch: 0,
            total_requests: 0,
            prune_threshold: 1e-3,
        }
    }

    /// The configured α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records one request for `object`.
    pub fn record_read(&mut self, object: ObjectId) {
        *self.current_epoch_freq.entry(object).or_insert(0) += 1;
        self.total_requests += 1;
    }

    /// Closes the current epoch, folding frequencies into popularity.
    ///
    /// Objects whose popularity decays below the prune threshold are
    /// forgotten, keeping memory proportional to the working set.
    pub fn end_epoch(&mut self) {
        // BTreeSet: dedup plus a deterministic fold order in one shot.
        let touched: BTreeSet<ObjectId> = self
            .current_epoch_freq
            .keys()
            .chain(self.popularity.keys())
            .copied()
            .collect();

        for object in touched {
            let freq = self.current_epoch_freq.get(&object).copied().unwrap_or(0) as f64;
            let prev = self.popularity.get(&object).copied().unwrap_or(0.0);
            let next = self.alpha * freq + (1.0 - self.alpha) * prev;
            if next < self.prune_threshold {
                self.popularity.remove(&object);
            } else {
                self.popularity.insert(object, next);
            }
        }
        self.current_epoch_freq.clear();
        self.epoch += 1;
    }

    /// The EWMA popularity of `object` (0 if unknown).
    pub fn popularity(&self, object: ObjectId) -> f64 {
        self.popularity.get(&object).copied().unwrap_or(0.0)
    }

    /// In-epoch frequency of `object` so far.
    pub fn current_frequency(&self, object: ObjectId) -> u64 {
        self.current_epoch_freq.get(&object).copied().unwrap_or(0)
    }

    /// All tracked objects with their popularity, most popular first.
    pub fn popularities(&self) -> Vec<(ObjectId, f64)> {
        let mut v: Vec<(ObjectId, f64)> = self.popularity.iter().map(|(&k, &p)| (k, p)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("popularities are finite")
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// Number of completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total requests recorded since creation.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Number of objects currently tracked.
    pub fn tracked_objects(&self) -> usize {
        self.popularity.len()
    }
}

impl Default for RequestMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // §IV: first iteration, previous popularity 0, frequency 100:
        // popularity = 0.8 x 100 + 0.2 x 0 = 80.
        let mut monitor = RequestMonitor::new();
        let key = ObjectId::new(1);
        for _ in 0..100 {
            monitor.record_read(key);
        }
        assert_eq!(monitor.current_frequency(key), 100);
        monitor.end_epoch();
        assert!((monitor.popularity(key) - 80.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_folds_across_epochs() {
        let mut monitor = RequestMonitor::new();
        let key = ObjectId::new(0);
        for _ in 0..100 {
            monitor.record_read(key);
        }
        monitor.end_epoch(); // 80
        for _ in 0..50 {
            monitor.record_read(key);
        }
        monitor.end_epoch(); // 0.8*50 + 0.2*80 = 56
        assert!((monitor.popularity(key) - 56.0).abs() < 1e-12);
        assert_eq!(monitor.epoch(), 2);
    }

    #[test]
    fn popularity_decays_when_idle() {
        let mut monitor = RequestMonitor::new();
        let key = ObjectId::new(0);
        for _ in 0..10 {
            monitor.record_read(key);
        }
        monitor.end_epoch(); // 8
        monitor.end_epoch(); // 1.6
        assert!((monitor.popularity(key) - 1.6).abs() < 1e-12);
        // After enough idle epochs the object is pruned entirely.
        for _ in 0..20 {
            monitor.end_epoch();
        }
        assert_eq!(monitor.popularity(key), 0.0);
        assert_eq!(monitor.tracked_objects(), 0);
    }

    #[test]
    fn popularities_sorted_descending() {
        let mut monitor = RequestMonitor::new();
        for (id, count) in [(0u64, 5u32), (1, 50), (2, 20)] {
            for _ in 0..count {
                monitor.record_read(ObjectId::new(id));
            }
        }
        monitor.end_epoch();
        let pops = monitor.popularities();
        assert_eq!(pops.len(), 3);
        assert_eq!(pops[0].0, ObjectId::new(1));
        assert_eq!(pops[1].0, ObjectId::new(2));
        assert_eq!(pops[2].0, ObjectId::new(0));
        assert!(pops[0].1 > pops[1].1 && pops[1].1 > pops[2].1);
    }

    #[test]
    fn alpha_one_tracks_only_last_epoch() {
        let mut monitor = RequestMonitor::with_alpha(1.0);
        let key = ObjectId::new(0);
        for _ in 0..30 {
            monitor.record_read(key);
        }
        monitor.end_epoch();
        assert!((monitor.popularity(key) - 30.0).abs() < 1e-12);
        monitor.end_epoch();
        assert_eq!(monitor.popularity(key), 0.0, "history forgotten at alpha 1");
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn invalid_alpha_panics() {
        let _ = RequestMonitor::with_alpha(0.0);
    }

    #[test]
    fn totals_accumulate() {
        let mut monitor = RequestMonitor::new();
        monitor.record_read(ObjectId::new(0));
        monitor.record_read(ObjectId::new(1));
        monitor.end_epoch();
        monitor.record_read(ObjectId::new(0));
        assert_eq!(monitor.total_requests(), 3);
    }
}
