//! The Agar node: the per-region deployment tying together cache,
//! request monitor, region manager and cache manager (paper Figure 3).

use crate::cache_manager::CacheManager;
use crate::config::CacheConfiguration;
use crate::error::AgarError;
use crate::knapsack::KnapsackSolver;
use crate::monitor::RequestMonitor;
use crate::region_manager::RegionManager;
use agar_cache::{chunk_cache, CacheStats, CachedChunk, ChunkCache, PolicyKind};
use agar_ec::{ChunkId, ObjectId};
use agar_net::{RegionId, SimTime};
use agar_store::{plan_backend_fetch, Backend, StoreError};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Per-read metrics every caching client in this workspace reports.
#[derive(Clone, Debug)]
pub struct ReadMetrics {
    /// The reconstructed object payload.
    pub data: Bytes,
    /// End-to-end read latency (client overhead included).
    pub latency: Duration,
    /// Chunks served from the local cache.
    pub cache_hits: usize,
    /// Chunks fetched from the backend on the critical path.
    pub backend_fetches: usize,
    /// Chunks fetched off the critical path to fill the cache.
    pub fill_fetches: usize,
    /// Whether Reed-Solomon decoding was needed.
    pub decoded: bool,
}

/// Metrics of a collaborative read (see [`crate::collab`]).
#[derive(Clone, Debug)]
pub struct CollabReadMetrics {
    metrics: ReadMetrics,
    /// Chunks served from a neighbour's cache.
    pub remote_hits: usize,
}

impl CollabReadMetrics {
    /// The underlying read metrics.
    pub fn into_inner(self) -> ReadMetrics {
        self.metrics
    }

    /// Borrow the underlying read metrics.
    pub fn metrics(&self) -> &ReadMetrics {
        &self.metrics
    }
}

/// The interface the experiment harness drives: Agar, the LRU/LFU
/// baselines and the cache-less backend client all implement it.
pub trait CachingClient: Send {
    /// Reads one object end to end.
    ///
    /// # Errors
    ///
    /// Propagates backend failures (e.g. too many regions down).
    fn read(&self, object: ObjectId) -> Result<ReadMetrics, AgarError>;

    /// Gives the client a chance to run its periodic reconfiguration.
    /// Returns whether a reconfiguration happened.
    fn maybe_reconfigure(&self, now: SimTime) -> bool;

    /// Snapshot of the cache statistics.
    fn cache_stats(&self) -> CacheStats;

    /// Actual cache contents grouped by object: object → cached chunk
    /// indices (Figure 10's raw data). Empty for cache-less clients.
    fn cache_contents(&self) -> BTreeMap<ObjectId, Vec<u8>>;

    /// Label for reports (e.g. `"Agar"`, `"LRU-3"`, `"Backend"`).
    fn label(&self) -> String;
}

/// Tunables for an [`AgarNode`] (defaults follow the paper's §V-A).
#[derive(Clone, Debug)]
pub struct AgarSettings {
    /// Cache capacity in bytes (paper default: 10 MB).
    pub cache_capacity_bytes: usize,
    /// Reconfiguration period (paper: 30 s).
    pub reconfiguration_period: Duration,
    /// EWMA popularity coefficient (paper: 0.8).
    pub alpha: f64,
    /// Local cache chunk-read latency.
    pub cache_read: Duration,
    /// Fixed client-side overhead per object read.
    pub client_overhead: Duration,
    /// Warm-up probes per region for the region manager.
    pub warmup_probes: usize,
    /// Knapsack solver configuration.
    pub solver: KnapsackSolver,
}

impl AgarSettings {
    /// The paper's defaults with the given cache capacity.
    pub fn paper_default(cache_capacity_bytes: usize) -> Self {
        AgarSettings {
            cache_capacity_bytes,
            reconfiguration_period: Duration::from_secs(30),
            alpha: RequestMonitor::PAPER_ALPHA,
            cache_read: Duration::from_millis(40),
            client_overhead: Duration::from_millis(100),
            warmup_probes: 3,
            solver: KnapsackSolver::new(),
        }
    }
}

struct NodeInner {
    cache: ChunkCache,
    monitor: RequestMonitor,
    region_manager: RegionManager,
    config: CacheConfiguration,
    rng: StdRng,
    last_reconfiguration: Option<SimTime>,
    reconfigurations: u64,
    fill_fetches: u64,
}

/// A per-region Agar deployment.
///
/// Thread-safe behind `&self` (a single internal mutex), so closed-loop
/// simulated clients can share one node, exactly like the paper's two
/// YCSB clients sharing the region's Agar instance.
pub struct AgarNode {
    region: RegionId,
    backend: Arc<Backend>,
    manager: CacheManager,
    settings: AgarSettings,
    inner: Mutex<NodeInner>,
}

impl AgarNode {
    /// Creates a node homed in `region`, warming up the region manager.
    ///
    /// # Errors
    ///
    /// Returns [`AgarError::InvalidSetting`] for a zero reconfiguration
    /// period or out-of-range α.
    pub fn new(
        region: RegionId,
        backend: Arc<Backend>,
        settings: AgarSettings,
        seed: u64,
    ) -> Result<Self, AgarError> {
        if settings.reconfiguration_period.is_zero() {
            return Err(AgarError::InvalidSetting {
                what: "reconfiguration period must be positive",
            });
        }
        if !(settings.alpha > 0.0 && settings.alpha <= 1.0) {
            return Err(AgarError::InvalidSetting {
                what: "alpha must be in (0, 1]",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut region_manager = RegionManager::new(region, backend.topology().clone());
        let chunk_bytes = 100_000; // representative probe size
        region_manager.warm_up(
            backend.latency_model().as_ref(),
            chunk_bytes,
            settings.warmup_probes.max(1),
            &mut rng,
        );
        let manager =
            CacheManager::new(settings.cache_capacity_bytes).with_solver(settings.solver.clone());
        Ok(AgarNode {
            region,
            backend,
            manager,
            inner: Mutex::new(NodeInner {
                cache: chunk_cache(settings.cache_capacity_bytes, PolicyKind::Lru),
                monitor: RequestMonitor::with_alpha(settings.alpha),
                region_manager,
                config: CacheConfiguration::empty(),
                rng,
                last_reconfiguration: None,
                reconfigurations: 0,
                fill_fetches: 0,
            }),
            settings,
        })
    }

    /// The node's home region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The current cache configuration (clone).
    pub fn current_config(&self) -> CacheConfiguration {
        self.inner.lock().config.clone()
    }

    /// Number of reconfigurations performed.
    pub fn reconfigurations(&self) -> u64 {
        self.inner.lock().reconfigurations
    }

    /// Snapshot of the popularity table (diagnostics).
    pub fn popularity_snapshot(&self) -> Vec<(ObjectId, f64)> {
        self.inner.lock().monitor.popularities()
    }

    /// Current latency estimates indexed by region.
    pub fn latency_estimates(&self) -> Vec<Duration> {
        self.inner.lock().region_manager.estimates().to_vec()
    }

    /// Immediately recomputes the configuration from current statistics
    /// (closing the monitoring epoch), regardless of the period.
    pub fn force_reconfigure(&self) {
        let inner = &mut *self.inner.lock();
        Self::reconfigure_inner(
            inner,
            &self.manager,
            &self.backend,
            &self.settings,
            self.region,
        );
    }

    /// Drops every cached chunk of `object` (coherence invalidation).
    pub fn invalidate_object(&self, object: ObjectId) -> usize {
        self.inner
            .lock()
            .cache
            .remove_matching(|id| id.object() == object)
    }

    /// Writes an object through the backend and invalidates the local
    /// cache (see `coherence` for cross-region invalidation).
    ///
    /// # Errors
    ///
    /// Propagates backend write failures.
    pub fn write(&self, object: ObjectId, data: &[u8]) -> Result<(u64, Duration), AgarError> {
        let inner = &mut *self.inner.lock();
        let (version, latency) =
            self.backend
                .put_object(self.region, object, data, &mut inner.rng)?;
        inner.cache.remove_matching(|id| id.object() == object);
        Ok((version, latency))
    }

    /// Total off-critical-path fill fetches.
    pub fn fill_fetches(&self) -> u64 {
        self.inner.lock().fill_fetches
    }

    /// Looks a chunk up in the local cache without touching recency
    /// metadata or statistics; returns the payload only if its version
    /// matches. Used by collaborative neighbours.
    pub fn peek_chunk(&self, chunk: &ChunkId, version: u64) -> Option<Bytes> {
        let inner = self.inner.lock();
        inner
            .cache
            .peek(chunk)
            .filter(|c| c.version() == version)
            .map(|c| c.data().clone())
    }

    /// A read that may source chunks from collaborative neighbours:
    /// `remote` lists chunks available from other regions' caches as
    /// `(chunk index, payload, transfer latency)`. Each needed chunk
    /// comes from the cheapest of {local cache, neighbour cache, backend
    /// estimate}.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn read_with_remote_chunks(
        &self,
        object: ObjectId,
        remote: &[(u8, Bytes, Duration)],
    ) -> Result<CollabReadMetrics, AgarError> {
        let inner = &mut *self.inner.lock();
        inner.monitor.record_read(object);
        let manifest = self.backend.manifest(object)?;
        let k = manifest.params().data_chunks();
        let version = manifest.version();

        // 1. Local cache hits for the hinted chunks.
        let hinted: Vec<u8> = inner.config.chunks_for(object).to_vec();
        let mut have: Vec<(u8, Bytes)> = Vec::with_capacity(hinted.len());
        for &index in &hinted {
            let id = ChunkId::new(object, index);
            if let Some(chunk) = inner.cache.get(&id) {
                if chunk.version() == version {
                    have.push((index, chunk.data().clone()));
                }
            }
        }
        let cache_hits = have.len();
        let held: Vec<u8> = have.iter().map(|&(i, _)| i).collect();

        // 2. Rank every other chunk by its cheapest source.
        enum Source {
            Remote(Bytes, Duration),
            Backend,
        }
        let mut candidates: Vec<(u8, Source, Duration)> = Vec::new();
        for index in 0..manifest.params().total_chunks() as u8 {
            if held.contains(&index) {
                continue;
            }
            let backend_est = {
                let region = manifest.location(index as usize);
                if self.backend.is_region_available(region) {
                    Some(inner.region_manager.estimate(region))
                } else {
                    None
                }
            };
            let remote_entry = remote.iter().find(|&&(i, _, _)| i == index);
            match (remote_entry, backend_est) {
                (Some((_, data, latency)), Some(est)) if *latency < est => {
                    candidates.push((index, Source::Remote(data.clone(), *latency), *latency));
                }
                (Some((_, data, latency)), None) => {
                    candidates.push((index, Source::Remote(data.clone(), *latency), *latency));
                }
                (_, Some(est)) => {
                    candidates.push((index, Source::Backend, est));
                }
                (None, None) => {}
            }
        }
        candidates.sort_by(|a, b| a.2.cmp(&b.2).then(a.0.cmp(&b.0)));
        let needed = k.saturating_sub(cache_hits);
        if candidates.len() < needed {
            return Err(StoreError::NotEnoughChunks {
                object,
                reachable: cache_hits + candidates.len(),
                needed: k,
            }
            .into());
        }

        // 3. Materialise the k cheapest sources.
        let mut worst = Duration::ZERO;
        let mut remote_hits = 0;
        let mut backend_fetches = 0;
        let mut obtained: Vec<(u8, Bytes)> = Vec::with_capacity(needed);
        for (index, source, _) in candidates.into_iter().take(needed) {
            match source {
                Source::Remote(data, latency) => {
                    remote_hits += 1;
                    worst = worst.max(latency);
                    obtained.push((index, data));
                }
                Source::Backend => {
                    let id = ChunkId::new(object, index);
                    let fetch = self.backend.fetch_chunk(self.region, id, &mut inner.rng)?;
                    inner
                        .region_manager
                        .observe(manifest.location(index as usize), fetch.latency);
                    backend_fetches += 1;
                    worst = worst.max(fetch.latency);
                    obtained.push((index, fetch.data));
                }
            }
        }

        // 4. Latency, reconstruction, cache fill, stats — as in `read`.
        let cache_component = if cache_hits > 0 {
            self.settings.cache_read
        } else {
            Duration::ZERO
        };
        let latency = self.settings.client_overhead + cache_component.max(worst);

        let total = manifest.params().total_chunks();
        let mut shards: Vec<Option<Bytes>> = vec![None; total];
        for (index, data) in have.iter().chain(obtained.iter()) {
            shards[*index as usize] = Some(data.clone());
        }
        let decoded = !(0..k).all(|i| shards[i].is_some());
        let data = self
            .backend
            .codec()
            .reconstruct_object(&shards, manifest.size())?;

        for &index in &hinted {
            let id = ChunkId::new(object, index);
            if inner.cache.contains(&id) {
                continue;
            }
            if let Some((_, payload)) = obtained.iter().find(|&&(i, _)| i == index) {
                inner
                    .cache
                    .insert(id, CachedChunk::new(payload.clone(), version));
            }
        }
        inner.cache.stats_mut().record_object_read(cache_hits, k);

        Ok(CollabReadMetrics {
            metrics: ReadMetrics {
                data,
                latency,
                cache_hits,
                backend_fetches,
                fill_fetches: 0,
                decoded,
            },
            remote_hits,
        })
    }

    fn reconfigure_inner(
        inner: &mut NodeInner,
        manager: &CacheManager,
        backend: &Backend,
        settings: &AgarSettings,
        region: RegionId,
    ) {
        inner.monitor.end_epoch();
        let epoch = inner.monitor.epoch();
        inner.config = manager.recompute(
            &inner.monitor,
            &inner.region_manager,
            backend,
            settings.cache_read,
            epoch,
        );
        // Apply the diff: chunks no longer in the configuration leave
        // the cache now, and missing configured chunks are downloaded
        // *a priori* (§IV-A: "caching items implies downloading them a
        // priori") — off the clients' critical path.
        let config = &inner.config;
        inner.cache.remove_matching(|id| !config.contains(*id));
        let objects: Vec<ObjectId> = inner.config.objects().collect();
        for object in objects {
            let Ok(manifest) = backend.manifest(object) else {
                continue;
            };
            let version = manifest.version();
            for &index in inner.config.chunks_for(object) {
                let id = ChunkId::new(object, index);
                if inner.cache.contains(&id) {
                    continue;
                }
                if let Ok(fetch) = backend.fetch_chunk(region, id, &mut inner.rng) {
                    inner.fill_fetches += 1;
                    inner
                        .cache
                        .insert(id, CachedChunk::new(fetch.data, version));
                }
            }
        }
        inner.reconfigurations += 1;
    }

    fn read_inner(
        &self,
        inner: &mut NodeInner,
        object: ObjectId,
    ) -> Result<ReadMetrics, AgarError> {
        inner.monitor.record_read(object);
        let manifest = self.backend.manifest(object)?;
        let k = manifest.params().data_chunks();
        let version = manifest.version();

        // 1. Cache lookups for the hinted chunks, with version checking
        //    (stale chunks are dropped — write-path coherence).
        let hinted: Vec<u8> = inner.config.chunks_for(object).to_vec();
        let mut have: Vec<(u8, Bytes)> = Vec::with_capacity(hinted.len());
        for &index in &hinted {
            let id = ChunkId::new(object, index);
            let stale = match inner.cache.get(&id) {
                Some(chunk) if chunk.version() == version => {
                    have.push((index, chunk.data().clone()));
                    false
                }
                Some(_) => true,
                None => false,
            };
            if stale {
                inner.cache.remove(&id);
            }
        }
        let cache_hits = have.len();

        // 2. Plan and execute the backend fetches for the remainder.
        let exclude: Vec<ChunkId> = have
            .iter()
            .map(|&(index, _)| ChunkId::new(object, index))
            .collect();
        let mut worst_backend;
        let mut fetched: Vec<(u8, Bytes)> = Vec::new();
        let mut attempts = 0;
        loop {
            attempts += 1;
            let order = inner.region_manager.region_order();
            let plan = plan_backend_fetch(&self.backend, self.region, object, &order, &exclude)?;
            let mut failed_region = None;
            fetched.clear();
            worst_backend = Duration::ZERO;
            for &(chunk, region) in &plan {
                match self.backend.fetch_chunk(self.region, chunk, &mut inner.rng) {
                    Ok(fetch) => {
                        inner.region_manager.observe(region, fetch.latency);
                        worst_backend = worst_backend.max(fetch.latency);
                        fetched.push((chunk.index().value(), fetch.data));
                    }
                    Err(StoreError::RegionUnavailable { region }) => {
                        inner.region_manager.mark_unreachable(region);
                        failed_region = Some(region);
                        break;
                    }
                    Err(other) => return Err(other.into()),
                }
            }
            match failed_region {
                None => break,
                Some(_) if attempts < 3 => continue, // re-plan around the failure
                Some(region) => return Err(StoreError::RegionUnavailable { region }.into()),
            }
        }
        let backend_fetches = fetched.len();

        // 3. Latency: slowest parallel fetch (cache reads also run in
        //    parallel) plus fixed client overhead.
        let cache_component = if cache_hits > 0 {
            self.settings.cache_read
        } else {
            Duration::ZERO
        };
        let latency = self.settings.client_overhead + cache_component.max(worst_backend);

        // 4. Reconstruct.
        let total = manifest.params().total_chunks();
        let mut shards: Vec<Option<Bytes>> = vec![None; total];
        for (index, data) in have.iter().chain(fetched.iter()) {
            shards[*index as usize] = Some(data.clone());
        }
        let decoded = !(0..k).all(|i| shards[i].is_some());
        let data = self
            .backend
            .codec()
            .reconstruct_object(&shards, manifest.size())?;

        // 5. Fill the cache toward the hinted configuration, off the
        //    critical path (the paper uses a separate thread pool).
        let mut fill_fetches = 0;
        for &index in &hinted {
            let id = ChunkId::new(object, index);
            if inner.cache.contains(&id) {
                continue;
            }
            let payload = fetched
                .iter()
                .find(|&&(i, _)| i == index)
                .map(|(_, d)| d.clone());
            let payload = match payload {
                Some(p) => Some(p),
                None => {
                    // Hinted chunk was neither cached nor on the fetch
                    // path (estimate drift): fetch it in the background.
                    match self.backend.fetch_chunk(self.region, id, &mut inner.rng) {
                        Ok(fetch) => {
                            fill_fetches += 1;
                            Some(fetch.data)
                        }
                        Err(_) => None, // fill is best-effort
                    }
                }
            };
            if let Some(p) = payload {
                inner.cache.insert(id, CachedChunk::new(p, version));
            }
        }
        inner.fill_fetches += fill_fetches;

        // 6. Object-level hit accounting (Figure 7).
        inner.cache.stats_mut().record_object_read(cache_hits, k);

        Ok(ReadMetrics {
            data,
            latency,
            cache_hits,
            backend_fetches,
            fill_fetches: fill_fetches as usize,
            decoded,
        })
    }
}

impl CachingClient for AgarNode {
    fn read(&self, object: ObjectId) -> Result<ReadMetrics, AgarError> {
        let inner = &mut *self.inner.lock();
        self.read_inner(inner, object)
    }

    fn maybe_reconfigure(&self, now: SimTime) -> bool {
        let inner = &mut *self.inner.lock();
        match inner.last_reconfiguration {
            None => {
                inner.last_reconfiguration = Some(now);
                false
            }
            Some(last) => {
                if now.saturating_duration_since(last) >= self.settings.reconfiguration_period {
                    Self::reconfigure_inner(
                        inner,
                        &self.manager,
                        &self.backend,
                        &self.settings,
                        self.region,
                    );
                    inner.last_reconfiguration = Some(now);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn cache_stats(&self) -> CacheStats {
        *self.inner.lock().cache.stats()
    }

    fn cache_contents(&self) -> BTreeMap<ObjectId, Vec<u8>> {
        let inner = self.inner.lock();
        let mut out: BTreeMap<ObjectId, Vec<u8>> = BTreeMap::new();
        for id in inner.cache.keys() {
            out.entry(id.object()).or_default().push(id.index().value());
        }
        for chunks in out.values_mut() {
            chunks.sort_unstable();
        }
        out
    }

    fn label(&self) -> String {
        "Agar".to_string()
    }
}

impl std::fmt::Debug for AgarNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("AgarNode")
            .field("region", &self.region)
            .field("cache_used", &inner.cache.used_bytes())
            .field("config_chunks", &inner.config.total_chunks())
            .field("reconfigurations", &inner.reconfigurations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::CodingParams;
    use agar_net::presets::{aws_six_regions, FRANKFURT};
    use agar_store::{expected_payload, populate, RoundRobin};

    fn test_backend(objects: u64, size: usize) -> Arc<Backend> {
        let preset = aws_six_regions();
        let backend = Backend::new(
            preset.topology,
            Arc::new(preset.latency),
            CodingParams::paper_default(),
            Box::new(RoundRobin),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        populate(&backend, objects, size, &mut rng).unwrap();
        Arc::new(backend)
    }

    fn test_node(backend: Arc<Backend>, cache_bytes: usize) -> AgarNode {
        AgarNode::new(
            FRANKFURT,
            backend,
            AgarSettings::paper_default(cache_bytes),
            7,
        )
        .unwrap()
    }

    #[test]
    fn cold_reads_return_correct_data() {
        let backend = test_backend(5, 900);
        let node = test_node(backend, 1_000);
        for i in 0..5 {
            let metrics = node.read(ObjectId::new(i)).unwrap();
            assert_eq!(metrics.data.as_ref(), expected_payload(i, 900).as_slice());
            assert_eq!(metrics.cache_hits, 0, "cold cache");
            assert_eq!(metrics.backend_fetches, 9);
        }
    }

    #[test]
    fn reconfiguration_enables_cache_hits_and_cuts_latency() {
        let backend = test_backend(5, 900);
        // Cache fits 9 chunks of 100 bytes: one full object.
        let node = test_node(backend, 900);
        let object = ObjectId::new(0);
        let cold = node.read(object).unwrap();
        for _ in 0..20 {
            node.read(object).unwrap();
        }
        node.force_reconfigure();
        // Next read fills the cache (still slow), the one after hits.
        node.read(object).unwrap();
        let warm = node.read(object).unwrap();
        assert!(
            warm.cache_hits > 0,
            "expected cache hits after reconfiguration"
        );
        assert!(
            warm.latency < cold.latency,
            "warm {:?} vs cold {:?}",
            warm.latency,
            cold.latency
        );
        assert_eq!(warm.data.as_ref(), expected_payload(0, 900).as_slice());
    }

    #[test]
    fn maybe_reconfigure_respects_period() {
        let backend = test_backend(3, 900);
        let node = test_node(backend, 900);
        node.read(ObjectId::new(0)).unwrap();
        // First call only anchors the clock.
        assert!(!node.maybe_reconfigure(SimTime::from_secs(0)));
        assert!(!node.maybe_reconfigure(SimTime::from_secs(29)));
        assert!(node.maybe_reconfigure(SimTime::from_secs(30)));
        assert_eq!(node.reconfigurations(), 1);
        assert!(!node.maybe_reconfigure(SimTime::from_secs(31)));
        assert!(node.maybe_reconfigure(SimTime::from_secs(61)));
        assert_eq!(node.reconfigurations(), 2);
    }

    #[test]
    fn config_changes_evict_stale_objects() {
        let backend = test_backend(4, 900);
        let node = test_node(backend, 900); // one object's worth

        // Make object 0 hot, reconfigure, warm it.
        for _ in 0..50 {
            node.read(ObjectId::new(0)).unwrap();
        }
        node.force_reconfigure();
        node.read(ObjectId::new(0)).unwrap();
        assert!(node.cache_contents().contains_key(&ObjectId::new(0)));

        // Popularity flips to object 1 (several epochs so the EWMA
        // decays object 0 to irrelevance).
        for _ in 0..3 {
            for _ in 0..200 {
                node.read(ObjectId::new(1)).unwrap();
            }
            node.force_reconfigure();
        }
        // Object 1 now owns (almost) the whole cache. Object 0 may keep
        // at most one free-rider chunk: with the tiny test chunks the
        // local region reads faster than the cache constant, so the 9th
        // chunk of object 1 adds zero marginal value and the solver may
        // legitimately hand that slot to object 0.
        let contents = node.cache_contents();
        assert!(contents[&ObjectId::new(1)].len() >= 8, "{contents:?}");
        let obj0_chunks = contents
            .get(&ObjectId::new(0))
            .map_or(0, |chunks| chunks.len());
        assert!(
            obj0_chunks <= 1,
            "object 0 should have shrunk: {contents:?}"
        );
    }

    #[test]
    fn writes_invalidate_cached_chunks() {
        let backend = test_backend(2, 900);
        let node = test_node(backend, 1_800);
        let object = ObjectId::new(0);
        for _ in 0..30 {
            node.read(object).unwrap();
        }
        node.force_reconfigure();
        node.read(object).unwrap(); // fill
        assert!(node.cache_contents().contains_key(&object));

        let payload = vec![7u8; 900];
        let (version, _) = node.write(object, &payload).unwrap();
        assert_eq!(version, 2);
        assert!(!node.cache_contents().contains_key(&object));

        // The next read returns the new data.
        let metrics = node.read(object).unwrap();
        assert_eq!(metrics.data.as_ref(), payload.as_slice());
    }

    #[test]
    fn stale_cached_versions_are_dropped_on_read() {
        let backend = test_backend(2, 900);
        let node = test_node(Arc::clone(&backend), 1_800);
        let object = ObjectId::new(0);
        for _ in 0..30 {
            node.read(object).unwrap();
        }
        node.force_reconfigure();
        node.read(object).unwrap(); // fill cache at version 1

        // Write behind the node's back (another region's client).
        let mut rng = StdRng::seed_from_u64(1);
        let payload = vec![9u8; 900];
        backend
            .put_object(FRANKFURT, object, &payload, &mut rng)
            .unwrap();

        // Version check rejects the stale chunks; data is fresh.
        let metrics = node.read(object).unwrap();
        assert_eq!(metrics.cache_hits, 0, "stale chunks must not count as hits");
        assert_eq!(metrics.data.as_ref(), payload.as_slice());
    }

    #[test]
    fn failure_adaptation_resteers_reads() {
        let backend = test_backend(2, 900);
        let node = test_node(Arc::clone(&backend), 900);
        let object = ObjectId::new(0);
        node.read(object).unwrap();
        // São Paulo (region 3) fails; planning routes around it (its two
        // chunks are replaced by Tokyo's pair and one Sydney chunk) and
        // reads keep succeeding with correct data.
        backend.fail_region(agar_net::presets::SAO_PAULO);
        let metrics = node.read(object).unwrap();
        assert_eq!(metrics.data.as_ref(), expected_payload(0, 900).as_slice());
        assert_eq!(metrics.backend_fetches, 9);
        // Healing restores the original plan.
        backend.heal_region(agar_net::presets::SAO_PAULO);
        let metrics = node.read(object).unwrap();
        assert_eq!(metrics.data.as_ref(), expected_payload(0, 900).as_slice());
    }

    #[test]
    fn invalid_settings_rejected() {
        let backend = test_backend(1, 900);
        let mut settings = AgarSettings::paper_default(900);
        settings.reconfiguration_period = Duration::ZERO;
        assert!(matches!(
            AgarNode::new(FRANKFURT, Arc::clone(&backend), settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
        let mut settings = AgarSettings::paper_default(900);
        settings.alpha = 1.5;
        assert!(matches!(
            AgarNode::new(FRANKFURT, backend, settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
    }

    #[test]
    fn hit_ratio_accounting_counts_partial_hits() {
        let backend = test_backend(2, 900);
        // Cache fits 5 chunks only: partial caching of one object.
        let node = test_node(backend, 500);
        let object = ObjectId::new(0);
        for _ in 0..30 {
            node.read(object).unwrap();
        }
        node.force_reconfigure();
        node.read(object).unwrap(); // fill
        node.read(object).unwrap(); // partial hit
        let stats = node.cache_stats();
        assert!(stats.object_partial_hits() > 0);
        assert!(stats.object_hit_ratio() > 0.0);
    }

    #[test]
    fn debug_and_label() {
        let backend = test_backend(1, 900);
        let node = test_node(backend, 900);
        assert_eq!(node.label(), "Agar");
        assert!(format!("{node:?}").contains("AgarNode"));
    }
}
