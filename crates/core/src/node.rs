//! The Agar node: the per-region deployment tying together cache,
//! request monitor, region manager and cache manager (paper Figure 3).
//!
//! # Concurrency model
//!
//! The node serves every client in its region, so the read path is
//! built as a staged pipeline over independently locked concerns
//! instead of one node-wide mutex:
//!
//! 1. **record** — the request monitor (its own mutex, one hash-map
//!    increment);
//! 2. **lookup** — hinted chunks in the sharded cache (per-shard
//!    locks, atomic statistics);
//! 3. **plan** — the [`ReadPlanner`]
//!    ranks every candidate source against *snapshots* (the
//!    `Arc<CacheConfiguration>` swapped at reconfiguration, a copy of
//!    the region manager's estimates) — no locks held;
//! 4. **execute** — backend fetches run with **no** node lock held, so
//!    concurrent clients' fetches overlap exactly like the paper's
//!    parallel chunk reads (each fetch briefly locks the region
//!    manager afterwards to fold in its latency observation);
//! 5. **reconstruct + fill** — Reed-Solomon decoding is lock-free;
//!    cache fill takes per-shard locks only.
//!
//! Randomness is drawn from per-operation RNGs derived from the node
//! seed and an atomic operation counter, so single-threaded runs stay
//! bit-deterministic while concurrent readers never share an RNG lock.

use crate::breaker::{BreakerPolicy, CircuitBreaker};
use crate::cache_manager::CacheManager;
use crate::config::CacheConfiguration;
use crate::error::AgarError;
use crate::events::CacheEventSink;
use crate::fetcher::{ChunkFetcher, DirectFetcher, FetchRequest};
use crate::knapsack::KnapsackSolver;
use crate::monitor::RequestMonitor;
use crate::planner::{ChunkSource, HedgePolicy, ReadPlanner, RemoteChunk};
use crate::region_manager::RegionManager;
use crate::retry::RetryPolicy;
use agar_cache::{
    CacheStats, CacheTier, CachedChunk, PolicyKind, TieredChunkCache, DEFAULT_CACHE_SHARDS,
};
use agar_ec::{ChunkId, ObjectId};
use agar_net::{RegionId, SimTime};
use agar_obs::{
    chrome_trace_json, Counter, DecodeKind, Labels, MetricsRegistry, ReadTrace, ReadTraceBuilder,
    StageHistograms, TraceBuffer,
};
use agar_store::{Backend, StoreError};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-read metrics every caching client in this workspace reports.
#[derive(Clone, Debug)]
pub struct ReadMetrics {
    /// The reconstructed object payload.
    pub data: Bytes,
    /// End-to-end read latency (client overhead included).
    pub latency: Duration,
    /// Chunks served from the local cache.
    pub cache_hits: usize,
    /// Successful backend chunk fetches issued for this read: the
    /// critical-path fetches, plus — on a hedged read — any straggler
    /// responses that arrived after the decode was already satisfied
    /// (issued work is issued work; the hedging budget counts it all).
    pub backend_fetches: usize,
    /// Chunks fetched off the critical path to fill the cache.
    pub fill_fetches: usize,
    /// Whether Reed-Solomon decoding was needed.
    pub decoded: bool,
}

/// Metrics of a read that could tap other nodes' caches (issued by the
/// `agar-cluster` router, which turns neighbour cache contents into
/// [`RemoteChunk`] offers).
#[derive(Clone, Debug)]
pub struct CollabReadMetrics {
    metrics: ReadMetrics,
    /// Chunks served from a neighbour's cache.
    pub remote_hits: usize,
}

impl CollabReadMetrics {
    /// The underlying read metrics.
    pub fn into_inner(self) -> ReadMetrics {
        self.metrics
    }

    /// Borrow the underlying read metrics.
    pub fn metrics(&self) -> &ReadMetrics {
        &self.metrics
    }
}

/// The interface the experiment harness drives: Agar, the LRU/LFU
/// baselines and the cache-less backend client all implement it.
pub trait CachingClient: Send {
    /// Reads one object end to end.
    ///
    /// # Errors
    ///
    /// Propagates backend failures (e.g. too many regions down).
    fn read(&self, object: ObjectId) -> Result<ReadMetrics, AgarError>;

    /// Gives the client a chance to run its periodic reconfiguration.
    /// Returns whether a reconfiguration happened.
    fn maybe_reconfigure(&self, now: SimTime) -> bool;

    /// Snapshot of the cache statistics.
    fn cache_stats(&self) -> CacheStats;

    /// Actual cache contents grouped by object: object → cached chunk
    /// indices (Figure 10's raw data). Empty for cache-less clients.
    fn cache_contents(&self) -> BTreeMap<ObjectId, Vec<u8>>;

    /// Label for reports (e.g. `"Agar"`, `"LRU-3"`, `"Backend"`).
    fn label(&self) -> String;
}

/// Tunables for an [`AgarNode`] (defaults follow the paper's §V-A).
#[derive(Clone, Debug)]
pub struct AgarSettings {
    /// Cache capacity in bytes (paper default: 10 MB).
    pub cache_capacity_bytes: usize,
    /// Reconfiguration period (paper: 30 s).
    pub reconfiguration_period: Duration,
    /// EWMA popularity coefficient (paper: 0.8).
    pub alpha: f64,
    /// Local cache chunk-read latency.
    pub cache_read: Duration,
    /// Fixed client-side overhead per object read.
    pub client_overhead: Duration,
    /// Warm-up probes per region for the region manager.
    pub warmup_probes: usize,
    /// Probe payload size in bytes for the warm-up phase (default:
    /// 100 kB, roughly one paper-scale chunk).
    pub warmup_probe_bytes: usize,
    /// Shards in the concurrent chunk cache (default:
    /// [`DEFAULT_CACHE_SHARDS`]). More shards reduce lock contention
    /// between client threads; the byte capacity stays global.
    pub cache_shards: usize,
    /// Maximum speculative hedge fetches (Δ) per read: race k+Δ
    /// distinct chunks and bind the first k arrivals. `0` (the
    /// default) disables hedging and keeps reads byte-identical to the
    /// unhedged engine.
    pub max_hedges: usize,
    /// Dispersion multiplier for hedge admission: a spare chunk is
    /// hedged only while its latency estimate stays within `hedge_z`
    /// mean-deviations of the slowest planned backend primary.
    pub hedge_z: f64,
    /// Disk-tier capacity in bytes. `0` (the default) attaches no disk
    /// tier and keeps the node byte-identical to the RAM-only engine.
    pub disk_capacity_bytes: usize,
    /// Modelled chunk-read latency of the local disk tier. Prices disk
    /// placements in the knapsack's second budget and disk hits in the
    /// read planner (between a RAM cache read and remote sources).
    pub disk_read: Duration,
    /// Modelled chunk-write latency of the local disk tier. Demotions
    /// and a-priori disk fills run off the critical path, so this only
    /// informs diagnostics and the experiment harness.
    pub disk_write: Duration,
    /// Knapsack solver configuration.
    pub solver: KnapsackSolver,
    /// Per-request trace sampling: record a [`ReadTrace`] for every
    /// Nth read. `0` (the default) disables tracing entirely — the
    /// read path carries no builder, allocates nothing for telemetry
    /// and stays byte-identical to the untraced engine. Sampling is a
    /// deterministic counter, never a random draw, so traced runs
    /// remain reproducible per seed.
    pub trace_sample_every: u64,
    /// Retry budget for the read path: attempt cap, capped exponential
    /// backoff priced on the simulated clock, and a per-read deadline.
    /// The default reproduces the historical fixed 3-attempt loop
    /// exactly (zero backoff, no deadline — byte-identical).
    pub retry: RetryPolicy,
    /// Per-region circuit breaker policy. The default
    /// (`failure_threshold = 0`) disables the breaker and keeps the
    /// read path byte-identical to pre-breaker builds.
    pub breaker: BreakerPolicy,
}

impl AgarSettings {
    /// The paper's defaults with the given cache capacity.
    pub fn paper_default(cache_capacity_bytes: usize) -> Self {
        AgarSettings {
            cache_capacity_bytes,
            reconfiguration_period: Duration::from_secs(30),
            alpha: RequestMonitor::PAPER_ALPHA,
            cache_read: Duration::from_millis(40),
            client_overhead: Duration::from_millis(100),
            warmup_probes: 3,
            warmup_probe_bytes: 100_000,
            cache_shards: DEFAULT_CACHE_SHARDS,
            max_hedges: 0,
            hedge_z: 3.0,
            disk_capacity_bytes: 0,
            disk_read: Duration::from_millis(150),
            disk_write: Duration::from_millis(250),
            solver: KnapsackSolver::new(),
            trace_sample_every: 0,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
        }
    }

    fn validate(&self) -> Result<(), AgarError> {
        if self.reconfiguration_period.is_zero() {
            return Err(AgarError::InvalidSetting {
                what: "reconfiguration period must be positive",
            });
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(AgarError::InvalidSetting {
                what: "alpha must be in (0, 1]",
            });
        }
        if self.warmup_probe_bytes == 0 {
            return Err(AgarError::InvalidSetting {
                what: "warm-up probe size must be positive",
            });
        }
        if self.cache_shards == 0 {
            return Err(AgarError::InvalidSetting {
                what: "cache shard count must be positive",
            });
        }
        if !(self.hedge_z.is_finite() && self.hedge_z > 0.0) {
            return Err(AgarError::InvalidSetting {
                what: "hedge dispersion multiplier must be positive and finite",
            });
        }
        if self.disk_capacity_bytes > 0 && (self.disk_read.is_zero() || self.disk_write.is_zero()) {
            return Err(AgarError::InvalidSetting {
                what: "disk I/O latencies must be positive when the disk tier is enabled",
            });
        }
        if self.retry.max_attempts == 0 {
            return Err(AgarError::InvalidSetting {
                what: "retry policy must allow at least one attempt",
            });
        }
        if self.breaker.failure_threshold > 0 && self.breaker.cooldown.is_zero() {
            return Err(AgarError::InvalidSetting {
                what: "breaker cooldown must be positive when the breaker is enabled",
            });
        }
        Ok(())
    }
}

/// Retained traces per node when sampling is on. A ring: the newest
/// traces win, and [`TraceBuffer::dropped`] records what scrolled out.
const TRACE_BUFFER_CAPACITY: usize = 4096;

/// Per-node tracing state, present only when
/// [`AgarSettings::trace_sample_every`] is non-zero — an absent layer
/// is the zero-cost path (one `Option` check per read).
///
/// Timestamps come from [`AgarNode::set_sim_now`], which harnesses
/// call as their simulated clock advances; the engine itself never
/// reads a wall clock, so trace dumps are byte-identical per seed.
#[derive(Debug)]
struct TraceLayer {
    /// Sample every Nth read (≥ 1).
    every: u64,
    /// Read sequence counter driving the deterministic sampler.
    seq: AtomicU64,
    /// Latest harness-provided sim-clock instant, in microseconds.
    now_micros: AtomicU64,
    /// Ring of completed traces.
    buffer: TraceBuffer,
    /// Per-stage latency histograms fed by every completed trace.
    stages: StageHistograms,
}

impl TraceLayer {
    fn new(every: u64) -> Self {
        TraceLayer {
            every: every.max(1),
            seq: AtomicU64::new(0),
            now_micros: AtomicU64::new(0),
            buffer: TraceBuffer::new(TRACE_BUFFER_CAPACITY),
            stages: StageHistograms::new(),
        }
    }

    /// Starts a builder if this read is sampled (every Nth, starting
    /// with the first).
    fn begin(&self, object: ObjectId, region: RegionId) -> Option<ReadTraceBuilder> {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        n.is_multiple_of(self.every).then(|| {
            ReadTraceBuilder::begin(
                object.index(),
                region.index() as u64,
                SimTime::from_micros(self.now_micros.load(Ordering::Relaxed)),
            )
        })
    }

    /// Seals a completed read's builder into the ring and the stage
    /// histograms.
    fn commit(&self, builder: ReadTraceBuilder) {
        let trace = builder.finish();
        self.stages.observe(&trace);
        self.buffer.record(trace);
    }
}

/// Reconfiguration clock state. Its mutex guards only the decision of
/// *whether* a period elapsed; it is released before the
/// reconfiguration itself runs, so concurrent `maybe_reconfigure`
/// callers neither block behind the a-priori chunk downloads nor
/// double-trigger (the clock is advanced before the guard drops).
#[derive(Debug, Default)]
struct ReconfigClock {
    last: Option<SimTime>,
}

/// A per-region Agar deployment.
///
/// Thread-safe behind `&self`. Unlike the pre-refactor node (one
/// node-wide mutex around the whole read path) every concern is locked
/// independently — see the module docs for the pipeline and locking
/// discipline. Closed-loop simulated clients and real OS threads can
/// share one node, like the paper's YCSB clients sharing the region's
/// Agar instance.
pub struct AgarNode {
    region: RegionId,
    backend: Arc<Backend>,
    manager: CacheManager,
    settings: AgarSettings,
    /// Node seed; combined with `ops` to derive per-operation RNGs.
    seed: u64,
    /// Monotonic operation counter for RNG derivation.
    ops: AtomicU64,
    cache: TieredChunkCache,
    monitor: Mutex<RequestMonitor>,
    region_manager: Mutex<RegionManager>,
    /// Immutable configuration snapshot, swapped at reconfiguration.
    config: RwLock<Arc<CacheConfiguration>>,
    /// Serialises whole reconfigurations (solve + swap + purge + fill):
    /// overlapping `force_reconfigure`/`maybe_reconfigure` calls must
    /// not interleave their purge/fill phases. Readers never take it.
    reconfigure_serial: Mutex<()>,
    reconfig: Mutex<ReconfigClock>,
    reconfigurations: Counter,
    fill_fetches: Counter,
    /// Re-plans and version-race restarts beyond each read's first
    /// attempt.
    retries: Counter,
    /// Total exponential-backoff time charged to reads, in simulated
    /// microseconds (zero under the default policy).
    retry_backoff_micros: Counter,
    /// Reads that re-planned *ungated* because breaker exclusions left
    /// fewer than k reachable chunks — degraded but served.
    degraded_reads: Counter,
    /// Per-region circuit breaker consulted by the planner. Disabled
    /// (stateless) under the default policy.
    breaker: CircuitBreaker,
    /// Latest harness-provided sim-clock instant in microseconds — the
    /// breaker's cooldown clock. Unlike the trace layer's copy this
    /// cell always exists (the breaker may be on with tracing off).
    sim_now_micros: AtomicU64,
    /// Strategy executing the plan's backend fetches. Defaults to
    /// per-chunk [`DirectFetcher`] calls; a cluster deployment swaps in
    /// its coordinator (single-flight + batching) via
    /// [`AgarNode::set_chunk_fetcher`].
    fetcher: RwLock<Arc<dyn ChunkFetcher>>,
    /// Cluster write hook: object-level cache occupancy events
    /// ([`CacheEventSink`]), reported so a cluster's holder registry
    /// can invalidate writes *targetedly*. `None` outside a cluster.
    events: RwLock<Option<Arc<dyn CacheEventSink>>>,
    /// Per-request trace sampling state; `None` when
    /// [`AgarSettings::trace_sample_every`] is zero (the default) —
    /// the zero-cost path.
    trace: Option<TraceLayer>,
}

impl AgarNode {
    /// Creates a node homed in `region`, warming up the region manager.
    ///
    /// # Errors
    ///
    /// Returns [`AgarError::InvalidSetting`] for a zero reconfiguration
    /// period, out-of-range α, a zero warm-up probe size or a zero
    /// cache shard count.
    pub fn new(
        region: RegionId,
        backend: Arc<Backend>,
        settings: AgarSettings,
        seed: u64,
    ) -> Result<Self, AgarError> {
        settings.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut region_manager = RegionManager::new(region, backend.topology().clone());
        region_manager.warm_up(
            backend.latency_model().as_ref(),
            settings.warmup_probe_bytes,
            settings.warmup_probes.max(1),
            &mut rng,
        );
        let manager = CacheManager::new(settings.cache_capacity_bytes)
            .with_disk_capacity(settings.disk_capacity_bytes)
            .with_solver(settings.solver.clone());
        let breaker = CircuitBreaker::new(settings.breaker, backend.topology().len());
        Ok(AgarNode {
            region,
            fetcher: RwLock::new(Arc::new(DirectFetcher::new(Arc::clone(&backend)))),
            events: RwLock::new(None),
            backend,
            manager,
            seed,
            ops: AtomicU64::new(0),
            cache: TieredChunkCache::with_disk(
                settings.cache_capacity_bytes,
                PolicyKind::Lru,
                settings.cache_shards,
                settings.disk_capacity_bytes,
            ),
            monitor: Mutex::new(RequestMonitor::with_alpha(settings.alpha)),
            region_manager: Mutex::new(region_manager),
            config: RwLock::new(Arc::new(CacheConfiguration::empty())),
            reconfigure_serial: Mutex::new(()),
            reconfig: Mutex::new(ReconfigClock::default()),
            reconfigurations: Counter::new(),
            fill_fetches: Counter::new(),
            retries: Counter::new(),
            retry_backoff_micros: Counter::new(),
            degraded_reads: Counter::new(),
            breaker,
            sim_now_micros: AtomicU64::new(0),
            trace: (settings.trace_sample_every > 0)
                .then(|| TraceLayer::new(settings.trace_sample_every)),
            settings,
        })
    }

    /// Derives a fresh RNG for one operation: deterministic in
    /// operation order (bit-identical single-threaded runs), shared by
    /// no one (no lock on the fetch path).
    fn derive_rng(&self) -> StdRng {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        StdRng::seed_from_u64(
            self.seed
                ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0xD1B5_4A32_D192_ED03),
        )
    }

    /// Decides whether a failed attempt may re-plan under the retry
    /// policy; when it may, charges the retry's backoff into `backoff`
    /// (the read's running sim-clock penalty) and counts it.
    fn charge_retry(&self, attempts: u32, backoff: &mut Duration) -> bool {
        if !self.settings.retry.allows_retry(attempts, *backoff) {
            return false;
        }
        let step = self.settings.retry.backoff_for(attempts);
        if !step.is_zero() {
            *backoff += step;
            self.retry_backoff_micros.add(step.as_micros() as u64);
        }
        self.retries.inc();
        true
    }

    /// The node's home region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The current cache configuration (clone of the live snapshot).
    pub fn current_config(&self) -> CacheConfiguration {
        self.config.read().as_ref().clone()
    }

    /// Number of reconfigurations performed.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations.get()
    }

    /// Snapshot of the popularity table (diagnostics).
    pub fn popularity_snapshot(&self) -> Vec<(ObjectId, f64)> {
        self.monitor.lock().popularities()
    }

    /// Current latency estimates indexed by region.
    pub fn latency_estimates(&self) -> Vec<Duration> {
        self.region_manager.lock().estimates().to_vec()
    }

    /// Immediately recomputes the configuration from current statistics
    /// (closing the monitoring epoch), regardless of the period.
    pub fn force_reconfigure(&self) {
        self.reconfigure();
    }

    /// Swaps the strategy executing backend fetches. A cluster
    /// deployment installs its fetch coordinator here so concurrent
    /// readers of one chunk share a single in-flight fetch and
    /// same-region chunks travel in one batched round trip; the
    /// default is per-chunk [`DirectFetcher`] calls. Takes effect for
    /// subsequent reads (in-flight reads keep the fetcher they
    /// started with).
    pub fn set_chunk_fetcher(&self, fetcher: Arc<dyn ChunkFetcher>) {
        *self.fetcher.write() = fetcher;
    }

    /// Installs (or, with `None`, uninstalls) the cluster write hook:
    /// an observer of this node's object-level cache occupancy and
    /// writes (see [`CacheEventSink`]). A cluster router installs one
    /// per member so its holder registry can invalidate writes
    /// targetedly instead of broadcasting.
    pub fn set_cache_event_sink(&self, sink: Option<Arc<dyn CacheEventSink>>) {
        *self.events.write() = sink;
    }

    fn event_sink(&self) -> Option<Arc<dyn CacheEventSink>> {
        self.events.read().clone()
    }

    /// Drops every cached chunk of `object` (coherence invalidation).
    pub fn invalidate_object(&self, object: ObjectId) -> usize {
        let removed = self.cache.remove_matching(|id| id.object() == object);
        if removed > 0 {
            if let Some(sink) = self.event_sink() {
                sink.object_dropped(object);
            }
        }
        removed
    }

    /// Writes an object through the backend and invalidates the local
    /// cache (see `coherence` for cross-region invalidation). Under a
    /// cluster, the installed [`CacheEventSink`] is told about the
    /// write so the holder registry stays current even for writes
    /// that bypass the router.
    ///
    /// # Errors
    ///
    /// Propagates backend write failures.
    pub fn write(&self, object: ObjectId, data: &[u8]) -> Result<(u64, Duration), AgarError> {
        let mut rng = self.derive_rng();
        let (version, latency) = self
            .backend
            .put_object(self.region, object, data, &mut rng)?;
        let removed = self.cache.remove_matching(|id| id.object() == object);
        if let Some(sink) = self.event_sink() {
            if removed > 0 {
                sink.object_dropped(object);
            }
            sink.object_written(object, version);
        }
        Ok((version, latency))
    }

    /// Total off-critical-path fill fetches.
    pub fn fill_fetches(&self) -> u64 {
        self.fill_fetches.get()
    }

    /// Advances the node's notion of the simulated clock: the circuit
    /// breaker's cooldown clock and — when tracing is on — the
    /// timestamp for sampled [`ReadTrace`]s. Harnesses call this as
    /// their discrete-event clock ticks.
    pub fn set_sim_now(&self, now: SimTime) {
        self.sim_now_micros
            .store(now.as_micros(), Ordering::Relaxed);
        if let Some(trace) = &self.trace {
            trace.now_micros.store(now.as_micros(), Ordering::Relaxed);
        }
    }

    /// The per-region circuit breaker (disabled and stateless under
    /// the default policy).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Re-plans and version-race restarts beyond first attempts.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Total backoff charged to reads, in simulated microseconds.
    pub fn retry_backoff_micros(&self) -> u64 {
        self.retry_backoff_micros.get()
    }

    /// Reads served by an ungated re-plan after breaker exclusions
    /// left fewer than k reachable chunks.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads.get()
    }

    /// The sampled traces currently retained in the node's ring
    /// buffer, oldest first (empty with tracing off).
    pub fn trace_snapshot(&self) -> Vec<ReadTrace> {
        self.trace
            .as_ref()
            .map_or_else(Vec::new, |trace| trace.buffer.snapshot())
    }

    /// Traces evicted from the ring since the node was built (0 with
    /// tracing off).
    pub fn traces_dropped(&self) -> u64 {
        self.trace
            .as_ref()
            .map_or(0, |trace| trace.buffer.dropped())
    }

    /// The retained traces rendered as a chrome://tracing JSON
    /// document (load in `chrome://tracing` or Perfetto); `None` with
    /// tracing off.
    pub fn trace_chrome_json(&self) -> Option<String> {
        self.trace
            .as_ref()
            .map(|trace| chrome_trace_json(&trace.buffer.snapshot()))
    }

    /// Late-binds this node's telemetry into `registry` under `base`
    /// labels: the tiered cache's counters (see
    /// `AtomicCacheStats::register_with`), the node-level fetch
    /// gauges, and — when tracing is on — the per-stage read latency
    /// histograms (`agar_read_stage_seconds{stage=...}`).
    pub fn register_metrics(&self, registry: &MetricsRegistry, base: &Labels) {
        self.cache.register_metrics(registry, base);
        registry.register_counter(
            "agar_reconfigurations_total",
            "Knapsack reconfigurations performed by this node.",
            base.clone(),
            &self.reconfigurations,
        );
        registry.register_counter(
            "agar_fill_fetches_total",
            "Off-critical-path cache fill fetches issued by this node.",
            base.clone(),
            &self.fill_fetches,
        );
        registry.register_counter(
            "agar_read_retries_total",
            "Read re-plans and version-race restarts beyond first attempts.",
            base.clone(),
            &self.retries,
        );
        registry.register_counter(
            "agar_retry_backoff_micros_total",
            "Exponential-backoff time charged to reads, simulated microseconds.",
            base.clone(),
            &self.retry_backoff_micros,
        );
        registry.register_counter(
            "agar_degraded_reads_total",
            "Reads re-planned ungated because breaker exclusions left under k chunks.",
            base.clone(),
            &self.degraded_reads,
        );
        self.breaker.register_metrics(registry, base.clone());
        if let Some(trace) = &self.trace {
            trace.stages.register_with(registry, base);
        }
    }

    /// Looks a chunk up in the local cache (either tier) without
    /// touching recency metadata, statistics or tier placement; returns
    /// the payload only if its version matches. Used by collaborative
    /// neighbours.
    pub fn peek_chunk(&self, chunk: &ChunkId, version: u64) -> Option<Bytes> {
        self.peek_chunk_tier(chunk, version).map(|(data, _)| data)
    }

    /// Like [`AgarNode::peek_chunk`], additionally reporting which tier
    /// holds the chunk — a cluster router prices a disk-resident offer
    /// with the owner's disk-read penalty on top of the transfer cost.
    pub fn peek_chunk_tier(&self, chunk: &ChunkId, version: u64) -> Option<(Bytes, CacheTier)> {
        self.cache
            .peek(chunk)
            .filter(|(c, _)| c.version() == version)
            .map(|(c, tier)| (c.data().clone(), tier))
    }

    /// The node's settings (read-only).
    pub fn settings(&self) -> &AgarSettings {
        &self.settings
    }

    /// The disk tier's backing segment files (empty without a disk
    /// tier). Exposed so corruption-tolerance tests can damage the
    /// store underneath a live node.
    pub fn disk_segment_paths(&self) -> Vec<std::path::PathBuf> {
        self.cache
            .disk()
            .map_or_else(Vec::new, |disk| disk.segment_paths())
    }

    /// Disk-tier frames that failed verification and degraded to
    /// misses (0 without a disk tier).
    pub fn disk_corrupt_frames(&self) -> u64 {
        self.cache.disk_corrupt_frames()
    }

    /// A read that may source chunks from collaborative neighbours:
    /// `remote` lists chunks available from other regions' caches as
    /// [`RemoteChunk`] offers. Each needed chunk comes from the
    /// cheapest of {local cache, neighbour cache, backend estimate};
    /// offers encoded from a different object version than this read's
    /// manifest are ignored.
    ///
    /// # Errors
    ///
    /// Propagates backend failures; returns
    /// [`AgarError::ReadContention`] if three successive attempts each
    /// raced a concurrent write (a fetched chunk was newer than the
    /// attempt's manifest snapshot — mixing versions would decode
    /// garbage, so the read restarts on a fresh manifest instead).
    pub fn read_with_remote_chunks(
        &self,
        object: ObjectId,
        remote: &[RemoteChunk],
    ) -> Result<CollabReadMetrics, AgarError> {
        // Stage 0: record popularity (one short-lived monitor lock),
        // once per logical read regardless of version-race retries.
        self.monitor.lock().record_read(object);
        // Tracing is passive: the builder is plain scratch the read
        // fills in (no RNG draws, no locks, no shared counters), so a
        // traced run's engine behaviour is byte-identical to an
        // untraced one.
        let mut trace = self
            .trace
            .as_ref()
            .and_then(|layer| layer.begin(object, self.region));
        let max_attempts = self.settings.retry.max_attempts.max(1);
        for attempt in 0..max_attempts {
            if let Some(metrics) =
                self.read_attempt(object, remote, attempt == 0, trace.as_mut())?
            {
                if let (Some(layer), Some(builder)) = (&self.trace, trace) {
                    layer.commit(builder);
                }
                return Ok(metrics);
            }
            // A version race restarts the read on a fresh manifest;
            // the trace spans the whole logical read, races included.
            if attempt + 1 < max_attempts {
                self.retries.inc();
            }
            if let Some(builder) = trace.as_mut() {
                builder.outcome.version_races += 1;
            }
        }
        Err(AgarError::ReadContention { object })
    }

    /// One read attempt against a single manifest snapshot. Returns
    /// `Ok(None)` when a backend chunk came back with a newer version
    /// than the snapshot (a concurrent write landed mid-read): the
    /// caller retries with a fresh manifest. `first_attempt` gates the
    /// chunk-level statistics so retries never double-count one
    /// logical read. (Remote offers from an older version are dropped
    /// by the planner, never mixed into the decode.)
    fn read_attempt(
        &self,
        object: ObjectId,
        remote: &[RemoteChunk],
        first_attempt: bool,
        mut trace: Option<&mut ReadTraceBuilder>,
    ) -> Result<Option<CollabReadMetrics>, AgarError> {
        let manifest = self.backend.manifest(object)?;
        let k = manifest.params().data_chunks();
        let total = manifest.params().total_chunks();
        let version = manifest.version();
        let config = Arc::clone(&self.config.read());
        let planner = ReadPlanner::new(&manifest, &config);

        // Stage 1: hinted-chunk lookups in the tiered cache (per-shard
        // locks; a disk rescue promotes; stale versions dropped from
        // both tiers).
        let hits = planner.lookup_local(&self.cache, first_attempt);
        let ram_hits = hits.ram.len();

        // Stages 2+3: plan against snapshots, then execute with no
        // node lock held. The plan's backend fetches go through the
        // pluggable fetcher in plan order (per-chunk direct calls by
        // default; the cluster coordinator coalesces and batches). A
        // fetch hitting a freshly failed region penalises it in the
        // region manager and re-plans (up to 3 attempts), exactly like
        // the pre-refactor retry loop.
        let fetcher = Arc::clone(&self.fetcher.read());
        let mut rng = self.derive_rng();
        let mut shards: Vec<Option<Bytes>> = vec![None; total];
        let mut attempts = 0u32;
        // Backoff charged to this read so far, priced into the final
        // latency on the simulated clock (never slept).
        let mut backoff = Duration::ZERO;
        let (worst, remote_hits, disk_hits, backend_fetches) = 'replan: loop {
            attempts += 1;
            let (estimates, deviations) = {
                let region_manager = self.region_manager.lock();
                (
                    region_manager.estimates().to_vec(),
                    region_manager.deviations().to_vec(),
                )
            };
            // Re-plans re-price against *current* health: fresh
            // estimates above, and the breaker's current exclusion
            // mask here (empty when the breaker is disabled).
            let now_micros = self.sim_now_micros.load(Ordering::Relaxed);
            let excluded = self.breaker.exclusion_mask(now_micros);
            let hedging = HedgePolicy {
                max_hedges: self.settings.max_hedges,
                z: self.settings.hedge_z,
                deviations: &deviations,
                excluded: &excluded,
            };
            let plan = match planner.plan_hedged(
                hits.clone(),
                remote,
                &self.backend,
                &estimates,
                self.settings.disk_read,
                hedging,
            ) {
                Ok(plan) => plan,
                Err(AgarError::Store(StoreError::NotEnoughChunks { .. }))
                    if excluded.iter().any(|&e| e) =>
                {
                    // Breaker exclusions alone starved the plan: serve
                    // the read degraded through open regions rather
                    // than stall — availability beats breaker hygiene.
                    self.degraded_reads.inc();
                    planner.plan_hedged(
                        hits.clone(),
                        remote,
                        &self.backend,
                        &estimates,
                        self.settings.disk_read,
                        HedgePolicy {
                            max_hedges: self.settings.max_hedges,
                            z: self.settings.hedge_z,
                            deviations: &deviations,
                            excluded: &[],
                        },
                    )?
                }
                Err(error) => return Err(error),
            };
            let hedges = plan.hedges;
            shards.iter_mut().for_each(|s| *s = None);
            let mut worst = Duration::ZERO;
            let mut remote_hits = 0;
            let mut disk_hits = 0;
            let mut backend_fetches = 0;
            let mut requests: Vec<FetchRequest> = Vec::new();
            for (index, source) in plan.sources {
                match source {
                    ChunkSource::Local { data } => {
                        shards[index as usize] = Some(data);
                    }
                    ChunkSource::LocalDisk { data } => {
                        disk_hits += 1;
                        shards[index as usize] = Some(data);
                    }
                    ChunkSource::Remote { data, latency } => {
                        remote_hits += 1;
                        worst = worst.max(latency);
                        shards[index as usize] = Some(data);
                    }
                    ChunkSource::Backend { region, .. } => {
                        requests.push(FetchRequest {
                            chunk: ChunkId::new(object, index),
                            region,
                            version,
                        });
                    }
                }
            }
            if hedges == 0 {
                for (request, result) in fetcher.fetch(self.region, &requests, &mut rng) {
                    match result {
                        Ok(fetch) => {
                            self.region_manager
                                .lock()
                                .observe(request.region, fetch.latency);
                            self.breaker.record_success(request.region);
                            if fetch.version != version {
                                // A write landed mid-read; mixing
                                // versions would decode garbage.
                                return Ok(None);
                            }
                            backend_fetches += 1;
                            worst = worst.max(fetch.latency);
                            shards[request.chunk.index().value() as usize] = Some(fetch.data);
                        }
                        Err(StoreError::RegionUnavailable { region }) => {
                            self.region_manager.lock().mark_unreachable(region);
                            self.breaker.record_failure(
                                region,
                                self.sim_now_micros.load(Ordering::Relaxed),
                            );
                            if self.charge_retry(attempts, &mut backoff) {
                                continue 'replan; // re-plan around the failure
                            }
                            return Err(StoreError::RegionUnavailable { region }.into());
                        }
                        Err(other) => return Err(other.into()),
                    }
                }
                break (worst, remote_hits, disk_hits, backend_fetches);
            }

            // Hedged execute: the request list carries the plan's
            // backend primaries first and its `hedges` spares last.
            // Race them all, *late-bind* the first `needed` successful
            // arrivals (smallest latencies) into the decode and discard
            // the stragglers — their payloads never reach `shards`, so
            // a straggler can neither mix versions into the decode nor
            // displace a bound chunk.
            let needed = requests.len() - hedges;
            self.cache.record_hedged_requests(hedges as u64);
            if let Some(builder) = trace.as_deref_mut() {
                builder.outcome.hedges_issued += hedges as u32;
            }
            let mut arrivals: Vec<(usize, Duration, FetchRequest, Bytes)> = Vec::new();
            let mut failed_region = None;
            for (position, (request, result)) in fetcher
                .fetch(self.region, &requests, &mut rng)
                .into_iter()
                .enumerate()
            {
                match result {
                    Ok(fetch) => {
                        // Every response — bound or straggling — feeds
                        // the latency estimator; stragglers are exactly
                        // the observations that grow the deviation.
                        self.region_manager
                            .lock()
                            .observe(request.region, fetch.latency);
                        self.breaker.record_success(request.region);
                        if fetch.version != version {
                            return Ok(None);
                        }
                        arrivals.push((position, fetch.latency, request, fetch.data));
                    }
                    Err(StoreError::RegionUnavailable { region }) => {
                        // A dead hedge region must not fail the read:
                        // replan only if the survivors cannot cover k.
                        self.region_manager.lock().mark_unreachable(region);
                        self.breaker
                            .record_failure(region, self.sim_now_micros.load(Ordering::Relaxed));
                        failed_region = Some(region);
                    }
                    Err(other) => return Err(other.into()),
                }
            }
            if arrivals.len() < needed {
                if self.charge_retry(attempts, &mut backoff) {
                    continue 'replan;
                }
                let region = failed_region.unwrap_or(self.region);
                return Err(StoreError::RegionUnavailable { region }.into());
            }
            // All successful fetches are issued backend work, bound or
            // not (the (1+Δ/k)× round-trip budget counts them all).
            backend_fetches = arrivals.len();
            // First-k binding: sort by arrival time, position breaking
            // ties in favour of primaries (stable, deterministic).
            arrivals.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
            let mut cancelled = 0u64;
            let mut wins = 0u32;
            let mut straggler_worst = Duration::ZERO;
            for (slot, (position, latency, request, data)) in arrivals.into_iter().enumerate() {
                if slot < needed {
                    worst = worst.max(latency);
                    shards[request.chunk.index().value() as usize] = Some(data);
                    if position >= needed {
                        self.cache.record_hedge_win();
                        wins += 1;
                    }
                } else {
                    cancelled += 1;
                    straggler_worst = straggler_worst.max(latency);
                }
            }
            if cancelled > 0 {
                self.cache.record_hedges_cancelled(cancelled);
            }
            if let Some(builder) = trace.as_deref_mut() {
                builder.outcome.hedge_wins += wins;
                builder.outcome.hedges_cancelled += cancelled as u32;
                // Bind overhang: how far the slowest cancelled
                // straggler kept flying past the k-th arrival.
                builder.bind = builder.bind.max(straggler_worst.saturating_sub(worst));
            }
            break (worst, remote_hits, disk_hits, backend_fetches);
        };
        // Disk-sourced chunks are local cache hits at the object level.
        let cache_hits = ram_hits + disk_hits;

        // Stage 4: latency — slowest parallel fetch (cache and disk
        // reads also run in parallel) plus fixed client overhead.
        let mut cache_component = if ram_hits > 0 {
            self.settings.cache_read
        } else {
            Duration::ZERO
        };
        if disk_hits > 0 {
            cache_component = cache_component.max(self.settings.disk_read);
        }
        // Backoff spent on re-plans is wall time the client actually
        // waited; zero under the default (no-backoff) policy.
        let latency = self.settings.client_overhead + cache_component.max(worst) + backoff;
        if let Some(builder) = trace.as_deref_mut() {
            let outcome = &mut builder.outcome;
            outcome.replans += attempts - 1;
            outcome.ram_hits += ram_hits as u32;
            outcome.disk_hits += disk_hits as u32;
            outcome.remote_hits += remote_hits as u32;
            outcome.backend_fetches += backend_fetches as u32;
            outcome.total = latency;
            builder.lookup = cache_component;
            builder.fetch = worst;
        }

        // Stage 5: reconstruct. With all k data shards in hand the
        // codec takes its systematic fast path — no GF arithmetic, at
        // most one object-sized allocation, no locks. A degraded
        // decode reuses the cached decode plan when this erasure
        // pattern has been seen before (no re-inversion), at the cost
        // of a brief codec-level mutex for the plan lookup.
        let (data, decode_report) = self
            .backend
            .codec()
            .reconstruct_object_report(&shards, manifest.size())?;
        let decoded = !decode_report.systematic_fast_path;
        if decode_report.systematic_fast_path {
            self.cache.record_systematic_fast_read();
        } else if decode_report.plan_cache_hit {
            self.cache.record_decode_plan_hit();
        }
        if let Some(builder) = trace.as_mut() {
            builder.outcome.decode = if decode_report.systematic_fast_path {
                DecodeKind::Systematic
            } else if decode_report.plan_cache_hit {
                DecodeKind::PlanCacheHit
            } else {
                DecodeKind::Inversion
            };
        }

        // Stage 6: fill the cache toward the hinted configuration, off
        // the critical path (the paper uses a separate thread pool).
        // The hints come from this read's config snapshot; each chunk
        // is checked against the *live* configuration before the
        // insert and revalidated after it, so a fill racing a
        // reconfiguration cannot leave behind chunks the new
        // configuration purged (a swap after the insert is followed by
        // the reconfiguration's own purge; a swap before it is caught
        // by the revalidation below).
        let mut fill_fetches = 0;
        let mut filled_any = false;
        let live_config = Arc::clone(&self.config.read());
        for &index in planner.hinted() {
            let id = ChunkId::new(object, index);
            if !live_config.contains(id) || self.cache.contains(&id) {
                continue;
            }
            let payload = match shards[index as usize].clone() {
                Some(data) => Some(data),
                None => {
                    // Hinted chunk was neither cached nor on the fetch
                    // path (estimate drift): fetch it in the background
                    // — through the installed fetcher, so the fill
                    // piggybacks on any identical in-flight
                    // critical-path fetch (single-flight) instead of
                    // racing it into a duplicate backend round trip.
                    let request = FetchRequest {
                        chunk: id,
                        region: manifest.location(index as usize),
                        version,
                    };
                    match fetcher.fetch(self.region, &[request], &mut rng).pop() {
                        Some((_, Ok(fetch))) => {
                            fill_fetches += 1;
                            // A version-racing fill is simply skipped
                            // (the fill is best-effort; caching the new
                            // payload under the old version label would
                            // poison later version checks).
                            (fetch.version == version).then_some(fetch.data)
                        }
                        _ => None, // fill is best-effort
                    }
                }
            };
            if let Some(p) = payload {
                let tier = live_config.tier_for(id).unwrap_or(CacheTier::Ram);
                filled_any |= self
                    .cache
                    .insert_to_tier(id, CachedChunk::new(p, version), tier);
                if !self.config.read().contains(id) {
                    // A reconfiguration swapped the config between the
                    // pre-check and the insert; its purge may already
                    // have run, so sweep the chunk ourselves.
                    self.cache.remove(&id);
                }
            }
        }
        self.fill_fetches.add(fill_fetches);
        if filled_any {
            if let Some(sink) = self.event_sink() {
                sink.object_filled(object);
            }
        }

        // Stage 7: object-level hit accounting (Figure 7), lock-free.
        self.cache.record_object_read(cache_hits, k);

        Ok(Some(CollabReadMetrics {
            metrics: ReadMetrics {
                data,
                latency,
                cache_hits,
                backend_fetches,
                fill_fetches: fill_fetches as usize,
                decoded,
            },
            remote_hits,
        }))
    }

    /// Recomputes the configuration, swaps the snapshot, then applies
    /// the diff: chunks no longer in the configuration leave the cache,
    /// and missing configured chunks are downloaded *a priori* (§IV-A:
    /// "caching items implies downloading them a priori") — off the
    /// clients' critical path. Only the solve holds the monitor and
    /// region-manager locks; the diff and downloads hold only the
    /// reconfiguration-serialising mutex, which readers never take.
    fn reconfigure(&self) {
        // Overlapping reconfigurations must not interleave swap, purge
        // and fill (a stale purge running after a newer swap would
        // evict the newer configuration's chunks).
        let _serial = self.reconfigure_serial.lock();
        let new_config = {
            let mut monitor = self.monitor.lock();
            monitor.end_epoch();
            let epoch = monitor.epoch();
            let region_manager = self.region_manager.lock();
            self.manager.recompute_tiered(
                &monitor,
                &region_manager,
                &self.backend,
                self.settings.cache_read,
                self.settings.disk_read,
                epoch,
            )
        };
        let new_config = Arc::new(new_config);
        let sink = self.event_sink();
        *self.config.write() = Arc::clone(&new_config);
        self.cache.remove_matching(|id| !new_config.contains(*id));
        // The a-priori downloads flow through the installed fetcher
        // (per chunk, like the direct path), so under a cluster they
        // coalesce with concurrent critical-path reads of the same
        // chunks instead of duplicating their backend round trips.
        let fetcher = Arc::clone(&self.fetcher.read());
        let mut rng = self.derive_rng();
        let mut objects: Vec<ObjectId> = new_config.objects().collect();
        objects.sort_unstable(); // deterministic fill order
        let mut filled: BTreeSet<ObjectId> = BTreeSet::new();
        for object in objects {
            let Ok(manifest) = self.backend.manifest(object) else {
                continue;
            };
            let version = manifest.version();
            for &index in new_config.chunks_for(object) {
                let id = ChunkId::new(object, index);
                if self.cache.contains(&id) {
                    continue;
                }
                let request = FetchRequest {
                    chunk: id,
                    region: manifest.location(index as usize),
                    version,
                };
                // `reconfigure_serial` exists only to serialise whole
                // reconfigurations; readers never take it, so holding
                // it across the a-priori fill downloads is the point.
                // agar-lint: allow(lock-across-blocking)
                if let Some((_, Ok(fetch))) = fetcher.fetch(self.region, &[request], &mut rng).pop()
                {
                    self.fill_fetches.inc();
                    let tier = new_config.tier_for(id).unwrap_or(CacheTier::Ram);
                    if fetch.version == version
                        && self.cache.insert_to_tier(
                            id,
                            CachedChunk::new(fetch.data, version),
                            tier,
                        )
                    {
                        filled.insert(object);
                    }
                }
            }
        }
        if let Some(sink) = sink {
            // Report the objects the a-priori fill inserted (recorded
            // at the insert, so nothing rescans the cache). The
            // purge's removals are deliberately NOT reported: a drop
            // emitted here could land after a concurrent reader's
            // stage-6 fill re-inserted the object (and reported
            // `object_filled`), deregistering a member that really
            // holds chunks — the one ordering the registry's superset
            // invariant forbids. A purged object lingering as a
            // registered holder merely costs one no-op invalidation
            // on its next write.
            for object in filled {
                sink.object_filled(object);
            }
        }
        self.reconfigurations.inc();
    }
}

impl CachingClient for AgarNode {
    fn read(&self, object: ObjectId) -> Result<ReadMetrics, AgarError> {
        self.read_with_remote_chunks(object, &[])
            .map(CollabReadMetrics::into_inner)
    }

    fn maybe_reconfigure(&self, now: SimTime) -> bool {
        let due = {
            let mut clock = self.reconfig.lock();
            match clock.last {
                None => {
                    clock.last = Some(now);
                    false
                }
                Some(last) => {
                    let due =
                        now.saturating_duration_since(last) >= self.settings.reconfiguration_period;
                    if due {
                        clock.last = Some(now);
                    }
                    due
                }
            }
        };
        if due {
            self.reconfigure();
        }
        due
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn cache_contents(&self) -> BTreeMap<ObjectId, Vec<u8>> {
        let mut out: BTreeMap<ObjectId, Vec<u8>> = BTreeMap::new();
        for id in self.cache.keys() {
            out.entry(id.object()).or_default().push(id.index().value());
        }
        for chunks in out.values_mut() {
            chunks.sort_unstable();
        }
        out
    }

    fn label(&self) -> String {
        "Agar".to_string()
    }
}

impl std::fmt::Debug for AgarNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgarNode")
            .field("region", &self.region)
            .field("cache_used", &self.cache.used_bytes())
            .field("config_chunks", &self.config.read().total_chunks())
            .field("reconfigurations", &self.reconfigurations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::CodingParams;
    use agar_net::presets::{aws_six_regions, FRANKFURT};
    use agar_store::{expected_payload, populate, RoundRobin};

    fn test_backend(objects: u64, size: usize) -> Arc<Backend> {
        let preset = aws_six_regions();
        let backend = Backend::new(
            preset.topology,
            Arc::new(preset.latency),
            CodingParams::paper_default(),
            Box::new(RoundRobin),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        populate(&backend, objects, size, &mut rng).unwrap();
        Arc::new(backend)
    }

    fn test_node(backend: Arc<Backend>, cache_bytes: usize) -> AgarNode {
        AgarNode::new(
            FRANKFURT,
            backend,
            AgarSettings::paper_default(cache_bytes),
            7,
        )
        .unwrap()
    }

    #[test]
    fn cold_reads_return_correct_data() {
        let backend = test_backend(5, 900);
        let node = test_node(backend, 1_000);
        for i in 0..5 {
            let metrics = node.read(ObjectId::new(i)).unwrap();
            assert_eq!(metrics.data.as_ref(), expected_payload(i, 900).as_slice());
            assert_eq!(metrics.cache_hits, 0, "cold cache");
            assert_eq!(metrics.backend_fetches, 9);
        }
    }

    #[test]
    fn reconfiguration_enables_cache_hits_and_cuts_latency() {
        let backend = test_backend(5, 900);
        // Cache fits 9 chunks of 100 bytes: one full object.
        let node = test_node(backend, 900);
        let object = ObjectId::new(0);
        let cold = node.read(object).unwrap();
        for _ in 0..20 {
            node.read(object).unwrap();
        }
        node.force_reconfigure();
        // The reconfiguration downloads the configured chunks a priori,
        // so the very next read already hits.
        let warm = node.read(object).unwrap();
        assert!(
            warm.cache_hits > 0,
            "expected cache hits after reconfiguration"
        );
        assert!(
            warm.latency < cold.latency,
            "warm {:?} vs cold {:?}",
            warm.latency,
            cold.latency
        );
        assert_eq!(warm.data.as_ref(), expected_payload(0, 900).as_slice());
    }

    #[test]
    fn maybe_reconfigure_respects_period() {
        let backend = test_backend(3, 900);
        let node = test_node(backend, 900);
        node.read(ObjectId::new(0)).unwrap();
        // First call only anchors the clock.
        assert!(!node.maybe_reconfigure(SimTime::from_secs(0)));
        assert!(!node.maybe_reconfigure(SimTime::from_secs(29)));
        assert!(node.maybe_reconfigure(SimTime::from_secs(30)));
        assert_eq!(node.reconfigurations(), 1);
        assert!(!node.maybe_reconfigure(SimTime::from_secs(31)));
        assert!(node.maybe_reconfigure(SimTime::from_secs(61)));
        assert_eq!(node.reconfigurations(), 2);
    }

    #[test]
    fn config_changes_evict_stale_objects() {
        let backend = test_backend(4, 900);
        let node = test_node(backend, 900); // one object's worth

        // Make object 0 hot, reconfigure, warm it.
        for _ in 0..50 {
            node.read(ObjectId::new(0)).unwrap();
        }
        node.force_reconfigure();
        node.read(ObjectId::new(0)).unwrap();
        assert!(node.cache_contents().contains_key(&ObjectId::new(0)));

        // Popularity flips to object 1 (several epochs so the EWMA
        // decays object 0 to irrelevance).
        for _ in 0..3 {
            for _ in 0..200 {
                node.read(ObjectId::new(1)).unwrap();
            }
            node.force_reconfigure();
        }
        // Object 1 now owns (almost) the whole cache. Object 0 may keep
        // at most one free-rider chunk: with the tiny test chunks the
        // local region reads faster than the cache constant, so the 9th
        // chunk of object 1 adds zero marginal value and the solver may
        // legitimately hand that slot to object 0.
        let contents = node.cache_contents();
        assert!(contents[&ObjectId::new(1)].len() >= 8, "{contents:?}");
        let obj0_chunks = contents
            .get(&ObjectId::new(0))
            .map_or(0, |chunks| chunks.len());
        assert!(
            obj0_chunks <= 1,
            "object 0 should have shrunk: {contents:?}"
        );
    }

    #[test]
    fn writes_invalidate_cached_chunks() {
        let backend = test_backend(2, 900);
        let node = test_node(backend, 1_800);
        let object = ObjectId::new(0);
        for _ in 0..30 {
            node.read(object).unwrap();
        }
        node.force_reconfigure();
        node.read(object).unwrap(); // fill
        assert!(node.cache_contents().contains_key(&object));

        let payload = vec![7u8; 900];
        let (version, _) = node.write(object, &payload).unwrap();
        assert_eq!(version, 2);
        assert!(!node.cache_contents().contains_key(&object));

        // The next read returns the new data.
        let metrics = node.read(object).unwrap();
        assert_eq!(metrics.data.as_ref(), payload.as_slice());
    }

    #[test]
    fn stale_cached_versions_are_dropped_on_read() {
        let backend = test_backend(2, 900);
        let node = test_node(Arc::clone(&backend), 1_800);
        let object = ObjectId::new(0);
        for _ in 0..30 {
            node.read(object).unwrap();
        }
        node.force_reconfigure();
        node.read(object).unwrap(); // fill cache at version 1

        // Write behind the node's back (another region's client).
        let mut rng = StdRng::seed_from_u64(1);
        let payload = vec![9u8; 900];
        backend
            .put_object(FRANKFURT, object, &payload, &mut rng)
            .unwrap();

        // Version check rejects the stale chunks; data is fresh.
        let metrics = node.read(object).unwrap();
        assert_eq!(metrics.cache_hits, 0, "stale chunks must not count as hits");
        assert_eq!(metrics.data.as_ref(), payload.as_slice());
    }

    #[test]
    fn failure_adaptation_resteers_reads() {
        let backend = test_backend(2, 900);
        let node = test_node(Arc::clone(&backend), 900);
        let object = ObjectId::new(0);
        node.read(object).unwrap();
        // São Paulo (region 3) fails; planning routes around it (its two
        // chunks are replaced by Tokyo's pair and one Sydney chunk) and
        // reads keep succeeding with correct data.
        backend.fail_region(agar_net::presets::SAO_PAULO);
        let metrics = node.read(object).unwrap();
        assert_eq!(metrics.data.as_ref(), expected_payload(0, 900).as_slice());
        assert_eq!(metrics.backend_fetches, 9);
        // Healing restores the original plan.
        backend.heal_region(agar_net::presets::SAO_PAULO);
        let metrics = node.read(object).unwrap();
        assert_eq!(metrics.data.as_ref(), expected_payload(0, 900).as_slice());
    }

    #[test]
    fn hedged_reads_return_correct_data_and_count_hedges() {
        let backend = test_backend(3, 900);
        let mut settings = AgarSettings::paper_default(900);
        settings.max_hedges = 2;
        let node = AgarNode::new(FRANKFURT, backend, settings, 7).unwrap();
        for i in 0..3 {
            let metrics = node.read(ObjectId::new(i)).unwrap();
            assert_eq!(metrics.data.as_ref(), expected_payload(i, 900).as_slice());
            assert!(
                metrics.backend_fetches >= 9,
                "hedged cold reads issue at least k fetches"
            );
        }
        let stats = node.cache_stats();
        // The jittered preset seeds nonzero deviations, so at least the
        // equal-estimate spare chunk is hedged on every cold read; with
        // no failures every hedge ends as a win or leaves an equally
        // priced straggler cancelled.
        assert!(stats.hedged_requests() > 0);
        assert_eq!(stats.hedged_requests(), stats.hedges_cancelled());
        assert!(stats.hedge_wins() <= stats.hedged_requests());
    }

    #[test]
    fn zero_hedges_is_byte_identical_to_the_unhedged_engine() {
        // Two fresh nodes, same seed: one built before hedging existed
        // (defaults) and one with hedging explicitly disabled must
        // produce identical latency sequences and identical stats.
        let run = |settings: AgarSettings| {
            let backend = test_backend(4, 900);
            let node = AgarNode::new(FRANKFURT, backend, settings, 7).unwrap();
            let mut latencies = Vec::new();
            for round in 0..12 {
                let metrics = node.read(ObjectId::new(round % 4)).unwrap();
                latencies.push(metrics.latency);
            }
            node.force_reconfigure();
            for round in 0..12 {
                let metrics = node.read(ObjectId::new(round % 4)).unwrap();
                latencies.push(metrics.latency);
            }
            (latencies, node.cache_stats())
        };
        let (default_latencies, default_stats) = run(AgarSettings::paper_default(1_800));
        let mut disabled = AgarSettings::paper_default(1_800);
        disabled.max_hedges = 0;
        disabled.hedge_z = 1.0;
        let (disabled_latencies, disabled_stats) = run(disabled);
        assert_eq!(default_latencies, disabled_latencies);
        assert_eq!(default_stats, disabled_stats);
        assert_eq!(default_stats.hedged_requests(), 0);
    }

    #[test]
    fn tracing_is_passive_and_byte_identical_to_the_untraced_engine() {
        // Two fresh nodes, same seed: one untraced (defaults) and one
        // tracing every read. Tracing is passive scratch — no RNG
        // draws, no counters — so latencies and stats must match
        // exactly, and only the traced node retains traces.
        let run = |settings: AgarSettings| {
            let backend = test_backend(4, 900);
            let node = AgarNode::new(FRANKFURT, backend, settings, 7).unwrap();
            let mut latencies = Vec::new();
            for round in 0..12 {
                node.set_sim_now(SimTime::from_millis(round * 250));
                let metrics = node.read(ObjectId::new(round % 4)).unwrap();
                latencies.push(metrics.latency);
            }
            node.force_reconfigure();
            for round in 0..12 {
                let metrics = node.read(ObjectId::new(round % 4)).unwrap();
                latencies.push(metrics.latency);
            }
            (latencies, node.cache_stats(), node.trace_snapshot())
        };
        let (untraced_latencies, untraced_stats, untraced_traces) =
            run(AgarSettings::paper_default(1_800));
        let mut traced = AgarSettings::paper_default(1_800);
        traced.trace_sample_every = 1;
        let (traced_latencies, traced_stats, traces) = run(traced);
        assert_eq!(untraced_latencies, traced_latencies);
        assert_eq!(untraced_stats, traced_stats);
        assert!(untraced_traces.is_empty(), "tracing off retains nothing");
        assert_eq!(traces.len(), 24, "every read sampled");
        // Traces carry the modelled stage decomposition: the end of
        // the fetch span never exceeds the total read latency.
        for (trace, latency) in traces.iter().zip(&traced_latencies) {
            assert_eq!(trace.outcome.total, *latency);
            assert!(trace.spans.iter().all(|s| s.duration <= *latency));
        }
        // Timestamps follow the harness-set sim clock.
        assert_eq!(traces[3].start, SimTime::from_millis(750));
    }

    #[test]
    fn trace_sampling_knob_is_deterministic() {
        let backend = test_backend(4, 900);
        let mut settings = AgarSettings::paper_default(1_800);
        settings.trace_sample_every = 3;
        let node = AgarNode::new(FRANKFURT, backend, settings, 7).unwrap();
        for round in 0..9 {
            node.read(ObjectId::new(round % 4)).unwrap();
        }
        // Reads 0, 3 and 6 are sampled: a counter, not a random draw.
        assert_eq!(node.trace_snapshot().len(), 3);
        assert_eq!(node.traces_dropped(), 0);
        let json = node.trace_chrome_json().expect("tracing is on");
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn node_metrics_registration_exposes_live_counters() {
        let backend = test_backend(2, 900);
        let mut settings = AgarSettings::paper_default(1_800);
        settings.trace_sample_every = 1;
        let node = AgarNode::new(FRANKFURT, backend, settings, 7).unwrap();
        let registry = MetricsRegistry::new();
        node.register_metrics(&registry, &Labels::new().with("region", "Frankfurt"));
        for _ in 0..5 {
            node.read(ObjectId::new(0)).unwrap();
        }
        node.force_reconfigure();
        node.read(ObjectId::new(0)).unwrap();
        let text = registry.render_prometheus();
        assert!(text.contains("agar_object_reads_total{region=\"Frankfurt\",result=\"miss\"}"));
        assert!(text.contains("agar_reconfigurations_total{region=\"Frankfurt\"} 1"));
        assert!(
            text.contains("agar_read_stage_seconds_bucket{region=\"Frankfurt\",stage=\"fetch\""),
            "stage histograms registered: {text}"
        );
        // The registry scrapes the live cells: counts recorded after
        // registration are visible.
        let snap = node.cache_stats();
        assert!(snap.object_reads() >= 6);
        assert!(text.contains(&format!(
            "agar_decode_systematic_fast_total{{region=\"Frankfurt\"}} {}",
            snap.systematic_fast_reads()
        )));
    }

    #[test]
    fn invalid_settings_rejected() {
        let backend = test_backend(1, 900);
        let mut settings = AgarSettings::paper_default(900);
        settings.reconfiguration_period = Duration::ZERO;
        assert!(matches!(
            AgarNode::new(FRANKFURT, Arc::clone(&backend), settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
        let mut settings = AgarSettings::paper_default(900);
        settings.alpha = 1.5;
        assert!(matches!(
            AgarNode::new(FRANKFURT, Arc::clone(&backend), settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
        let mut settings = AgarSettings::paper_default(900);
        settings.warmup_probe_bytes = 0;
        assert!(matches!(
            AgarNode::new(FRANKFURT, Arc::clone(&backend), settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
        let mut settings = AgarSettings::paper_default(900);
        settings.cache_shards = 0;
        assert!(matches!(
            AgarNode::new(FRANKFURT, Arc::clone(&backend), settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
        let mut settings = AgarSettings::paper_default(900);
        settings.hedge_z = 0.0;
        assert!(matches!(
            AgarNode::new(FRANKFURT, Arc::clone(&backend), settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
        let mut settings = AgarSettings::paper_default(900);
        settings.disk_capacity_bytes = 10_000;
        settings.disk_read = Duration::ZERO;
        assert!(matches!(
            AgarNode::new(FRANKFURT, Arc::clone(&backend), settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
        let mut settings = AgarSettings::paper_default(900);
        settings.disk_capacity_bytes = 10_000;
        settings.disk_write = Duration::ZERO;
        assert!(matches!(
            AgarNode::new(FRANKFURT, backend, settings, 0),
            Err(AgarError::InvalidSetting { .. })
        ));
    }

    #[test]
    fn warmup_probe_size_is_configurable() {
        let backend = test_backend(1, 900);
        let mut settings = AgarSettings::paper_default(900);
        // A 1-byte probe still seeds every estimate; the node comes up
        // with a sensible region ordering.
        settings.warmup_probe_bytes = 1;
        let node = AgarNode::new(FRANKFURT, backend, settings, 0).unwrap();
        let estimates = node.latency_estimates();
        assert_eq!(estimates.len(), 6);
        assert!(estimates.iter().all(|&e| e > Duration::ZERO));
    }

    #[test]
    fn hit_ratio_accounting_counts_partial_hits() {
        let backend = test_backend(2, 900);
        // Cache fits 5 chunks only: partial caching of one object.
        let node = test_node(backend, 500);
        let object = ObjectId::new(0);
        for _ in 0..30 {
            node.read(object).unwrap();
        }
        node.force_reconfigure();
        node.read(object).unwrap(); // fill
        node.read(object).unwrap(); // partial hit
        let stats = node.cache_stats();
        assert!(stats.object_partial_hits() > 0);
        assert!(stats.object_hit_ratio() > 0.0);
    }

    /// Settings for a tiered node: RAM fits one object, disk fits
    /// three more, and the disk is fast enough (45 ms, just over the
    /// 40 ms cache constant) to beat every non-local region.
    fn tiered_settings(ram_bytes: usize, disk_bytes: usize) -> AgarSettings {
        let mut settings = AgarSettings::paper_default(ram_bytes);
        settings.disk_capacity_bytes = disk_bytes;
        settings.disk_read = Duration::from_millis(45);
        settings.disk_write = Duration::from_millis(60);
        settings
    }

    #[test]
    fn disk_tier_extends_the_catalogue_beyond_ram() {
        let backend = test_backend(4, 900);
        // RAM: 9 chunks (one object). Disk: 27 chunks (three more).
        let node = AgarNode::new(FRANKFURT, backend, tiered_settings(900, 2_700), 7).unwrap();
        for _ in 0..20 {
            for i in 0..4 {
                node.read(ObjectId::new(i)).unwrap();
            }
        }
        node.force_reconfigure();
        let config = node.current_config();
        assert!(config.ram_chunks() > 0, "RAM budget unused: {config:?}");
        assert!(config.disk_chunks() > 0, "disk budget unused: {config:?}");

        // Every object reads correctly, and reads of disk-configured
        // objects count their disk-sourced chunks as local cache hits.
        let mut disk_served_hits = 0;
        for i in 0..4 {
            let metrics = node.read(ObjectId::new(i)).unwrap();
            assert_eq!(metrics.data.as_ref(), expected_payload(i, 900).as_slice());
            let object = ObjectId::new(i);
            if !config.disk_chunks_for(object).is_empty() && metrics.cache_hits > 0 {
                disk_served_hits += 1;
            }
        }
        assert!(disk_served_hits > 0, "no disk-configured object hit");
        let stats = node.cache_stats();
        assert!(stats.disk_hits() > 0, "disk tier never served: {stats:?}");
    }

    #[test]
    fn corrupted_disk_tier_falls_back_to_the_backend() {
        let backend = test_backend(2, 900);
        let node = AgarNode::new(FRANKFURT, backend, tiered_settings(900, 1_800), 7).unwrap();
        for _ in 0..20 {
            node.read(ObjectId::new(0)).unwrap();
            node.read(ObjectId::new(1)).unwrap();
        }
        node.force_reconfigure();
        let config = node.current_config();
        assert!(config.disk_chunks() > 0, "need a disk allocation");

        // Zero out every disk segment: checksums break for every
        // frame, so each disk lookup must degrade to a miss.
        let paths = node.disk_segment_paths();
        assert!(!paths.is_empty(), "disk tier must have segments");
        for path in &paths {
            let len = std::fs::metadata(path).unwrap().len() as usize;
            std::fs::write(path, vec![0u8; len]).unwrap();
        }

        // Reads still return correct bytes — corrupted frames are
        // misses served by the backend, never garbage or a panic.
        for i in 0..2 {
            let metrics = node.read(ObjectId::new(i)).unwrap();
            assert_eq!(metrics.data.as_ref(), expected_payload(i, 900).as_slice());
        }
        // And the damage is visible: every failed frame was counted.
        assert!(
            node.disk_corrupt_frames() > 0,
            "corrupted frames must be counted"
        );
    }

    #[test]
    fn zero_disk_capacity_is_byte_identical_to_the_untiered_engine() {
        // Two fresh nodes, same seed: one with defaults (disk off) and
        // one with every disk knob twisted but the capacity still zero
        // must produce identical latency sequences and statistics.
        let run = |settings: AgarSettings| {
            let backend = test_backend(4, 900);
            let node = AgarNode::new(FRANKFURT, backend, settings, 7).unwrap();
            let mut latencies = Vec::new();
            for round in 0..12 {
                let metrics = node.read(ObjectId::new(round % 4)).unwrap();
                latencies.push(metrics.latency);
            }
            node.force_reconfigure();
            for round in 0..12 {
                let metrics = node.read(ObjectId::new(round % 4)).unwrap();
                latencies.push(metrics.latency);
            }
            (latencies, node.cache_stats())
        };
        let (default_latencies, default_stats) = run(AgarSettings::paper_default(1_800));
        let mut disabled = AgarSettings::paper_default(1_800);
        disabled.disk_capacity_bytes = 0;
        disabled.disk_read = Duration::from_millis(1);
        disabled.disk_write = Duration::from_millis(1);
        let (disabled_latencies, disabled_stats) = run(disabled);
        assert_eq!(default_latencies, disabled_latencies);
        assert_eq!(default_stats, disabled_stats);
        assert_eq!(default_stats.disk_hits(), 0);
        assert_eq!(default_stats.tier_demotions(), 0);
    }

    #[test]
    fn debug_and_label() {
        let backend = test_backend(1, 900);
        let node = test_node(backend, 900);
        assert_eq!(node.label(), "Agar");
        assert!(format!("{node:?}").contains("AgarNode"));
    }
}
