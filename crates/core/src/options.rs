//! Caching-option generation (the paper's §IV-A).
//!
//! A *caching option* is a hypothetical configuration for one object: a
//! set of chunks to cache, its weight (number of chunks) and its value
//! (popularity × expected latency improvement). Generation follows the
//! paper exactly:
//!
//! 1. discard the `m` chunks furthest from the cache (never fetched in
//!    the failure-free common case);
//! 2. fill options with chunks from the most distant remaining sites
//!    inward, one option per weight 1..=k;
//! 3. the latency improvement of an option is the difference between the
//!    latency of the furthest region contacted without the cached chunks
//!    and with them (chunk requests are issued in parallel, so the
//!    slowest contacted site dominates).

use agar_ec::ObjectId;
use agar_net::RegionId;
use agar_store::ObjectManifest;
use std::time::Duration;

/// One candidate cache allocation for one object.
#[derive(Clone, PartialEq, Debug)]
pub struct CachingOption {
    object: ObjectId,
    /// Chunk indices to cache, most distant first.
    chunks: Vec<u8>,
    /// Popularity × latency-improvement-in-ms.
    value: f64,
    /// Expected read latency (slowest contacted site) with these chunks
    /// cached — kept for diagnostics and tests.
    expected_latency: Duration,
}

impl CachingOption {
    /// The object this option caches chunks of.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The chunk indices this option caches.
    pub fn chunks(&self) -> &[u8] {
        &self.chunks
    }

    /// Number of chunks cached (the Knapsack weight).
    pub fn weight(&self) -> u32 {
        self.chunks.len() as u32
    }

    /// Popularity-weighted latency improvement (the Knapsack value).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Expected read latency when this option is in effect.
    pub fn expected_latency(&self) -> Duration {
        self.expected_latency
    }
}

/// All caching options for one object, indexed by weight.
#[derive(Clone, Debug)]
pub struct ObjectOptions {
    object: ObjectId,
    /// `options[w - 1]` caches `w` chunks.
    options: Vec<CachingOption>,
    /// Expected read latency with nothing cached.
    baseline_latency: Duration,
}

impl ObjectOptions {
    /// The object these options describe.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The option of exact weight `w`, if `1 <= w <= k`.
    pub fn by_weight(&self, w: u32) -> Option<&CachingOption> {
        if w == 0 {
            return None;
        }
        self.options.get(w as usize - 1)
    }

    /// All options, weight ascending.
    pub fn iter(&self) -> impl Iterator<Item = &CachingOption> {
        self.options.iter()
    }

    /// The highest option value across all weights (used to order keys).
    pub fn best_value(&self) -> f64 {
        self.options
            .iter()
            .map(CachingOption::value)
            .fold(0.0, f64::max)
    }

    /// Read latency with nothing cached (slowest contacted site).
    pub fn baseline_latency(&self) -> Duration {
        self.baseline_latency
    }

    /// The *dominant* options: strictly increasing latency improvement
    /// with weight. In the paper's six-region deployment these are the
    /// weights {1, 3, 5, 7, 9} — adding the second chunk of a region
    /// never helps until the whole region is removed from the read path.
    pub fn dominant(&self) -> Vec<&CachingOption> {
        let mut out: Vec<&CachingOption> = Vec::new();
        let mut best = 0.0;
        for option in &self.options {
            // Improvement is proportional to value at fixed popularity;
            // compare per-chunk latency improvement directly.
            let improvement = self
                .baseline_latency
                .saturating_sub(option.expected_latency)
                .as_secs_f64();
            if improvement > best + 1e-12 {
                out.push(option);
                best = improvement;
            }
        }
        out
    }
}

/// Generates the caching options for one object.
///
/// - `latencies[r]` is the estimated chunk-read latency from the local
///   region to region `r` (the region manager's estimates);
/// - `cache_read` is the latency of reading a chunk from the local
///   cache;
/// - `popularity` is the request monitor's EWMA popularity.
///
/// # Panics
///
/// Panics if `latencies` does not cover every region in the manifest —
/// the caller wires both from the same topology, so a mismatch is a bug.
pub fn generate_options(
    manifest: &ObjectManifest,
    latencies: &[Duration],
    cache_read: Duration,
    popularity: f64,
) -> ObjectOptions {
    let params = manifest.params();
    let k = params.data_chunks();

    // All chunks with their site latency, sorted most-distant first.
    let mut by_distance: Vec<(u8, Duration)> = manifest
        .chunk_locations()
        .map(|(chunk, region)| {
            let latency = *latencies
                .get(region.index())
                .unwrap_or_else(|| panic!("no latency estimate for {region}"));
            (chunk.index().value(), latency)
        })
        .collect();
    // Most distant first; within one region (equal latency) put *higher*
    // chunk indices first so parity chunks are discarded before data
    // chunks, keeping decode work minimal in the common case.
    by_distance.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));

    // Discard the m furthest chunks: never fetched without failures, so
    // caching them would only add cache-miss download cost (§IV-A).
    let used = &by_distance[params.parity_chunks()..];
    debug_assert_eq!(used.len(), k);

    // Baseline: slowest of the k used chunks.
    let baseline_latency = used.first().map(|&(_, l)| l).unwrap_or(cache_read);

    let mut options = Vec::with_capacity(k);
    for w in 1..=k {
        // Cache the w most distant used chunks...
        let chunks: Vec<u8> = used[..w].iter().map(|&(c, _)| c).collect();
        // ...so the slowest remaining fetch is the (w+1)-th most distant,
        // or the cache itself if everything needed is cached.
        let residual = if w == k {
            cache_read
        } else {
            used[w].1.max(cache_read)
        };
        let improvement_ms = baseline_latency.saturating_sub(residual).as_secs_f64() * 1_000.0;
        options.push(CachingOption {
            object: manifest.object(),
            chunks,
            value: popularity * improvement_ms,
            expected_latency: residual,
        });
    }
    ObjectOptions {
        object: manifest.object(),
        options,
        baseline_latency,
    }
}

/// Generates the *disk-tier* caching options for one object, conditioned
/// on a RAM allocation already chosen by the first knapsack phase.
///
/// The disk tier is the second budget of the two-tier solve: after the
/// RAM phase fixes `ram_chunks`, the remaining used chunks (most distant
/// first) become candidates for the per-node disk store. A disk option
/// of weight `w` caches the `w` most distant remaining chunks; its
/// residual latency is the slowest of
///
/// - the next remaining uncached site (chunks still fetched remotely),
/// - `disk_read` (the disk reads run in parallel with the fetches), and
/// - `cache_read` when RAM chunks participate in the read;
///
/// and its value is `popularity ×` the improvement over the residual
/// latency of the RAM allocation alone. Returns `None` when the RAM
/// allocation already covers every used chunk (nothing left to place).
///
/// # Panics
///
/// Panics if `latencies` does not cover every region in the manifest —
/// the caller wires both from the same topology, so a mismatch is a bug.
pub fn generate_disk_options(
    manifest: &ObjectManifest,
    latencies: &[Duration],
    cache_read: Duration,
    disk_read: Duration,
    ram_chunks: &[u8],
    popularity: f64,
) -> Option<ObjectOptions> {
    let params = manifest.params();
    let k = params.data_chunks();

    let mut by_distance: Vec<(u8, Duration)> = manifest
        .chunk_locations()
        .map(|(chunk, region)| {
            let latency = *latencies
                .get(region.index())
                .unwrap_or_else(|| panic!("no latency estimate for {region}"));
            (chunk.index().value(), latency)
        })
        .collect();
    by_distance.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
    let used = &by_distance[params.parity_chunks()..];
    debug_assert_eq!(used.len(), k);

    // Chunks the RAM phase left on the remote read path, most distant
    // first (RAM options are distance prefixes, so this is a suffix —
    // but membership is checked explicitly for robustness).
    let remaining: Vec<(u8, Duration)> = used
        .iter()
        .filter(|(chunk, _)| !ram_chunks.contains(chunk))
        .copied()
        .collect();
    if remaining.is_empty() {
        return None;
    }

    // Residual latency of the RAM allocation alone: the slowest
    // remaining site, floored by the cache read when RAM participates.
    let slowest_remaining = remaining[0].1;
    let ram_residual = if ram_chunks.is_empty() {
        slowest_remaining
    } else {
        slowest_remaining.max(cache_read)
    };

    let mut options = Vec::with_capacity(remaining.len());
    for w in 1..=remaining.len() {
        let chunks: Vec<u8> = remaining[..w].iter().map(|&(c, _)| c).collect();
        let next_site = remaining.get(w).map(|&(_, l)| l).unwrap_or(Duration::ZERO);
        let mut residual = next_site.max(disk_read);
        if !ram_chunks.is_empty() {
            residual = residual.max(cache_read);
        }
        let improvement_ms = ram_residual.saturating_sub(residual).as_secs_f64() * 1_000.0;
        options.push(CachingOption {
            object: manifest.object(),
            chunks,
            value: popularity * improvement_ms,
            expected_latency: residual,
        });
    }
    Some(ObjectOptions {
        object: manifest.object(),
        options,
        baseline_latency: ram_residual,
    })
}

/// Convenience wrapper: the region order implied by a latency estimate
/// vector, nearest first (what the read planner wants).
pub fn region_order_by_estimates(latencies: &[Duration]) -> Vec<RegionId> {
    let mut order: Vec<usize> = (0..latencies.len()).collect();
    order.sort_by_key(|&r| latencies[r]);
    order.into_iter().map(|r| RegionId::new(r as u16)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::CodingParams;

    /// Builds a manifest mirroring the paper's Figure 1 layout: RS(9,3),
    /// chunk i in region i % 6.
    fn paper_manifest() -> ObjectManifest {
        let params = CodingParams::paper_default();
        let locations = (0..12).map(|i| RegionId::new(i % 6)).collect();
        ObjectManifest::new(ObjectId::new(1), 1_000_000, 1, params, locations)
    }

    /// The paper's Table I latencies from Frankfurt, in region-id order
    /// (FRA, DUB, NVA, SAO, TYO, SYD).
    fn table1_latencies() -> Vec<Duration> {
        [80u64, 200, 600, 1400, 3400, 4600]
            .into_iter()
            .map(Duration::from_millis)
            .collect()
    }

    #[test]
    fn paper_worked_example_option_values() {
        // §IV's example: popularity 80; option 1 caches the Tokyo block
        // with value 80 x (3400 - 1400) = 160_000; option of weight 3
        // (Tokyo + the two São Paulo blocks) is worth 80 x (3400 - 600).
        // (The paper quotes "option 2" as caching São Paulo's two blocks
        // for 80 x (1400 - 600) = 64_000 of *additional* value, i.e. the
        // increment between weights 1 and 3.)
        let manifest = paper_manifest();
        let options = generate_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            80.0,
        );

        let w1 = options.by_weight(1).unwrap();
        assert_eq!(w1.value(), 80.0 * 2000.0);
        // The single cached chunk is Tokyo's remaining data chunk (#4):
        // the discarded m = 3 are Sydney's two (#5, #11) and Tokyo's
        // parity (#10; ties broken toward lower index keeps #4 in use).
        assert_eq!(w1.chunks(), &[4]);

        let w3 = options.by_weight(3).unwrap();
        assert_eq!(w3.value(), 80.0 * 2800.0);
        // Tokyo's chunk plus São Paulo's two.
        assert_eq!(w3.chunks().len(), 3);
        assert!(w3.chunks().contains(&4));
        assert!(w3.chunks().contains(&3));
        assert!(w3.chunks().contains(&9));

        // Weight 2 adds a São Paulo chunk but the other stays on the
        // read path: no extra improvement over weight 1.
        let w2 = options.by_weight(2).unwrap();
        assert_eq!(w2.value(), w1.value());

        // Full replica: residual latency is the cache itself.
        let w9 = options.by_weight(9).unwrap();
        assert_eq!(w9.expected_latency(), Duration::from_millis(40));
        assert_eq!(w9.value(), 80.0 * (3400.0 - 40.0));
    }

    #[test]
    fn baseline_is_slowest_used_chunk() {
        let manifest = paper_manifest();
        let options = generate_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            1.0,
        );
        // Furthest used chunk after discarding m = 3: Tokyo at 3400.
        assert_eq!(options.baseline_latency(), Duration::from_millis(3400));
    }

    #[test]
    fn dominant_options_match_region_boundaries() {
        let manifest = paper_manifest();
        let options = generate_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            1.0,
        );
        let weights: Vec<u32> = options.dominant().iter().map(|o| o.weight()).collect();
        assert_eq!(weights, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn values_monotone_in_weight() {
        let manifest = paper_manifest();
        let options = generate_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            5.0,
        );
        let values: Vec<f64> = options.iter().map(CachingOption::value).collect();
        for pair in values.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        assert_eq!(options.best_value(), *values.last().unwrap());
    }

    #[test]
    fn zero_popularity_zeroes_values() {
        let manifest = paper_manifest();
        let options = generate_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            0.0,
        );
        assert!(options.iter().all(|o| o.value() == 0.0));
    }

    #[test]
    fn chunks_are_most_distant_first() {
        let manifest = paper_manifest();
        let options = generate_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            1.0,
        );
        let w5 = options.by_weight(5).unwrap();
        // Distances: TYO(4) > SAO(3,9) > NVA(2,8) > ...
        assert_eq!(w5.chunks()[0], 4);
        let set: std::collections::HashSet<u8> = w5.chunks().iter().copied().collect();
        assert_eq!(set, [4u8, 3, 9, 2, 8].into_iter().collect());
    }

    #[test]
    fn by_weight_bounds() {
        let manifest = paper_manifest();
        let options = generate_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            1.0,
        );
        assert!(options.by_weight(0).is_none());
        assert!(options.by_weight(9).is_some());
        assert!(options.by_weight(10).is_none());
    }

    #[test]
    fn disk_options_price_the_second_budget_after_ram() {
        // RAM phase cached Tokyo's data chunk (#4); the disk tier now
        // prices the remaining eight used chunks at disk_read = 150 ms.
        let manifest = paper_manifest();
        let options = generate_disk_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            Duration::from_millis(150),
            &[4],
            10.0,
        )
        .unwrap();
        // Residual with only RAM in effect: São Paulo at 1400 ms.
        assert_eq!(options.baseline_latency(), Duration::from_millis(1400));
        // One São Paulo chunk on disk leaves the other remote: no gain.
        assert_eq!(options.by_weight(1).unwrap().value(), 0.0);
        // Both São Paulo chunks on disk: residual drops to NVA's 600 ms.
        let w2 = options.by_weight(2).unwrap();
        assert_eq!(w2.value(), 10.0 * (1400.0 - 600.0));
        assert_eq!(w2.expected_latency(), Duration::from_millis(600));
        // All eight remaining chunks on disk: the disk itself dominates.
        let w8 = options.by_weight(8).unwrap();
        assert_eq!(w8.expected_latency(), Duration::from_millis(150));
        assert_eq!(w8.value(), 10.0 * (1400.0 - 150.0));
        assert!(options.by_weight(9).is_none(), "only 8 chunks remain");
        // Disk chunks never overlap the RAM allocation.
        assert!(options.iter().all(|o| !o.chunks().contains(&4)));
    }

    #[test]
    fn disk_options_without_ram_allocation_start_from_the_cold_baseline() {
        let manifest = paper_manifest();
        let options = generate_disk_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            Duration::from_millis(150),
            &[],
            1.0,
        )
        .unwrap();
        // No RAM chunks: the baseline is the cold read's 3400 ms.
        assert_eq!(options.baseline_latency(), Duration::from_millis(3400));
        // Full disk replica bottoms out at the disk read, not the cache.
        let w9 = options.by_weight(9).unwrap();
        assert_eq!(w9.expected_latency(), Duration::from_millis(150));
        assert_eq!(w9.chunks().len(), 9);
    }

    #[test]
    fn full_ram_allocation_leaves_no_disk_options() {
        let manifest = paper_manifest();
        let full_ram: Vec<u8> = vec![4, 9, 3, 8, 2, 7, 1, 6, 0];
        assert!(generate_disk_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            Duration::from_millis(150),
            &full_ram,
            1.0,
        )
        .is_none());
    }

    #[test]
    fn slow_disk_yields_worthless_options() {
        // A disk slower than every remote site can never improve a read.
        let manifest = paper_manifest();
        let options = generate_disk_options(
            &manifest,
            &table1_latencies(),
            Duration::from_millis(40),
            Duration::from_millis(5_000),
            &[4],
            10.0,
        )
        .unwrap();
        assert!(options.iter().all(|o| o.value() == 0.0));
    }

    #[test]
    fn region_order_by_estimates_sorts_ascending() {
        let order = region_order_by_estimates(&table1_latencies());
        let indices: Vec<usize> = order.iter().map(|r| r.index()).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);

        let reversed: Vec<Duration> = table1_latencies().into_iter().rev().collect();
        let order = region_order_by_estimates(&reversed);
        let indices: Vec<usize> = order.iter().map(|r| r.index()).collect();
        assert_eq!(indices, vec![5, 4, 3, 2, 1, 0]);
    }
}
