//! The read planner: one ranking over every candidate chunk source.
//!
//! The Agar node's read path used to carry two near-identical bodies —
//! one for plain reads (local cache + backend) and one for
//! collaborative reads (local cache + neighbour caches + backend). The
//! [`ReadPlanner`] collapses both into a single *plan-then-execute*
//! pipeline: every way of obtaining a chunk is a [`ChunkSource`], every
//! source gets a price (zero for local hits, the transfer latency for a
//! neighbour's cache, the live per-region estimate for a backend
//! fetch), and the plan is simply the `k` cheapest sources covering `k`
//! distinct chunks.
//!
//! Planning touches no locks and performs no I/O; the node executes the
//! returned [`ReadPlan`] entirely outside its internal locks, so
//! backend fetches from concurrent clients overlap (read latency is the
//! *maximum* over the parallel fetches, as in the paper's §V-A model).

use crate::config::CacheConfiguration;
use crate::error::AgarError;
use agar_cache::{CacheTier, TieredChunkCache};
use agar_ec::ChunkId;
use agar_net::RegionId;
use agar_store::{plan_backend_fetch_with_estimates, Backend, ObjectManifest, StoreError};
use bytes::Bytes;
use std::time::Duration;

/// A chunk offered by a collaborating neighbour's cache.
#[derive(Clone, Debug)]
pub struct RemoteChunk {
    /// The offered chunk's index.
    pub index: u8,
    /// The neighbour's cached payload.
    pub data: Bytes,
    /// Simulated transfer latency from the neighbour.
    pub latency: Duration,
    /// The object version the payload was encoded from. Offers whose
    /// version does not match the read's manifest snapshot are dropped
    /// at planning time — mixing versions would decode garbage.
    pub version: u64,
}

// The bitmask chunk-index set moved down into `agar-ec` (the
// Reed-Solomon codec keys its decode-plan cache on it); re-exported
// here so planner call sites and the public API are unchanged.
pub use agar_ec::ChunkSet;

/// The version-checked local cache hits feeding one read plan, split by
/// tier: RAM hits are free and always bound into the plan; disk hits
/// carry the configured disk-read latency and *compete* with remote and
/// backend sources for their chunk.
#[derive(Clone, Debug, Default)]
pub struct LocalHits {
    /// RAM-tier hits (`(index, payload)`), cost one parallel cache read.
    pub ram: Vec<(u8, Bytes)>,
    /// Disk-tier hits, cost one parallel disk read each.
    pub disk: Vec<(u8, Bytes)>,
}

impl LocalHits {
    /// Hits from a RAM-only lookup (no disk tier involved).
    pub fn ram_only(ram: Vec<(u8, Bytes)>) -> Self {
        LocalHits {
            ram,
            disk: Vec::new(),
        }
    }

    /// Total hits across both tiers.
    pub fn len(&self) -> usize {
        self.ram.len() + self.disk.len()
    }

    /// Whether no tier produced a hit.
    pub fn is_empty(&self) -> bool {
        self.ram.is_empty() && self.disk.is_empty()
    }
}

/// One way of obtaining a chunk, with everything needed to execute it.
#[derive(Clone, Debug)]
pub enum ChunkSource {
    /// Already in the local cache (version-checked); costs one cache
    /// read, which runs in parallel with every other source.
    Local {
        /// The cached payload.
        data: Bytes,
    },
    /// Already in the local disk tier (version-checked); costs one disk
    /// read, which runs in parallel with every other source. Chosen
    /// only when the disk read is priced no worse than the chunk's
    /// remote and backend alternatives.
    LocalDisk {
        /// The disk-resident payload.
        data: Bytes,
    },
    /// Served out of a collaborating neighbour's cache.
    Remote {
        /// The neighbour's payload.
        data: Bytes,
        /// Simulated transfer latency from the neighbour.
        latency: Duration,
    },
    /// Fetch from the backend region holding the chunk.
    Backend {
        /// The region to fetch from.
        region: RegionId,
        /// The planner's latency estimate for that region (the realised
        /// fetch latency is sampled at execution time).
        estimate: Duration,
    },
}

/// The executable outcome of planning one object read: at least `k`
/// `(chunk index, source)` pairs covering distinct chunks — exactly `k`
/// primaries, plus up to Δ trailing backend hedges when a
/// [`HedgePolicy`] prices the extra requests as worthwhile.
#[derive(Clone, Debug, Default)]
pub struct ReadPlan {
    /// The chosen source per chunk, local hits first, then the
    /// remaining primary sources cheapest-first, then any hedges.
    pub sources: Vec<(u8, ChunkSource)>,
    /// How many of the sources are local cache hits.
    pub cache_hits: usize,
    /// How many trailing entries of `sources` are speculative hedges
    /// (always backend fetches of spare chunks beyond the k the decode
    /// needs). Zero when hedging is disabled or unpriced.
    pub hedges: usize,
}

/// Prices speculative over-provisioning of backend fetches (Dean &
/// Barroso's hedged requests): issue k+Δ, bind the first k arrivals,
/// discard the stragglers.
///
/// A spare chunk qualifies as a hedge only while its latency estimate
/// stays within `z` mean-deviations of the slowest planned backend
/// primary — hedging is worth paying for exactly when the primaries'
/// regions are high-variance, and free of spurious duplicates when the
/// network is steady (zero deviation admits no hedges).
#[derive(Clone, Copy, Debug)]
pub struct HedgePolicy<'a> {
    /// Maximum number of extra backend fetches (Δ) per read, applied at
    /// full backend fan-out; reads partially served by caches get a cap
    /// pro-rated by their backend share (`Δ · backend primaries / k`),
    /// keeping total round trips within `(1 + Δ/k)×` the unhedged cost.
    pub max_hedges: usize,
    /// Dispersion multiplier on the admission threshold.
    pub z: f64,
    /// Per-region mean-deviation estimates (σ), indexed by region id;
    /// typically `RegionManager::deviations`.
    pub deviations: &'a [Duration],
    /// Per-region exclusion mask from the circuit breaker
    /// ([`CircuitBreaker::exclusion_mask`](crate::breaker::CircuitBreaker::exclusion_mask)):
    /// `excluded[region] == true` drops the region's chunks from the
    /// backend candidate set, so an open region is priced into neither
    /// primaries nor hedges. An empty slice (the default and the
    /// disabled-breaker value) excludes nothing.
    pub excluded: &'a [bool],
}

impl HedgePolicy<'static> {
    /// A policy that never hedges; `plan` with this policy is
    /// byte-identical to unhedged planning.
    pub fn disabled() -> Self {
        HedgePolicy {
            max_hedges: 0,
            z: 0.0,
            deviations: &[],
            excluded: &[],
        }
    }
}

/// Plans object reads against a config snapshot: ranks local cache
/// hits, neighbour offers and backend fetches behind [`ChunkSource`]
/// and picks the cheapest cover.
///
/// The planner borrows immutable *snapshots* (manifest, configuration,
/// latency estimates) so a node can plan while holding no locks at all.
pub struct ReadPlanner<'a> {
    manifest: &'a ObjectManifest,
    config: &'a CacheConfiguration,
}

impl<'a> ReadPlanner<'a> {
    /// Creates a planner for one object read.
    pub fn new(manifest: &'a ObjectManifest, config: &'a CacheConfiguration) -> Self {
        ReadPlanner { manifest, config }
    }

    /// The chunk indices the configuration hints for this object.
    pub fn hinted(&self) -> &[u8] {
        self.config.chunks_for(self.manifest.object())
    }

    /// Stage 1 of the pipeline: looks the hinted chunks up in the local
    /// tiered cache, version-checked (stale chunks are dropped — from
    /// **both** tiers, write-path coherence), and returns the hits
    /// split by serving tier. Each RAM lookup locks only the chunk's
    /// cache shard; a disk hit additionally promotes the chunk.
    ///
    /// `record_stats` controls whether the lookups count toward the
    /// cache's chunk-level hit/miss statistics, tier traffic and
    /// recency metadata; a version-race *retry* of the same logical
    /// read passes `false` so one read never double-counts.
    pub fn lookup_local(&self, cache: &TieredChunkCache, record_stats: bool) -> LocalHits {
        let object = self.manifest.object();
        let version = self.manifest.version();
        let hinted = self.hinted();
        let mut have = LocalHits::default();
        for &index in hinted {
            let id = ChunkId::new(object, index);
            let found = if record_stats {
                cache.get(&id)
            } else {
                cache.peek(&id)
            };
            match found {
                Some((chunk, tier)) if chunk.version() == version => match tier {
                    CacheTier::Ram => have.ram.push((index, chunk.data().clone())),
                    CacheTier::Disk => have.disk.push((index, chunk.data().clone())),
                },
                Some(_) => {
                    cache.remove(&id);
                }
                None => {}
            }
        }
        have
    }

    /// Stage 2: ranks every candidate source for every chunk the local
    /// cache does not hold and returns the cheapest executable plan.
    ///
    /// `hits` are the local cache hits from
    /// [`ReadPlanner::lookup_local`]; `remote` lists chunks offered by
    /// collaborating neighbours; `estimates` are the caller's live
    /// per-region latency estimates; `disk_read` prices the local disk
    /// tier's hits. RAM hits are always bound. For every other chunk
    /// the cheapest source wins: a disk hit beats remote and backend at
    /// equal price (it is local), while between remote and backend the
    /// backend wins ties (keeping plain reads byte-identical to the
    /// pre-collaboration behaviour).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotEnoughChunks`] (wrapped in [`AgarError`]) when
    /// fewer than `k` distinct chunks are obtainable from all sources
    /// combined.
    pub fn plan(
        &self,
        hits: LocalHits,
        remote: &[RemoteChunk],
        backend: &Backend,
        estimates: &[Duration],
        disk_read: Duration,
    ) -> Result<ReadPlan, AgarError> {
        self.plan_hedged(
            hits,
            remote,
            backend,
            estimates,
            disk_read,
            HedgePolicy::disabled(),
        )
    }

    /// [`ReadPlanner::plan`] with speculative over-provisioning: after
    /// picking the k cheapest primaries, appends up to
    /// `hedging.max_hedges` spare backend chunks whose estimates fall
    /// within the policy's dispersion threshold. The spares are
    /// *distinct* chunk indices — with an any-k decode, racing k+Δ
    /// distinct chunks and binding the first k arrivals needs no
    /// request cancellation protocol at all.
    ///
    /// # Errors
    ///
    /// Same as [`ReadPlanner::plan`]; hedge availability never affects
    /// plan feasibility.
    pub fn plan_hedged(
        &self,
        hits: LocalHits,
        remote: &[RemoteChunk],
        backend: &Backend,
        estimates: &[Duration],
        disk_read: Duration,
        hedging: HedgePolicy<'_>,
    ) -> Result<ReadPlan, AgarError> {
        let object = self.manifest.object();
        let k = self.manifest.params().data_chunks();
        let total = self.manifest.params().total_chunks();
        let cache_hits = hits.ram.len();
        let held: ChunkSet = hits.ram.iter().map(|&(index, _)| index).collect();
        let mut sources: Vec<(u8, ChunkSource)> = hits
            .ram
            .into_iter()
            .map(|(index, data)| (index, ChunkSource::Local { data }))
            .collect();
        let needed = k.saturating_sub(cache_hits);
        if needed == 0 {
            return Ok(ReadPlan {
                sources,
                cache_hits,
                hedges: 0,
            });
        }

        // Disk-tier hits by chunk index: candidates priced at the disk
        // read latency, not automatic wins (a nearby backend region can
        // legitimately beat a slow disk).
        let mut disk_at: Vec<Option<&Bytes>> = vec![None; total];
        for (index, data) in &hits.disk {
            if let Some(slot) = disk_at.get_mut(*index as usize) {
                *slot = Some(data);
            }
        }

        // Cheapest remote offer per chunk index, O(1) lookup. Offers
        // outside the object's chunk domain or encoded from a different
        // version than this read's manifest snapshot are ignored, not
        // an error (the neighbour raced a write; decoding its payload
        // alongside current-version chunks would produce garbage).
        let version = self.manifest.version();
        let mut remote_at: Vec<Option<(&Bytes, Duration)>> = vec![None; total];
        for offer in remote {
            if offer.version != version {
                continue;
            }
            let Some(slot) = remote_at.get_mut(offer.index as usize) else {
                continue;
            };
            if slot.is_none_or(|(_, best)| offer.latency < best) {
                *slot = Some((&offer.data, offer.latency));
            }
        }
        // Reachable backend candidates with per-chunk estimates.
        // Regions the circuit breaker holds open are dropped here, the
        // single gate both primaries and hedges price through.
        let mut backend_at: Vec<Option<(RegionId, Duration)>> = vec![None; total];
        for candidate in plan_backend_fetch_with_estimates(backend, object, estimates)? {
            if hedging
                .excluded
                .get(candidate.region.index())
                .copied()
                .unwrap_or(false)
            {
                continue;
            }
            backend_at[candidate.chunk.index().value() as usize] =
                Some((candidate.region, candidate.estimate));
        }

        // Rank every unheld chunk by its cheapest source.
        let mut candidates: Vec<(Duration, u8, ChunkSource)> = Vec::with_capacity(total);
        for index in 0..total as u8 {
            if held.contains(index) {
                continue;
            }
            let networked = match (remote_at[index as usize], backend_at[index as usize]) {
                (Some((data, latency)), Some((_, estimate))) if latency < estimate => Some((
                    ChunkSource::Remote {
                        data: data.clone(),
                        latency,
                    },
                    latency,
                )),
                (Some((data, latency)), None) => Some((
                    ChunkSource::Remote {
                        data: data.clone(),
                        latency,
                    },
                    latency,
                )),
                (_, Some((region, estimate))) => {
                    Some((ChunkSource::Backend { region, estimate }, estimate))
                }
                (None, None) => None,
            };
            // A disk hit wins ties against any networked source: equal
            // modelled latency, but no round trip to lose.
            let (source, price) = match (disk_at[index as usize], networked) {
                (Some(data), Some((_, best))) if disk_read <= best => {
                    (ChunkSource::LocalDisk { data: data.clone() }, disk_read)
                }
                (Some(data), None) => (ChunkSource::LocalDisk { data: data.clone() }, disk_read),
                (_, Some((source, price))) => (source, price),
                (None, None) => continue,
            };
            candidates.push((price, index, source));
        }
        if candidates.len() < needed {
            return Err(StoreError::NotEnoughChunks {
                object,
                reachable: cache_hits + candidates.len(),
                needed: k,
            }
            .into());
        }
        candidates.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut ranked = candidates.into_iter();
        // The worst planned backend primary sets the hedge admission
        // threshold; σ is the largest dispersion among the primaries'
        // regions (hedge when *they* look risky, not when the spare is
        // cheap).
        let mut worst_backend: Option<Duration> = None;
        let mut sigma = Duration::ZERO;
        let mut backend_primaries = 0usize;
        for (price, index, source) in ranked.by_ref().take(needed) {
            if let ChunkSource::Backend { region, .. } = &source {
                backend_primaries += 1;
                worst_backend = Some(worst_backend.map_or(price, |w| w.max(price)));
                if let Some(&dev) = hedging.deviations.get(region.index()) {
                    sigma = sigma.max(dev);
                }
            }
            sources.push((index, source));
        }
        // Pro-rate Δ by the read's backend share: a read the cache
        // mostly serves carries little straggler risk, and full-Δ
        // hedging there would blow the (1 + Δ/k)× round-trip budget.
        let max_hedges = backend_primaries * hedging.max_hedges / k;
        let mut hedges = 0;
        if max_hedges > 0 && hedging.z > 0.0 && sigma > Duration::ZERO {
            if let Some(worst) = worst_backend {
                let threshold = worst + sigma.mul_f64(hedging.z);
                for (price, index, source) in ranked {
                    if hedges == max_hedges || price > threshold {
                        break;
                    }
                    if !matches!(source, ChunkSource::Backend { .. }) {
                        continue;
                    }
                    sources.push((index, source));
                    hedges += 1;
                }
            }
        }
        Ok(ReadPlan {
            sources,
            cache_hits,
            hedges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_ec::{CodingParams, ObjectId};
    use agar_net::latency::LatencyModel;
    use agar_net::presets::{aws_six_regions, FRANKFURT, SYDNEY, TOKYO};
    use agar_store::{populate, RoundRobin};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Disk-read price used across the planner tests (slower than the
    /// local region, faster than anything overseas).
    const DISK_READ: Duration = Duration::from_millis(150);

    fn setup() -> (Arc<Backend>, Vec<Duration>) {
        let preset = aws_six_regions();
        let backend = Backend::new(
            preset.topology,
            Arc::new(preset.latency.clone()),
            CodingParams::paper_default(),
            Box::new(RoundRobin),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        populate(&backend, 2, 900, &mut rng).unwrap();
        let estimates: Vec<Duration> = backend
            .topology()
            .ids()
            .map(|r| preset.latency.mean(FRANKFURT, r, 100))
            .collect();
        (Arc::new(backend), estimates)
    }

    #[test]
    fn chunk_set_basics() {
        let mut set = ChunkSet::new();
        assert!(set.is_empty());
        assert!(set.insert(0));
        assert!(set.insert(63));
        assert!(set.insert(64));
        assert!(set.insert(255));
        assert!(!set.insert(0), "duplicate insert");
        assert_eq!(set.len(), 4);
        for index in [0u8, 63, 64, 255] {
            assert!(set.contains(index));
        }
        assert!(!set.contains(1));
        assert!(!set.contains(128));
        let from_iter: ChunkSet = [3u8, 5, 3].into_iter().collect();
        assert_eq!(from_iter.len(), 2);
    }

    #[test]
    fn cold_plan_picks_the_k_nearest_backend_chunks() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        let plan = planner
            .plan(LocalHits::default(), &[], &backend, &estimates, DISK_READ)
            .unwrap();
        assert_eq!(plan.sources.len(), 9);
        assert_eq!(plan.cache_hits, 0);
        // The furthest region (Sydney) is never planned when healthy.
        for (_, source) in &plan.sources {
            match source {
                ChunkSource::Backend { region, .. } => assert_ne!(*region, SYDNEY),
                other => panic!("cold read planned {other:?}"),
            }
        }
    }

    #[test]
    fn local_hits_shrink_the_fetch_set() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        let hits = vec![
            (4u8, Bytes::from(vec![0u8; 100])),
            (9u8, Bytes::from(vec![0u8; 100])),
        ];
        let plan = planner
            .plan(
                LocalHits::ram_only(hits),
                &[],
                &backend,
                &estimates,
                DISK_READ,
            )
            .unwrap();
        assert_eq!(plan.sources.len(), 9);
        assert_eq!(plan.cache_hits, 2);
        let fetched: Vec<u8> = plan
            .sources
            .iter()
            .filter(|(_, s)| matches!(s, ChunkSource::Backend { .. }))
            .map(|&(i, _)| i)
            .collect();
        assert_eq!(fetched.len(), 7);
        assert!(!fetched.contains(&4) && !fetched.contains(&9));
    }

    #[test]
    fn cheaper_remote_offers_beat_backend_estimates() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        // Chunk 4 lives in Tokyo (round-robin, index 4 % 6), the most
        // expensive region a healthy Frankfurt plan touches. Offer it
        // for nearly nothing.
        let offer = |index: u8, bytes: Vec<u8>, latency: Duration, version: u64| RemoteChunk {
            index,
            data: Bytes::from(bytes),
            latency,
            version,
        };
        let remote = vec![offer(4, vec![7u8; 100], Duration::from_millis(1), 1)];
        let plan = planner
            .plan(
                LocalHits::default(),
                &remote,
                &backend,
                &estimates,
                DISK_READ,
            )
            .unwrap();
        let chunk4 = plan.sources.iter().find(|&&(i, _)| i == 4).unwrap();
        assert!(matches!(chunk4.1, ChunkSource::Remote { .. }));
        // An expensive remote offer loses to the local region.
        let remote = vec![offer(0, vec![1u8; 100], Duration::from_secs(10), 1)];
        let plan = planner
            .plan(
                LocalHits::default(),
                &remote,
                &backend,
                &estimates,
                DISK_READ,
            )
            .unwrap();
        let chunk0 = plan.sources.iter().find(|&&(i, _)| i == 0).unwrap();
        assert!(matches!(chunk0.1, ChunkSource::Backend { .. }));
        // An offer from a stale version is ignored outright, even when
        // it is by far the cheapest source.
        let remote = vec![offer(4, vec![7u8; 100], Duration::from_millis(1), 99)];
        let plan = planner
            .plan(
                LocalHits::default(),
                &remote,
                &backend,
                &estimates,
                DISK_READ,
            )
            .unwrap();
        let chunk4 = plan.sources.iter().find(|&&(i, _)| i == 4).unwrap();
        assert!(matches!(chunk4.1, ChunkSource::Backend { .. }));
        let _ = TOKYO;
    }

    #[test]
    fn out_of_range_remote_offers_are_ignored() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        // Index 200 is outside RS(9,3)'s 12-chunk domain: no panic, no
        // effect on the plan.
        let remote = vec![RemoteChunk {
            index: 200,
            data: Bytes::from(vec![0u8; 100]),
            latency: Duration::from_millis(1),
            version: 1,
        }];
        let plan = planner
            .plan(
                LocalHits::default(),
                &remote,
                &backend,
                &estimates,
                DISK_READ,
            )
            .unwrap();
        assert_eq!(plan.sources.len(), 9);
        assert!(plan
            .sources
            .iter()
            .all(|(_, s)| matches!(s, ChunkSource::Backend { .. })));
    }

    #[test]
    fn disk_hits_beat_distant_sources_but_lose_to_the_local_region() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        // Chunk 4 lives in Tokyo (expensive); chunk 0 in Frankfurt
        // (cheaper than the 150 ms disk). Both sit in the disk tier.
        let hits = LocalHits {
            ram: Vec::new(),
            disk: vec![
                (4u8, Bytes::from(vec![4u8; 100])),
                (0u8, Bytes::from(vec![0u8; 100])),
            ],
        };
        let plan = planner
            .plan(hits, &[], &backend, &estimates, DISK_READ)
            .unwrap();
        assert_eq!(plan.sources.len(), 9);
        assert_eq!(plan.cache_hits, 0, "disk hits are not RAM cache hits");
        let source_of = |i: u8| &plan.sources.iter().find(|&&(x, _)| x == i).unwrap().1;
        assert!(
            matches!(source_of(4), ChunkSource::LocalDisk { .. }),
            "disk must beat Tokyo"
        );
        assert!(
            matches!(source_of(0), ChunkSource::Backend { .. }),
            "the local region must beat a slower disk"
        );
    }

    #[test]
    fn disk_hits_outrank_equally_priced_remote_offers() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        let hits = LocalHits {
            ram: Vec::new(),
            disk: vec![(4u8, Bytes::from(vec![4u8; 100]))],
        };
        // A neighbour offers the same chunk at exactly the disk price:
        // the tie goes to the disk (no network round trip).
        let remote = vec![RemoteChunk {
            index: 4,
            data: Bytes::from(vec![9u8; 100]),
            latency: DISK_READ,
            version: 1,
        }];
        let plan = planner
            .plan(hits, &remote, &backend, &estimates, DISK_READ)
            .unwrap();
        let chunk4 = plan.sources.iter().find(|&&(i, _)| i == 4).unwrap();
        assert!(matches!(chunk4.1, ChunkSource::LocalDisk { .. }));
        // A strictly cheaper offer wins.
        let hits = LocalHits {
            ram: Vec::new(),
            disk: vec![(4u8, Bytes::from(vec![4u8; 100]))],
        };
        let remote = vec![RemoteChunk {
            index: 4,
            data: Bytes::from(vec![9u8; 100]),
            latency: DISK_READ - Duration::from_millis(1),
            version: 1,
        }];
        let plan = planner
            .plan(hits, &remote, &backend, &estimates, DISK_READ)
            .unwrap();
        let chunk4 = plan.sources.iter().find(|&&(i, _)| i == 4).unwrap();
        assert!(matches!(chunk4.1, ChunkSource::Remote { .. }));
    }

    #[test]
    fn ram_and_disk_hits_compose_into_one_plan() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        let hits = LocalHits {
            ram: vec![(9u8, Bytes::from(vec![9u8; 100]))],
            disk: vec![(4u8, Bytes::from(vec![4u8; 100]))],
        };
        assert_eq!(hits.len(), 2);
        assert!(!hits.is_empty());
        let plan = planner
            .plan(hits, &[], &backend, &estimates, DISK_READ)
            .unwrap();
        assert_eq!(plan.sources.len(), 9);
        assert_eq!(plan.cache_hits, 1);
        let disk_sourced = plan
            .sources
            .iter()
            .filter(|(_, s)| matches!(s, ChunkSource::LocalDisk { .. }))
            .count();
        assert_eq!(disk_sourced, 1);
        let backend_sourced = plan
            .sources
            .iter()
            .filter(|(_, s)| matches!(s, ChunkSource::Backend { .. }))
            .count();
        assert_eq!(backend_sourced, 7);
    }

    #[test]
    fn hedged_plan_appends_distinct_spare_backend_chunks() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        let deviations = vec![Duration::from_millis(400); 6];
        let policy = HedgePolicy {
            max_hedges: 2,
            z: 3.0,
            deviations: &deviations,
            excluded: &[],
        };
        let plan = planner
            .plan_hedged(
                LocalHits::default(),
                &[],
                &backend,
                &estimates,
                DISK_READ,
                policy,
            )
            .unwrap();
        assert_eq!(plan.hedges, 2);
        assert_eq!(plan.sources.len(), 11, "k=9 primaries + 2 hedges");
        // Hedges are spare, distinct chunk indices (any-k decode needs
        // no duplicates), trailing in the plan, and backend-sourced.
        let distinct: ChunkSet = plan.sources.iter().map(|&(i, _)| i).collect();
        assert_eq!(distinct.len(), 11);
        for (_, source) in plan.sources.iter().rev().take(2) {
            assert!(matches!(source, ChunkSource::Backend { .. }));
        }
    }

    #[test]
    fn steady_network_admits_no_hedges() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        // Zero observed dispersion: duplicates would be pure waste.
        let deviations = vec![Duration::ZERO; 6];
        let policy = HedgePolicy {
            max_hedges: 3,
            z: 3.0,
            deviations: &deviations,
            excluded: &[],
        };
        let plan = planner
            .plan_hedged(
                LocalHits::default(),
                &[],
                &backend,
                &estimates,
                DISK_READ,
                policy,
            )
            .unwrap();
        assert_eq!(plan.hedges, 0);
        assert_eq!(plan.sources.len(), 9);
    }

    #[test]
    fn breaker_mask_excludes_a_region_from_primaries_and_hedges() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        let deviations = vec![Duration::from_millis(400); 6];
        let mut excluded = vec![false; 6];
        excluded[FRANKFURT.index()] = true; // the cheapest region
        let policy = HedgePolicy {
            max_hedges: 3,
            z: 3.0,
            deviations: &deviations,
            excluded: &excluded,
        };
        let plan = planner
            .plan_hedged(
                LocalHits::default(),
                &[],
                &backend,
                &estimates,
                DISK_READ,
                policy,
            )
            .unwrap();
        for (_, source) in &plan.sources {
            match source {
                ChunkSource::Backend { region, .. } => assert_ne!(*region, FRANKFURT),
                other => panic!("cold read planned {other:?}"),
            }
        }
        // 12 chunks total, 2 in the excluded region: 10 candidates
        // cover k=9 primaries and leave exactly one spare to hedge.
        assert_eq!(plan.sources.len(), 10);
        assert_eq!(plan.hedges, 1);
    }

    #[test]
    fn excluding_too_many_regions_is_not_enough_chunks() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        // Two regions out = 8 reachable chunks < k = 9: the planner
        // reports it and the node falls back to an ungated re-plan
        // (degraded read) rather than stalling.
        let mut excluded = vec![false; 6];
        excluded[FRANKFURT.index()] = true;
        excluded[TOKYO.index()] = true;
        let policy = HedgePolicy {
            max_hedges: 0,
            z: 0.0,
            deviations: &[],
            excluded: &excluded,
        };
        let result = planner.plan_hedged(
            LocalHits::default(),
            &[],
            &backend,
            &estimates,
            DISK_READ,
            policy,
        );
        assert!(matches!(
            result,
            Err(AgarError::Store(StoreError::NotEnoughChunks { .. }))
        ));
    }

    #[test]
    fn disabled_policy_matches_plain_plan() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        let planner = ReadPlanner::new(&manifest, &config);
        let plain = planner
            .plan(LocalHits::default(), &[], &backend, &estimates, DISK_READ)
            .unwrap();
        let hedged = planner
            .plan_hedged(
                LocalHits::default(),
                &[],
                &backend,
                &estimates,
                DISK_READ,
                HedgePolicy::disabled(),
            )
            .unwrap();
        assert_eq!(plain.hedges, 0);
        assert_eq!(plain.sources.len(), hedged.sources.len());
        let indices = |p: &ReadPlan| p.sources.iter().map(|&(i, _)| i).collect::<Vec<_>>();
        assert_eq!(indices(&plain), indices(&hedged));
    }

    #[test]
    fn too_few_sources_is_an_error() {
        let (backend, estimates) = setup();
        let manifest = backend.manifest(ObjectId::new(0)).unwrap();
        let config = CacheConfiguration::empty();
        for region in backend.topology().ids().take(4) {
            backend.fail_region(region);
        }
        let planner = ReadPlanner::new(&manifest, &config);
        let err = planner
            .plan(LocalHits::default(), &[], &backend, &estimates, DISK_READ)
            .unwrap_err();
        assert!(matches!(
            err,
            AgarError::Store(StoreError::NotEnoughChunks { needed: 9, .. })
        ));
    }
}
