//! The region manager (paper §III-a).
//!
//! Maintains the deployment topology and an up-to-date estimate of the
//! chunk-read latency from the local region to every region, seeded by a
//! warm-up probing phase and refreshed by observing live fetches (EWMA).
//! Failure handling: a region observed unreachable is penalised to an
//! effectively infinite latency until a successful observation heals it.

use crate::options::region_order_by_estimates;
use agar_net::latency::LatencyModel;
use agar_net::{Prober, RegionId, Topology};
use rand::RngCore;
use std::time::Duration;

/// The effectively-infinite latency assigned to unreachable regions.
const UNREACHABLE: Duration = Duration::from_secs(3600);

/// Topology view plus live latency estimation for one Agar node.
#[derive(Clone, Debug)]
pub struct RegionManager {
    home: RegionId,
    topology: Topology,
    estimates: Vec<Duration>,
    /// Exponentially weighted mean deviation per region (TCP-rttvar
    /// style): the dispersion signal hedged reads price Δ from.
    deviations: Vec<Duration>,
    /// EWMA weight for live observations.
    alpha: f64,
    observations: u64,
}

impl RegionManager {
    /// Creates a manager for a node homed in `home`; estimates start at
    /// zero and must be seeded with [`RegionManager::warm_up`] or
    /// [`RegionManager::set_estimate`].
    ///
    /// # Panics
    ///
    /// Panics if `home` is not in the topology.
    pub fn new(home: RegionId, topology: Topology) -> Self {
        assert!(
            topology.region(home).is_some(),
            "home region must be part of the topology"
        );
        let n = topology.len();
        RegionManager {
            home,
            topology,
            estimates: vec![Duration::ZERO; n],
            deviations: vec![Duration::ZERO; n],
            alpha: 0.3,
            observations: 0,
        }
    }

    /// The node's home region.
    pub fn home(&self) -> RegionId {
        self.home
    }

    /// The deployment topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Seeds the estimates by probing every region `probes` times with
    /// `chunk_bytes`-sized reads (the paper's warm-up phase).
    pub fn warm_up(
        &mut self,
        model: &dyn LatencyModel,
        chunk_bytes: usize,
        probes: usize,
        rng: &mut dyn RngCore,
    ) {
        let prober = Prober::new(chunk_bytes, probes);
        let estimates = prober.probe_all(model, self.home, self.topology.len(), rng);
        self.estimates = estimates.iter().map(|e| e.mean()).collect();
        self.deviations = estimates.iter().map(|e| e.std_dev()).collect();
    }

    /// Directly sets one region's estimate (tests, manual overrides).
    ///
    /// # Panics
    ///
    /// Panics if the region is outside the topology.
    pub fn set_estimate(&mut self, region: RegionId, latency: Duration) {
        self.estimates[region.index()] = latency;
    }

    /// Folds a live fetch observation into the estimate (EWMA) and the
    /// deviation (exponentially weighted mean deviation against the
    /// pre-update estimate, as TCP's rttvar does).
    pub fn observe(&mut self, region: RegionId, latency: Duration) {
        let index = region.index();
        let prev = self.estimates[index];
        // A previously-unreachable or unseeded region adopts the
        // observation outright (and resets its deviation).
        if prev == Duration::ZERO || prev >= UNREACHABLE {
            self.estimates[index] = latency;
            self.deviations[index] = Duration::ZERO;
        } else {
            let error = latency.abs_diff(prev);
            self.deviations[index] =
                self.deviations[index].mul_f64(1.0 - self.alpha) + error.mul_f64(self.alpha);
            self.estimates[index] = prev.mul_f64(1.0 - self.alpha) + latency.mul_f64(self.alpha);
        }
        self.observations += 1;
    }

    /// Penalises a region after a failed fetch: it sorts last until a
    /// successful observation heals it.
    pub fn mark_unreachable(&mut self, region: RegionId) {
        self.estimates[region.index()] = UNREACHABLE;
    }

    /// Whether the region is currently considered reachable.
    pub fn is_reachable(&self, region: RegionId) -> bool {
        self.estimates[region.index()] < UNREACHABLE
    }

    /// The current latency estimate for a region.
    pub fn estimate(&self, region: RegionId) -> Duration {
        self.estimates[region.index()]
    }

    /// All estimates, indexed by region id.
    pub fn estimates(&self) -> &[Duration] {
        &self.estimates
    }

    /// The current mean-deviation estimate for a region.
    pub fn deviation(&self, region: RegionId) -> Duration {
        self.deviations[region.index()]
    }

    /// All mean-deviation estimates, indexed by region id.
    pub fn deviations(&self) -> &[Duration] {
        &self.deviations
    }

    /// Regions ordered nearest-first by current estimates.
    pub fn region_order(&self) -> Vec<RegionId> {
        region_order_by_estimates(&self.estimates)
    }

    /// Number of live observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agar_net::presets::{aws_six_regions, FRANKFURT, SYDNEY};
    use agar_net::ConstantLatency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn warmed_manager() -> RegionManager {
        let preset = aws_six_regions();
        let mut manager = RegionManager::new(FRANKFURT, preset.topology.clone());
        let mut rng = StdRng::seed_from_u64(0);
        manager.warm_up(
            &preset.latency,
            preset.latency.nominal_bytes(),
            10,
            &mut rng,
        );
        manager
    }

    #[test]
    fn warm_up_orders_regions_sensibly() {
        let manager = warmed_manager();
        let order = manager.region_order();
        assert_eq!(order[0], FRANKFURT, "home region is nearest");
        assert_eq!(
            *order.last().unwrap(),
            SYDNEY,
            "Sydney is furthest from Frankfurt"
        );
        // Estimates close to the calibrated means.
        let est = manager.estimate(SYDNEY).as_secs_f64() * 1e3;
        assert!((est - 1050.0).abs() < 100.0, "Sydney estimate {est}ms");
    }

    #[test]
    fn observe_moves_estimates() {
        let mut manager = warmed_manager();
        let before = manager.estimate(SYDNEY);
        for _ in 0..50 {
            manager.observe(SYDNEY, Duration::from_millis(100));
        }
        let after = manager.estimate(SYDNEY);
        assert!(after < before);
        assert!(after >= Duration::from_millis(100));
        assert_eq!(manager.observations(), 50);
    }

    #[test]
    fn unreachable_regions_sort_last_and_heal() {
        let mut manager = warmed_manager();
        manager.mark_unreachable(FRANKFURT);
        assert!(!manager.is_reachable(FRANKFURT));
        let order = manager.region_order();
        assert_eq!(*order.last().unwrap(), FRANKFURT);
        // A successful observation heals the region outright.
        manager.observe(FRANKFURT, Duration::from_millis(50));
        assert!(manager.is_reachable(FRANKFURT));
        assert_eq!(manager.estimate(FRANKFURT), Duration::from_millis(50));
        assert_eq!(manager.region_order()[0], FRANKFURT);
    }

    #[test]
    fn unseeded_estimate_adopts_first_observation() {
        let preset = aws_six_regions();
        let mut manager = RegionManager::new(FRANKFURT, preset.topology);
        manager.observe(SYDNEY, Duration::from_millis(900));
        assert_eq!(manager.estimate(SYDNEY), Duration::from_millis(900));
        assert_eq!(manager.deviation(SYDNEY), Duration::ZERO);
    }

    #[test]
    fn warm_up_seeds_deviations_from_probe_dispersion() {
        let manager = warmed_manager();
        // The calibrated preset is jittered, so far regions show spread.
        assert!(manager.deviation(SYDNEY) > Duration::ZERO);
        assert_eq!(manager.deviations().len(), manager.estimates().len());
    }

    #[test]
    fn deviation_tracks_observation_spread() {
        let mut manager = warmed_manager();
        // Steady observations collapse the deviation towards zero...
        for _ in 0..100 {
            manager.observe(SYDNEY, Duration::from_millis(500));
        }
        let steady = manager.deviation(SYDNEY);
        assert!(steady < Duration::from_millis(1), "steady dev {steady:?}");
        // ...while alternating fast/slow observations grow it.
        for i in 0..100 {
            let ms = if i % 2 == 0 { 100 } else { 900 };
            manager.observe(SYDNEY, Duration::from_millis(ms));
        }
        let noisy = manager.deviation(SYDNEY);
        assert!(noisy > Duration::from_millis(100), "noisy dev {noisy:?}");
    }

    #[test]
    fn constant_model_probes_exactly() {
        let topology = agar_net::Topology::from_names(["a", "b"]);
        let mut manager = RegionManager::new(RegionId::new(0), topology);
        let mut rng = StdRng::seed_from_u64(0);
        manager.warm_up(
            &ConstantLatency::new(Duration::from_millis(25)),
            1000,
            3,
            &mut rng,
        );
        assert_eq!(
            manager.estimate(RegionId::new(1)),
            Duration::from_millis(25)
        );
        assert_eq!(manager.estimates().len(), 2);
        assert_eq!(manager.home(), RegionId::new(0));
        assert_eq!(manager.topology().len(), 2);
    }

    #[test]
    #[should_panic(expected = "part of the topology")]
    fn home_outside_topology_panics() {
        let _ = RegionManager::new(RegionId::new(5), agar_net::Topology::from_names(["a"]));
    }
}
