//! Retry budgets for the read path.
//!
//! The pre-policy read loop retried a fixed 3 times with no backoff.
//! [`RetryPolicy`] makes both knobs explicit: a capped exponential
//! backoff **priced on the simulated clock** (added to the read's
//! modelled latency, never slept), and a per-read deadline budget that
//! stops retrying once the accumulated backoff would blow it.
//!
//! The default policy reproduces the historical behaviour exactly —
//! three attempts, zero backoff, no deadline — so a node built from
//! `AgarSettings::paper_default` stays byte-identical to pre-policy
//! builds (the repo-wide "disabled ⇒ byte-identical" convention).

use std::time::Duration;

/// Retry budget for one read: attempt cap, capped exponential backoff,
/// and a per-read deadline on total backoff spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per read (re-plans after region failures and
    /// restarts after version races both count). Must be ≥ 1; the
    /// historical loop used 3.
    pub max_attempts: u32,
    /// Backoff charged before the first retry; doubles per retry.
    /// `Duration::ZERO` (the default) charges nothing.
    pub base_backoff: Duration,
    /// Ceiling on a single retry's backoff. `Duration::ZERO` with a
    /// non-zero base means "uncapped".
    pub max_backoff: Duration,
    /// Per-read budget: once the accumulated backoff reaches this,
    /// no further retries are attempted. `Duration::ZERO` disables
    /// the budget.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            deadline: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// The backoff to charge before retry number `attempt` (1-based:
    /// the first retry is attempt 1): `base · 2^(attempt-1)`, capped
    /// at [`RetryPolicy::max_backoff`] when that is non-zero.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let doublings = attempt.saturating_sub(1).min(20);
        let raw = self.base_backoff.saturating_mul(1u32 << doublings);
        if self.max_backoff.is_zero() {
            raw
        } else {
            raw.min(self.max_backoff)
        }
    }

    /// Whether another attempt is allowed after `attempts` tries with
    /// `spent` backoff already charged to this read.
    pub fn allows_retry(&self, attempts: u32, spent: Duration) -> bool {
        if attempts >= self.max_attempts.max(1) {
            return false;
        }
        self.deadline.is_zero() || spent < self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_matches_the_historical_loop() {
        let policy = RetryPolicy::default();
        assert!(policy.allows_retry(1, Duration::ZERO));
        assert!(policy.allows_retry(2, Duration::ZERO));
        assert!(!policy.allows_retry(3, Duration::ZERO));
        assert_eq!(policy.backoff_for(1), Duration::ZERO);
        assert_eq!(policy.backoff_for(7), Duration::ZERO);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
            deadline: Duration::ZERO,
        };
        assert_eq!(policy.backoff_for(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(35));
        assert_eq!(policy.backoff_for(8), Duration::from_millis(35));
    }

    #[test]
    fn deadline_budget_stops_retries() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::ZERO,
            deadline: Duration::from_millis(25),
        };
        assert!(policy.allows_retry(1, Duration::from_millis(10)));
        assert!(!policy.allows_retry(2, Duration::from_millis(30)));
    }

    #[test]
    fn zero_attempt_floor_still_allows_one_attempt() {
        let policy = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        assert!(!policy.allows_retry(1, Duration::ZERO));
    }
}
