//! Property-based tests for the Agar core: Knapsack solver invariants
//! against random instances, and option-generation invariants against
//! random latency landscapes.

use agar::knapsack::{exhaustive_optimum, greedy, KnapsackSolver};
use agar::options::{generate_options, ObjectOptions};
use agar::RequestMonitor;
use agar_ec::{CodingParams, ObjectId};
use agar_net::RegionId;
use agar_store::ObjectManifest;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

/// Builds option sets from random per-region latencies and popularities.
fn build_instance(
    latencies_ms: &[u64; 6],
    popularities: &[f64],
) -> HashMap<ObjectId, ObjectOptions> {
    let latencies: Vec<Duration> = latencies_ms
        .iter()
        .map(|&ms| Duration::from_millis(ms))
        .collect();
    let params = CodingParams::paper_default();
    popularities
        .iter()
        .enumerate()
        .map(|(i, &pop)| {
            let object = ObjectId::new(i as u64);
            let locations = (0..12).map(|c| RegionId::new(c % 6)).collect();
            let manifest = ObjectManifest::new(object, 1_000_000, 1, params, locations);
            (
                object,
                generate_options(&manifest, &latencies, Duration::from_millis(40), pop),
            )
        })
        .collect()
}

fn latency_strategy() -> impl Strategy<Value = [u64; 6]> {
    [
        50u64..200,
        50u64..500,
        100u64..1000,
        200u64..2000,
        500u64..4000,
        500u64..5000,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dynamic program never exceeds the true optimum, never busts
    /// capacity, and never holds two options for one object.
    #[test]
    fn dp_bounded_by_optimum(
        latencies in latency_strategy(),
        pops in vec(0.1f64..100.0, 1..4),
        capacity in 0u32..20,
    ) {
        let instance = build_instance(&latencies, &pops);
        let dp = KnapsackSolver::new().populate(&instance, capacity);
        let optimum = exhaustive_optimum(&instance, capacity);

        prop_assert!(dp.weight() <= capacity);
        prop_assert!(dp.value() <= optimum.value() + 1e-6,
            "dp {} beat 'optimum' {}", dp.value(), optimum.value());

        let mut seen = std::collections::HashSet::new();
        for option in dp.options() {
            prop_assert!(seen.insert(option.object()));
        }
    }

    /// The dynamic program is at least as good as the greedy heuristic
    /// (§II-D: greedy can err badly; the DP must not do worse).
    #[test]
    fn dp_dominates_greedy(
        latencies in latency_strategy(),
        pops in vec(0.1f64..100.0, 1..6),
        capacity in 0u32..40,
    ) {
        let instance = build_instance(&latencies, &pops);
        let dp = KnapsackSolver::new().populate(&instance, capacity);
        let g = greedy(&instance, capacity);
        prop_assert!(g.weight() <= capacity);
        prop_assert!(dp.value() >= g.value() - 1e-6,
            "dp {} < greedy {}", dp.value(), g.value());
    }

    /// DP stays within 5% of the exhaustive optimum on small instances.
    /// The paper's single-table algorithm is an approximation (§VII-B
    /// concedes this); the relaxation + replacement + second-sweep moves
    /// close most of the gap, and the property bounds what remains.
    #[test]
    fn dp_close_to_optimum_small(
        latencies in latency_strategy(),
        pops in vec(0.5f64..50.0, 1..3),
        capacity in 0u32..=18,
    ) {
        let instance = build_instance(&latencies, &pops);
        let dp = KnapsackSolver::new().populate(&instance, capacity);
        let optimum = exhaustive_optimum(&instance, capacity);
        prop_assert!(dp.value() >= 0.95 * optimum.value() - 1e-6,
            "dp {} vs optimum {}", dp.value(), optimum.value());
    }

    /// Option invariants: weights are 1..=k, values are non-negative and
    /// monotone in weight, chunk lists have the stated length and never
    /// repeat a chunk.
    #[test]
    fn option_generation_invariants(
        latencies in latency_strategy(),
        pop in 0.0f64..1000.0,
    ) {
        let instance = build_instance(&latencies, &[pop]);
        let options = &instance[&ObjectId::new(0)];
        let mut last_value = -1.0;
        let mut last_weight = 0;
        for option in options.iter() {
            prop_assert_eq!(option.weight() as usize, option.chunks().len());
            prop_assert_eq!(option.weight(), last_weight + 1);
            prop_assert!(option.value() >= last_value);
            prop_assert!(option.value() >= 0.0);
            let set: std::collections::HashSet<u8> =
                option.chunks().iter().copied().collect();
            prop_assert_eq!(set.len(), option.chunks().len());
            last_value = option.value();
            last_weight = option.weight();
        }
        prop_assert_eq!(last_weight, 9);
    }

    /// EWMA popularity stays within the convex hull of observed
    /// frequencies: never negative, never above the max epoch frequency.
    #[test]
    fn monitor_popularity_bounded(epoch_freqs in vec(0u32..500, 1..12)) {
        let mut monitor = RequestMonitor::new();
        let key = ObjectId::new(7);
        let max_freq = *epoch_freqs.iter().max().unwrap() as f64;
        for &freq in &epoch_freqs {
            for _ in 0..freq {
                monitor.record_read(key);
            }
            monitor.end_epoch();
            let pop = monitor.popularity(key);
            prop_assert!(pop >= 0.0);
            prop_assert!(pop <= max_freq + 1e-9, "pop {} > max freq {}", pop, max_freq);
        }
    }
}
