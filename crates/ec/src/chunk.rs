//! Object and chunk identity types shared across the whole system.
//!
//! An *object* is the unit clients read and write (1 MB in the paper's
//! evaluation). Erasure coding splits an object into `k` data chunks and
//! `m` parity chunks (see [`CodingParams`]); a [`ChunkId`] names one of
//! those `k + m` chunks and a [`Chunk`] carries its payload plus a
//! version used by the write-path coherence protocol.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies an object in the store.
///
/// YCSB-style workloads draw keys from a dense `0..n` index space, so the
/// identifier is a plain integer; `Display` renders the familiar
/// `user###` form.
///
/// # Examples
///
/// ```
/// use agar_ec::ObjectId;
///
/// let id = ObjectId::new(42);
/// assert_eq!(id.index(), 42);
/// assert_eq!(id.to_string(), "obj-42");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Creates an object identifier from a dense index.
    pub const fn new(index: u64) -> Self {
        ObjectId(index)
    }

    /// The dense index backing this identifier.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj-{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(index: u64) -> Self {
        ObjectId(index)
    }
}

/// Index of a chunk within an object's `k + m` erasure-coded chunks.
///
/// Indices `0..k` are data chunks; `k..k+m` are parity chunks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ChunkIndex(u8);

impl ChunkIndex {
    /// Creates a chunk index.
    pub const fn new(index: u8) -> Self {
        ChunkIndex(index)
    }

    /// The raw index value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Whether this chunk is a data chunk under the given parameters.
    pub fn is_data(self, params: CodingParams) -> bool {
        (self.0 as usize) < params.data_chunks()
    }

    /// Whether this chunk is a parity chunk under the given parameters.
    pub fn is_parity(self, params: CodingParams) -> bool {
        !self.is_data(params) && (self.0 as usize) < params.total_chunks()
    }
}

impl fmt::Display for ChunkIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u8> for ChunkIndex {
    fn from(index: u8) -> Self {
        ChunkIndex(index)
    }
}

/// Fully-qualified chunk identity: which object, which chunk.
///
/// # Examples
///
/// ```
/// use agar_ec::{ChunkId, ObjectId};
///
/// let id = ChunkId::new(ObjectId::new(7), 3);
/// assert_eq!(id.object().index(), 7);
/// assert_eq!(id.index().value(), 3);
/// assert_eq!(id.to_string(), "obj-7/#3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ChunkId {
    object: ObjectId,
    index: ChunkIndex,
}

impl ChunkId {
    /// Creates a chunk identifier.
    pub fn new(object: ObjectId, index: impl Into<ChunkIndex>) -> Self {
        ChunkId {
            object,
            index: index.into(),
        }
    }

    /// The object this chunk belongs to.
    pub const fn object(self) -> ObjectId {
        self.object
    }

    /// The chunk's index within the object.
    pub const fn index(self) -> ChunkIndex {
        self.index
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.object, self.index)
    }
}

/// A set of chunk indices backed by a fixed bitmask.
///
/// Chunk indices are `u8`, so four 64-bit words cover the entire domain
/// with O(1) insert/contains. The read planner uses it to deduplicate
/// candidate sources, and the Reed-Solomon codec keys its decode-plan
/// cache on the present-shard pattern — `Hash`/`Eq` compare the raw
/// words, so equal sets are equal keys. (Every shipped preset fits in
/// the first word: RS(9, 3) has 12 chunks.)
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Hash)]
pub struct ChunkSet {
    words: [u64; 4],
}

impl ChunkSet {
    /// The empty set.
    pub const fn new() -> Self {
        ChunkSet { words: [0; 4] }
    }

    /// Adds an index; returns whether it was newly inserted.
    pub fn insert(&mut self, index: u8) -> bool {
        let word = &mut self.words[(index >> 6) as usize];
        let bit = 1u64 << (index & 63);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Whether the index is in the set.
    pub fn contains(&self, index: u8) -> bool {
        self.words[(index >> 6) as usize] & (1u64 << (index & 63)) != 0
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl FromIterator<u8> for ChunkSet {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut set = ChunkSet::new();
        for index in iter {
            set.insert(index);
        }
        set
    }
}

/// Erasure-coding parameters: `k` data chunks, `m` parity chunks.
///
/// The paper's deployment uses RS(9, 3): `k = 9`, `m = 3`.
///
/// # Examples
///
/// ```
/// use agar_ec::CodingParams;
///
/// let params = CodingParams::new(9, 3)?;
/// assert_eq!(params.total_chunks(), 12);
/// // A 1 MB object yields chunks of ceil(size / k) bytes.
/// assert_eq!(params.chunk_size(1_000_000), 111_112);
/// # Ok::<(), agar_ec::EcError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct CodingParams {
    data_chunks: usize,
    parity_chunks: usize,
}

impl CodingParams {
    /// Creates coding parameters.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EcError::InvalidCodingParams`] unless
    /// `1 <= k`, `1 <= m` and `k + m <= 255` (field-size limit for the
    /// GF(2^8) Reed-Solomon construction).
    pub fn new(data_chunks: usize, parity_chunks: usize) -> Result<Self, crate::EcError> {
        if data_chunks == 0 || parity_chunks == 0 || data_chunks + parity_chunks > 255 {
            return Err(crate::EcError::InvalidCodingParams {
                data_chunks,
                parity_chunks,
            });
        }
        Ok(CodingParams {
            data_chunks,
            parity_chunks,
        })
    }

    /// The paper's RS(9, 3) configuration.
    pub fn paper_default() -> Self {
        CodingParams {
            data_chunks: 9,
            parity_chunks: 3,
        }
    }

    /// Number of data chunks (`k`).
    pub const fn data_chunks(self) -> usize {
        self.data_chunks
    }

    /// Number of parity chunks (`m`).
    pub const fn parity_chunks(self) -> usize {
        self.parity_chunks
    }

    /// Total number of chunks (`k + m`).
    pub const fn total_chunks(self) -> usize {
        self.data_chunks + self.parity_chunks
    }

    /// Size in bytes of each chunk for an object of `object_size` bytes
    /// (objects are padded up to a multiple of `k`).
    pub const fn chunk_size(self, object_size: usize) -> usize {
        object_size.div_ceil(self.data_chunks)
    }

    /// All chunk indices, data first then parity.
    pub fn chunk_indices(self) -> impl Iterator<Item = ChunkIndex> {
        (0..self.total_chunks() as u8).map(ChunkIndex::new)
    }
}

impl fmt::Display for CodingParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RS({},{})", self.data_chunks, self.parity_chunks)
    }
}

/// A chunk payload together with its identity and version.
///
/// Versions start at 0 and are bumped by every write to the owning
/// object; the cache-coherence extension compares versions to reject
/// stale cached chunks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chunk {
    id: ChunkId,
    version: u64,
    data: Bytes,
}

impl Chunk {
    /// Creates a chunk.
    pub fn new(id: ChunkId, version: u64, data: Bytes) -> Self {
        Chunk { id, version, data }
    }

    /// The chunk's identity.
    pub fn id(&self) -> ChunkId {
        self.id
    }

    /// The version of the owning object this chunk was encoded from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The chunk payload. `Bytes` makes clones cheap (reference counted).
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consumes the chunk, returning its payload.
    pub fn into_data(self) -> Bytes {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_roundtrip_and_display() {
        let id = ObjectId::new(123);
        assert_eq!(id.index(), 123);
        assert_eq!(id.to_string(), "obj-123");
        assert_eq!(ObjectId::from(123u64), id);
    }

    #[test]
    fn chunk_index_classification() {
        let params = CodingParams::new(9, 3).unwrap();
        assert!(ChunkIndex::new(0).is_data(params));
        assert!(ChunkIndex::new(8).is_data(params));
        assert!(!ChunkIndex::new(9).is_data(params));
        assert!(ChunkIndex::new(9).is_parity(params));
        assert!(ChunkIndex::new(11).is_parity(params));
        assert!(!ChunkIndex::new(12).is_parity(params)); // out of range entirely
    }

    #[test]
    fn chunk_id_accessors() {
        let id = ChunkId::new(ObjectId::new(5), ChunkIndex::new(2));
        assert_eq!(id.object(), ObjectId::new(5));
        assert_eq!(id.index(), ChunkIndex::new(2));
        assert_eq!(id.to_string(), "obj-5/#2");
    }

    #[test]
    fn coding_params_validation() {
        assert!(CodingParams::new(0, 3).is_err());
        assert!(CodingParams::new(9, 0).is_err());
        assert!(CodingParams::new(200, 56).is_err());
        assert!(CodingParams::new(200, 55).is_ok());
        let p = CodingParams::paper_default();
        assert_eq!(p.data_chunks(), 9);
        assert_eq!(p.parity_chunks(), 3);
        assert_eq!(p.total_chunks(), 12);
        assert_eq!(p.to_string(), "RS(9,3)");
    }

    #[test]
    fn chunk_size_rounds_up() {
        let p = CodingParams::new(9, 3).unwrap();
        assert_eq!(p.chunk_size(9), 1);
        assert_eq!(p.chunk_size(10), 2);
        assert_eq!(p.chunk_size(1_000_000), 111_112);
        assert_eq!(p.chunk_size(0), 0);
    }

    #[test]
    fn chunk_indices_iterates_all() {
        let p = CodingParams::new(4, 2).unwrap();
        let ids: Vec<u8> = p.chunk_indices().map(ChunkIndex::value).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn chunk_payload_accessors() {
        let id = ChunkId::new(ObjectId::new(1), 0);
        let c = Chunk::new(id, 7, Bytes::from_static(b"hello"));
        assert_eq!(c.id(), id);
        assert_eq!(c.version(), 7);
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert_eq!(c.data().as_ref(), b"hello");
        assert_eq!(c.into_data().as_ref(), b"hello");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = ChunkId::new(ObjectId::new(1), 0);
        let b = ChunkId::new(ObjectId::new(1), 1);
        let c = ChunkId::new(ObjectId::new(2), 0);
        assert!(a < b && b < c);
        let set: HashSet<ChunkId> = [a, b, c, a].into_iter().collect();
        assert_eq!(set.len(), 3);
    }
}
