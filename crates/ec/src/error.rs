//! Error type for the erasure-coding substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by the `agar-ec` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EcError {
    /// A matrix was requested with an impossible shape (zero dimension,
    /// too many rows for distinct field elements, or data length that
    /// does not match the shape).
    InvalidDimensions {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
    },
    /// Two matrices had incompatible shapes for the attempted operation.
    DimensionMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The offending index.
        row: usize,
        /// The number of rows in the matrix.
        rows: usize,
    },
    /// Inversion was attempted on a non-square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// The matrix has no inverse.
    SingularMatrix,
    /// Coding parameters are outside the supported range.
    InvalidCodingParams {
        /// Number of data chunks requested.
        data_chunks: usize,
        /// Number of parity chunks requested.
        parity_chunks: usize,
    },
    /// The number of shards handed to encode/reconstruct does not match
    /// the code's `k + m`.
    WrongShardCount {
        /// Shards provided.
        provided: usize,
        /// Shards expected.
        expected: usize,
    },
    /// Shards must all have the same non-zero length.
    ShardSizeMismatch,
    /// Too few shards are present to reconstruct the data.
    NotEnoughShards {
        /// Shards present.
        present: usize,
        /// Shards needed (the code's `k`).
        needed: usize,
    },
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcError::InvalidDimensions { rows, cols } => {
                write!(f, "invalid matrix dimensions {rows}x{cols}")
            }
            EcError::DimensionMismatch { left, right } => write!(
                f,
                "matrix shapes {}x{} and {}x{} are incompatible",
                left.0, left.1, right.0, right.1
            ),
            EcError::RowOutOfBounds { row, rows } => {
                write!(f, "row index {row} out of bounds for {rows} rows")
            }
            EcError::NotSquare { rows, cols } => {
                write!(f, "matrix {rows}x{cols} is not square")
            }
            EcError::SingularMatrix => write!(f, "matrix is singular"),
            EcError::InvalidCodingParams {
                data_chunks,
                parity_chunks,
            } => write!(
                f,
                "unsupported coding parameters k={data_chunks}, m={parity_chunks}"
            ),
            EcError::WrongShardCount { provided, expected } => {
                write!(f, "expected {expected} shards, got {provided}")
            }
            EcError::ShardSizeMismatch => {
                write!(f, "shards must all have the same non-zero length")
            }
            EcError::NotEnoughShards { present, needed } => {
                write!(f, "only {present} shards present, need at least {needed}")
            }
        }
    }
}

impl Error for EcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(EcError, &str)> = vec![
            (EcError::InvalidDimensions { rows: 0, cols: 3 }, "0x3"),
            (
                EcError::DimensionMismatch {
                    left: (2, 3),
                    right: (4, 5),
                },
                "incompatible",
            ),
            (EcError::RowOutOfBounds { row: 9, rows: 3 }, "row index 9"),
            (EcError::NotSquare { rows: 2, cols: 3 }, "not square"),
            (EcError::SingularMatrix, "singular"),
            (
                EcError::InvalidCodingParams {
                    data_chunks: 0,
                    parity_chunks: 3,
                },
                "k=0",
            ),
            (
                EcError::WrongShardCount {
                    provided: 3,
                    expected: 12,
                },
                "expected 12",
            ),
            (EcError::ShardSizeMismatch, "same non-zero length"),
            (
                EcError::NotEnoughShards {
                    present: 4,
                    needed: 9,
                },
                "need at least 9",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
            assert!(
                !msg.ends_with('.'),
                "{msg:?} should not end with punctuation"
            );
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<EcError>();
    }
}
