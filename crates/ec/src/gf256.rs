//! Arithmetic in the Galois field GF(2^8).
//!
//! The field is constructed as GF(2)\[x\] / (x^8 + x^4 + x^3 + x^2 + 1),
//! i.e. with the reducing polynomial `0x11D` that is conventional for
//! Reed-Solomon codes. Multiplication and division are table-driven:
//! exponentiation/logarithm tables with respect to the generator `x`
//! (`0x02`) are computed at compile time by a `const fn`, so lookups are
//! branch-free at runtime and there is no lazy initialisation.
//!
//! # Examples
//!
//! ```
//! use agar_ec::gf256::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! // Addition in GF(2^8) is XOR, so every element is its own inverse.
//! assert_eq!(a + b, Gf256::new(0x53 ^ 0xCA));
//! assert_eq!(a + a, Gf256::ZERO);
//! // Multiplication distributes over addition.
//! let c = Gf256::new(7);
//! assert_eq!(c * (a + b), c * a + c * b);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The reducing polynomial x^8 + x^4 + x^3 + x^2 + 1 (without the x^8 bit
/// it is `0x1D`); this is the polynomial used by most Reed-Solomon
/// implementations, including the one in the paper's Longhair dependency.
pub const REDUCING_POLYNOMIAL: u16 = 0x11D;

/// Order of the multiplicative group of GF(2^8).
pub const GROUP_ORDER: usize = 255;

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= REDUCING_POLYNOMIAL;
        }
        i += 1;
    }
    // Mirror the table so `exp[log a + log b]` never needs a modulo.
    let mut j = GROUP_ORDER;
    while j < 512 {
        exp[j] = exp[j - GROUP_ORDER];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
/// `EXP[i]` is the generator raised to the `i`-th power; doubled in length
/// so that indices up to `2 * 254` need no reduction.
const EXP: [u8; 512] = TABLES.0;
/// `LOG[a]` is the discrete logarithm of `a` (undefined, stored as 0, for
/// `a == 0`; all callers must check for zero first).
const LOG: [u8; 256] = TABLES.1;

const fn mul_const(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
}

/// Split-nibble multiplication tables for every coefficient.
///
/// `c * s` factors over the byte's nibbles — `c * s = c * (s & 0x0F) +
/// c * (s & 0xF0)` because multiplication distributes over XOR — so two
/// 16-entry tables per coefficient replace the log/exp walk with two
/// independent loads and one XOR, with no zero-check branch. All 256
/// coefficients fit in 8 KiB (half an L1 way), so the full table is
/// built at compile time rather than lazily per codec instance; every
/// `ReedSolomon` shares it for free.
const fn build_nibble_tables() -> ([[u8; 16]; 256], [[u8; 16]; 256]) {
    let mut lo = [[0u8; 16]; 256];
    let mut hi = [[0u8; 16]; 256];
    let mut c = 0;
    while c < 256 {
        let mut n = 0;
        while n < 16 {
            lo[c][n] = mul_const(c as u8, n as u8);
            hi[c][n] = mul_const(c as u8, (n << 4) as u8);
            n += 1;
        }
        c += 1;
    }
    (lo, hi)
}

const NIBBLE_TABLES: ([[u8; 16]; 256], [[u8; 16]; 256]) = build_nibble_tables();
const NIB_LO: [[u8; 16]; 256] = NIBBLE_TABLES.0;
const NIB_HI: [[u8; 16]; 256] = NIBBLE_TABLES.1;

/// The two 16-entry split-nibble tables for a coefficient:
/// `c * s == lo[s & 0x0F] ^ hi[s >> 4]`.
#[inline]
pub fn nibble_tables(coefficient: u8) -> (&'static [u8; 16], &'static [u8; 16]) {
    (&NIB_LO[coefficient as usize], &NIB_HI[coefficient as usize])
}

/// GF(2^8) multiplication by a constant is GF(2)-linear, so each
/// coefficient is an 8x8 bit matrix — exactly the operand shape of the
/// `GF2P8AFFINEQB` instruction, which applies it to 32 bytes at once.
/// Byte `7 - i` of the packed matrix holds output bit `i`'s row; bit
/// `j` of that row is bit `i` of `c * x^j` (convention verified against
/// the table multiply by `gfni_matrices_encode_multiplication`).
#[cfg(target_arch = "x86_64")]
const fn build_gfni_matrices() -> [u64; 256] {
    let mut out = [0u64; 256];
    let mut c = 0;
    while c < 256 {
        let mut matrix = 0u64;
        let mut i = 0;
        while i < 8 {
            let mut row = 0u8;
            let mut j = 0;
            while j < 8 {
                if mul_const(c as u8, 1 << j) >> i & 1 != 0 {
                    row |= 1 << j;
                }
                j += 1;
            }
            matrix |= (row as u64) << (8 * (7 - i));
            i += 1;
        }
        out[c] = matrix;
        c += 1;
    }
    out
}

#[cfg(target_arch = "x86_64")]
const GFNI_MATRICES: [u64; 256] = build_gfni_matrices();

/// The widest coefficient-multiply kernel this CPU supports, detected
/// once. `AGAR_GF256_KERNEL` (`gfni`/`avx2`/`ssse3`/`scalar`) caps the
/// level for A/B benchmarking; detection still gates what actually
/// runs, so the override can only *lower* the tier.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SimdLevel {
    Scalar,
    Ssse3,
    Avx2,
    Gfni,
}

#[cfg(target_arch = "x86_64")]
fn simd_level() -> SimdLevel {
    static LEVEL: std::sync::OnceLock<SimdLevel> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(|| {
        let detected = if std::arch::is_x86_feature_detected!("gfni")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            SimdLevel::Gfni
        } else if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else if std::arch::is_x86_feature_detected!("ssse3") {
            SimdLevel::Ssse3
        } else {
            SimdLevel::Scalar
        };
        let cap = match std::env::var("AGAR_GF256_KERNEL") {
            Ok(value) => match value.to_ascii_lowercase().as_str() {
                "scalar" => SimdLevel::Scalar,
                "ssse3" => SimdLevel::Ssse3,
                "avx2" => SimdLevel::Avx2,
                "gfni" => SimdLevel::Gfni,
                other => {
                    // A typo must not silently benchmark the wrong
                    // tier; warn once and apply no cap.
                    eprintln!(
                        "AGAR_GF256_KERNEL={other:?} not recognised \
                         (expected gfni|avx2|ssse3|scalar); ignoring"
                    );
                    SimdLevel::Gfni
                }
            },
            Err(_) => SimdLevel::Gfni,
        };
        detected.min(cap)
    })
}

/// The vector bodies of the slice kernels. Each function consumes as
/// many whole blocks as its width allows and returns the byte count
/// handled; the caller finishes the tail with the scalar kernel.
///
/// # Safety
///
/// Each function requires the CPU features named in its
/// `target_feature` attribute; [`simd_level`] gates every call site.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// `dst ^= matrix * src` (GFNI): one affine op per 32-byte block.
    // SAFETY: caller must have verified GFNI+AVX2 (via `simd_level`).
    #[target_feature(enable = "gfni,avx2")]
    pub unsafe fn mul_add_gfni(dst: &mut [u8], src: &[u8], matrix: u64) -> usize {
        let m = _mm256_set1_epi64x(matrix as i64);
        for (d, s) in dst.chunks_exact_mut(32).zip(src.chunks_exact(32)) {
            let sv = _mm256_loadu_si256(s.as_ptr().cast());
            let prod = _mm256_gf2p8affine_epi64_epi8::<0>(sv, m);
            let dv = _mm256_loadu_si256(d.as_ptr().cast());
            _mm256_storeu_si256(d.as_mut_ptr().cast(), _mm256_xor_si256(dv, prod));
        }
        dst.len() & !31
    }

    /// `dst = matrix * src` (GFNI).
    // SAFETY: caller must have verified GFNI+AVX2 (via `simd_level`).
    #[target_feature(enable = "gfni,avx2")]
    pub unsafe fn mul_gfni(dst: &mut [u8], src: &[u8], matrix: u64) -> usize {
        let m = _mm256_set1_epi64x(matrix as i64);
        for (d, s) in dst.chunks_exact_mut(32).zip(src.chunks_exact(32)) {
            let sv = _mm256_loadu_si256(s.as_ptr().cast());
            let prod = _mm256_gf2p8affine_epi64_epi8::<0>(sv, m);
            _mm256_storeu_si256(d.as_mut_ptr().cast(), prod);
        }
        dst.len() & !31
    }

    /// Split-nibble product of one 32-byte block via two `PSHUFB`s.
    // SAFETY: caller must have verified AVX2 (via `simd_level`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn nibble_product_avx2(s: __m256i, lo: __m256i, hi: __m256i) -> __m256i {
        let mask = _mm256_set1_epi8(0x0F);
        let s_lo = _mm256_and_si256(s, mask);
        let s_hi = _mm256_and_si256(_mm256_srli_epi16::<4>(s), mask);
        _mm256_xor_si256(_mm256_shuffle_epi8(lo, s_lo), _mm256_shuffle_epi8(hi, s_hi))
    }

    /// `dst ^= c * src` (AVX2): split-nibble `PSHUFB` over 32 bytes.
    // SAFETY: caller must have verified AVX2 (via `simd_level`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_add_avx2(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) -> usize {
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
        for (d, s) in dst.chunks_exact_mut(32).zip(src.chunks_exact(32)) {
            let sv = _mm256_loadu_si256(s.as_ptr().cast());
            let prod = nibble_product_avx2(sv, lo_t, hi_t);
            let dv = _mm256_loadu_si256(d.as_ptr().cast());
            _mm256_storeu_si256(d.as_mut_ptr().cast(), _mm256_xor_si256(dv, prod));
        }
        dst.len() & !31
    }

    /// `dst = c * src` (AVX2).
    // SAFETY: caller must have verified AVX2 (via `simd_level`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_avx2(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) -> usize {
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
        for (d, s) in dst.chunks_exact_mut(32).zip(src.chunks_exact(32)) {
            let sv = _mm256_loadu_si256(s.as_ptr().cast());
            let prod = nibble_product_avx2(sv, lo_t, hi_t);
            _mm256_storeu_si256(d.as_mut_ptr().cast(), prod);
        }
        dst.len() & !31
    }

    /// Split-nibble product of one 16-byte block (SSSE3).
    // SAFETY: caller must have verified SSSE3 (via `simd_level`).
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn nibble_product_ssse3(s: __m128i, lo: __m128i, hi: __m128i) -> __m128i {
        let mask = _mm_set1_epi8(0x0F);
        let s_lo = _mm_and_si128(s, mask);
        let s_hi = _mm_and_si128(_mm_srli_epi16::<4>(s), mask);
        _mm_xor_si128(_mm_shuffle_epi8(lo, s_lo), _mm_shuffle_epi8(hi, s_hi))
    }

    /// `dst ^= c * src` (SSSE3): split-nibble `PSHUFB` over 16 bytes.
    // SAFETY: caller must have verified SSSE3 (via `simd_level`).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_add_ssse3(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) -> usize {
        let lo_t = _mm_loadu_si128(lo.as_ptr().cast());
        let hi_t = _mm_loadu_si128(hi.as_ptr().cast());
        for (d, s) in dst.chunks_exact_mut(16).zip(src.chunks_exact(16)) {
            let sv = _mm_loadu_si128(s.as_ptr().cast());
            let prod = nibble_product_ssse3(sv, lo_t, hi_t);
            let dv = _mm_loadu_si128(d.as_ptr().cast());
            _mm_storeu_si128(d.as_mut_ptr().cast(), _mm_xor_si128(dv, prod));
        }
        dst.len() & !15
    }

    /// `dst = c * src` (SSSE3).
    // SAFETY: caller must have verified SSSE3 (via `simd_level`).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_ssse3(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) -> usize {
        let lo_t = _mm_loadu_si128(lo.as_ptr().cast());
        let hi_t = _mm_loadu_si128(hi.as_ptr().cast());
        for (d, s) in dst.chunks_exact_mut(16).zip(src.chunks_exact(16)) {
            let sv = _mm_loadu_si128(s.as_ptr().cast());
            let prod = nibble_product_ssse3(sv, lo_t, hi_t);
            _mm_storeu_si128(d.as_mut_ptr().cast(), prod);
        }
        dst.len() & !15
    }
}

/// An element of GF(2^8).
///
/// This is a zero-cost wrapper around `u8` giving field semantics to the
/// arithmetic operators: `+`/`-` are XOR, `*`/`/` go through the
/// log/exp tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The conventional generator of the multiplicative group (`x`, i.e. 2).
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Wraps a byte as a field element.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the underlying byte.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero, which has no inverse.
    #[inline]
    pub fn inverse(self) -> Self {
        assert!(
            !self.is_zero(),
            "zero has no multiplicative inverse in GF(2^8)"
        );
        Gf256(EXP[GROUP_ORDER - LOG[self.0 as usize] as usize])
    }

    /// Checked multiplicative inverse; `None` for zero.
    #[inline]
    pub fn checked_inverse(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.inverse())
        }
    }

    /// Raises the element to an arbitrary power.
    ///
    /// `0^0` is defined as 1, matching the usual convention for
    /// Vandermonde matrix construction.
    pub fn pow(self, mut exponent: usize) -> Self {
        if exponent == 0 {
            return Gf256::ONE;
        }
        if self.is_zero() {
            return Gf256::ZERO;
        }
        exponent %= GROUP_ORDER;
        if exponent == 0 {
            return Gf256::ONE;
        }
        let log = LOG[self.0 as usize] as usize;
        Gf256(EXP[(log * exponent) % GROUP_ORDER])
    }

    /// `self * a + b`, the fused operation at the heart of matrix-vector
    /// products over the field.
    #[inline]
    pub fn mul_add(self, a: Gf256, b: Gf256) -> Self {
        self * a + b
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    // In GF(2^8) addition is carry-less: xor is the field operation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction and addition coincide.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        // Every element is its own additive inverse.
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let log = LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize;
        Gf256(EXP[log])
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        assert!(!rhs.is_zero(), "division by zero in GF(2^8)");
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let log = LOG[self.0 as usize] as usize + GROUP_ORDER - LOG[rhs.0 as usize] as usize;
        Gf256(EXP[log])
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

/// Raw-byte multiply, convenient for slice kernels.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    (Gf256(a) * Gf256(b)).0
}

/// `dst ^= src`, eight bytes per step.
///
/// XOR over GF(2^8) slices is carry-less, so the kernel reinterprets
/// both sides as `u64` words; the scalar tail handles the last
/// `len % 8` bytes. This is the coefficient-1 path of the Reed-Solomon
/// kernels — the common case for systematic parity rows.
#[inline]
fn xor_slice(dst: &mut [u8], src: &[u8]) {
    let mut dst_words = dst.chunks_exact_mut(8);
    let mut src_words = src.chunks_exact(8);
    for (d, s) in dst_words.by_ref().zip(src_words.by_ref()) {
        let word = u64::from_ne_bytes(d.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&word.to_ne_bytes());
    }
    for (d, s) in dst_words
        .into_remainder()
        .iter_mut()
        .zip(src_words.remainder())
    {
        *d ^= *s;
    }
}

/// Scalar split-nibble `dst ^= c * src`: 64-byte blocks (fixed trip
/// counts the optimizer unrolls) plus a per-byte tail. Also serves as
/// the tail kernel behind the SIMD paths.
#[inline]
fn mul_add_scalar(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
    let mut dst_blocks = dst.chunks_exact_mut(64);
    let mut src_blocks = src.chunks_exact(64);
    for (d, s) in dst_blocks.by_ref().zip(src_blocks.by_ref()) {
        for i in 0..64 {
            d[i] ^= lo[(s[i] & 0x0F) as usize] ^ hi[(s[i] >> 4) as usize];
        }
    }
    for (d, s) in dst_blocks
        .into_remainder()
        .iter_mut()
        .zip(src_blocks.remainder())
    {
        *d ^= lo[(*s & 0x0F) as usize] ^ hi[(*s >> 4) as usize];
    }
}

/// Scalar split-nibble `dst = c * src`; see [`mul_add_scalar`].
#[inline]
fn mul_scalar(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
    let mut dst_blocks = dst.chunks_exact_mut(64);
    let mut src_blocks = src.chunks_exact(64);
    for (d, s) in dst_blocks.by_ref().zip(src_blocks.by_ref()) {
        for i in 0..64 {
            d[i] = lo[(s[i] & 0x0F) as usize] ^ hi[(s[i] >> 4) as usize];
        }
    }
    for (d, s) in dst_blocks
        .into_remainder()
        .iter_mut()
        .zip(src_blocks.remainder())
    {
        *d = lo[(*s & 0x0F) as usize] ^ hi[(*s >> 4) as usize];
    }
}

/// `dst[i] ^= coefficient * src[i]` for every `i`.
///
/// This is the inner loop of Reed-Solomon encoding and decoding: a row
/// coefficient applied to a whole shard and accumulated into an output
/// shard. The body dispatches to the widest branch-free kernel the CPU
/// offers — `GF2P8AFFINEQB` (one instruction per 32 bytes), AVX2 or
/// SSSE3 split-nibble `PSHUFB`, or the scalar split-nibble loop (see
/// [`nibble_tables`]) — with the scalar kernel finishing any tail.
/// Coefficient 0 is a no-op and coefficient 1 takes the
/// u64-wide XOR path. Every tier computes bit-identical output.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_slice(dst: &mut [u8], src: &[u8], coefficient: u8) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_add_slice requires equal-length slices"
    );
    if coefficient == 0 {
        return;
    }
    if coefficient == 1 {
        xor_slice(dst, src);
        return;
    }
    let lo = &NIB_LO[coefficient as usize];
    let hi = &NIB_HI[coefficient as usize];
    #[cfg(target_arch = "x86_64")]
    let done = match simd_level() {
        // SAFETY: simd_level() verified GFNI and AVX2 at runtime.
        SimdLevel::Gfni => unsafe {
            x86::mul_add_gfni(dst, src, GFNI_MATRICES[coefficient as usize])
        },
        // SAFETY: simd_level() verified AVX2 at runtime.
        SimdLevel::Avx2 => unsafe { x86::mul_add_avx2(dst, src, lo, hi) },
        // SAFETY: simd_level() verified SSSE3 at runtime.
        SimdLevel::Ssse3 => unsafe { x86::mul_add_ssse3(dst, src, lo, hi) },
        SimdLevel::Scalar => 0,
    };
    #[cfg(not(target_arch = "x86_64"))]
    let done = 0;
    mul_add_scalar(&mut dst[done..], &src[done..], lo, hi);
}

/// `dst[i] = coefficient * src[i]` for every `i`.
///
/// Same kernel dispatch as [`mul_add_slice`]; `memset`/`memcpy` for
/// coefficients 0 and 1.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_slice(dst: &mut [u8], src: &[u8], coefficient: u8) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_slice requires equal-length slices"
    );
    if coefficient == 0 {
        dst.fill(0);
        return;
    }
    if coefficient == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let lo = &NIB_LO[coefficient as usize];
    let hi = &NIB_HI[coefficient as usize];
    #[cfg(target_arch = "x86_64")]
    let done = match simd_level() {
        // SAFETY: simd_level() verified GFNI and AVX2 at runtime.
        SimdLevel::Gfni => unsafe { x86::mul_gfni(dst, src, GFNI_MATRICES[coefficient as usize]) },
        // SAFETY: simd_level() verified AVX2 at runtime.
        SimdLevel::Avx2 => unsafe { x86::mul_avx2(dst, src, lo, hi) },
        // SAFETY: simd_level() verified SSSE3 at runtime.
        SimdLevel::Ssse3 => unsafe { x86::mul_ssse3(dst, src, lo, hi) },
        SimdLevel::Scalar => 0,
    };
    #[cfg(not(target_arch = "x86_64"))]
    let done = 0;
    mul_scalar(&mut dst[done..], &src[done..], lo, hi);
}

/// Naive scalar reference kernels.
///
/// These are the pre-optimization log/exp-table loops, retained
/// verbatim as the ground truth the property tests hold the nibble
/// kernels to. Never called on a hot path.
pub mod naive {
    use super::{EXP, LOG};

    /// Reference `dst[i] ^= coefficient * src[i]`: per-byte log/exp
    /// walk with a zero-check branch.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_add_slice(dst: &mut [u8], src: &[u8], coefficient: u8) {
        assert_eq!(
            dst.len(),
            src.len(),
            "mul_add_slice requires equal-length slices"
        );
        if coefficient == 0 {
            return;
        }
        if coefficient == 1 {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= *s;
            }
            return;
        }
        let log_c = LOG[coefficient as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= EXP[log_c + LOG[*s as usize] as usize];
            }
        }
    }

    /// Reference `dst[i] = coefficient * src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_slice(dst: &mut [u8], src: &[u8], coefficient: u8) {
        assert_eq!(
            dst.len(),
            src.len(),
            "mul_slice requires equal-length slices"
        );
        if coefficient == 0 {
            dst.fill(0);
            return;
        }
        if coefficient == 1 {
            dst.copy_from_slice(src);
            return;
        }
        let log_c = LOG[coefficient as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            *d = if *s == 0 {
                0
            } else {
                EXP[log_c + LOG[*s as usize] as usize]
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256::new(0b1010) + Gf256::new(0b0110), Gf256::new(0b1100));
    }

    #[test]
    fn addition_identity_and_self_inverse() {
        for v in 0..=255u8 {
            let a = Gf256::new(v);
            assert_eq!(a + Gf256::ZERO, a);
            assert_eq!(a + a, Gf256::ZERO);
            assert_eq!(-a, a);
            assert_eq!(a - a, Gf256::ZERO);
        }
    }

    #[test]
    fn multiplication_identity() {
        for v in 0..=255u8 {
            let a = Gf256::new(v);
            assert_eq!(a * Gf256::ONE, a);
            assert_eq!(Gf256::ONE * a, a);
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn known_products() {
        // Worked examples with the 0x11D polynomial.
        assert_eq!(mul(2, 2), 4);
        assert_eq!(mul(0x80, 2), 0x1D); // overflow wraps through the polynomial
        assert_eq!(mul(0x8E, 2), 0x01); // 0x8E is the inverse of the generator
        assert_eq!(Gf256::GENERATOR.inverse(), Gf256::new(0x8E));
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for v in 1..=255u8 {
            let a = Gf256::new(v);
            let inv = a.inverse();
            assert_eq!(a * inv, Gf256::ONE, "inverse failed for {v}");
            assert_eq!(a.checked_inverse(), Some(inv));
        }
        assert_eq!(Gf256::ZERO.checked_inverse(), None);
    }

    #[test]
    #[should_panic(expected = "zero has no multiplicative inverse")]
    fn zero_inverse_panics() {
        let _ = Gf256::ZERO.inverse();
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    fn division_matches_inverse_multiplication() {
        for a in (0..=255u8).step_by(7) {
            for b in 1..=255u8 {
                let lhs = Gf256::new(a) / Gf256::new(b);
                let rhs = Gf256::new(a) * Gf256::new(b).inverse();
                assert_eq!(lhs, rhs);
            }
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative_spot() {
        for &(a, b, c) in &[(3u8, 7u8, 250u8), (0x53, 0xCA, 0x01), (255, 254, 253)] {
            let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..GROUP_ORDER {
            assert!(!seen[x.value() as usize], "generator cycled early");
            seen[x.value() as usize] = true;
            x *= Gf256::GENERATOR;
        }
        assert_eq!(x, Gf256::ONE, "generator order is not 255");
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for v in [0u8, 1, 2, 5, 97, 255] {
            let a = Gf256::new(v);
            let mut acc = Gf256::ONE;
            for e in 0..20 {
                assert_eq!(a.pow(e), acc, "pow mismatch for {v}^{e}");
                acc *= a;
            }
        }
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
    }

    #[test]
    fn pow_reduces_exponent_modulo_group_order() {
        let a = Gf256::new(29);
        assert_eq!(a.pow(GROUP_ORDER), Gf256::ONE);
        assert_eq!(a.pow(GROUP_ORDER + 3), a.pow(3));
        assert_eq!(a.pow(2 * GROUP_ORDER), Gf256::ONE);
    }

    #[test]
    fn mul_add_slice_accumulates() {
        let src = [1u8, 2, 3, 0, 255];
        let mut dst = [9u8, 9, 9, 9, 9];
        let expected: Vec<u8> = dst
            .iter()
            .zip(src.iter())
            .map(|(&d, &s)| d ^ mul(s, 29))
            .collect();
        mul_add_slice(&mut dst, &src, 29);
        assert_eq!(dst.as_slice(), expected.as_slice());
    }

    #[test]
    fn mul_add_slice_zero_coefficient_is_noop() {
        let src = [7u8; 16];
        let mut dst = [3u8; 16];
        mul_add_slice(&mut dst, &src, 0);
        assert_eq!(dst, [3u8; 16]);
    }

    #[test]
    fn mul_add_slice_one_coefficient_is_xor() {
        let src = [0xF0u8; 4];
        let mut dst = [0x0Fu8; 4];
        mul_add_slice(&mut dst, &src, 1);
        assert_eq!(dst, [0xFFu8; 4]);
    }

    #[test]
    fn mul_slice_overwrites() {
        let src = [1u8, 2, 4, 8];
        let mut dst = [0u8; 4];
        mul_slice(&mut dst, &src, 2);
        assert_eq!(dst, [2, 4, 8, 16]);
        mul_slice(&mut dst, &src, 0);
        assert_eq!(dst, [0; 4]);
        mul_slice(&mut dst, &src, 1);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mul_add_slice_length_mismatch_panics() {
        mul_add_slice(&mut [0u8; 3], &[0u8; 4], 1);
    }

    #[test]
    fn nibble_tables_factor_every_product() {
        for c in 0..=255u8 {
            let (lo, hi) = nibble_tables(c);
            for s in 0..=255u8 {
                assert_eq!(
                    lo[(s & 0x0F) as usize] ^ hi[(s >> 4) as usize],
                    mul(c, s),
                    "coefficient {c}, byte {s}"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn gfni_matrices_encode_multiplication() {
        // Validates the packed 8x8 bit-matrix convention with plain
        // scalar arithmetic (runs on every host, GFNI or not): output
        // bit `i` must be the parity of row `7 - i` ANDed with the
        // input byte.
        for c in 0..=255u8 {
            let matrix = GFNI_MATRICES[c as usize];
            for s in [0u8, 1, 2, 0x53, 0x80, 0xCA, 0xFF] {
                let mut out = 0u8;
                for i in 0..8 {
                    let row = (matrix >> (8 * (7 - i))) as u8;
                    out |= (((row & s).count_ones() as u8) & 1) << i;
                }
                assert_eq!(out, mul(c, s), "coefficient {c}, byte {s}");
            }
        }
    }

    #[test]
    fn kernels_match_naive_across_lengths_and_coefficients() {
        // Exercise the SIMD blocks (16/32 bytes), the scalar 64-byte
        // blocks, the 8-byte XOR words and every tail length, for the
        // three kernel paths (0, 1, general).
        for len in [
            0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 130, 200, 1025,
        ] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let init: Vec<u8> = (0..len).map(|i| (i * 101 + 5) as u8).collect();
            for c in [0u8, 1, 2, 29, 143, 255] {
                let mut fast = init.clone();
                let mut slow = init.clone();
                mul_add_slice(&mut fast, &src, c);
                naive::mul_add_slice(&mut slow, &src, c);
                assert_eq!(fast, slow, "mul_add_slice len {len} coefficient {c}");

                let mut fast = init.clone();
                let mut slow = init.clone();
                mul_slice(&mut fast, &src, c);
                naive::mul_slice(&mut slow, &src, c);
                assert_eq!(fast, slow, "mul_slice len {len} coefficient {c}");
            }
        }
    }

    #[test]
    fn mul_add_helper_fuses() {
        let a = Gf256::new(17);
        let b = Gf256::new(99);
        let c = Gf256::new(3);
        assert_eq!(c.mul_add(a, b), c * a + b);
    }

    #[test]
    fn distributivity_exhaustive_sample() {
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                for c in (0..=255u8).step_by(29) {
                    let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn conversions_roundtrip() {
        let a: Gf256 = 0xAB_u8.into();
        let b: u8 = a.into();
        assert_eq!(b, 0xAB);
        assert_eq!(a.value(), 0xAB);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        assert_eq!(format!("{:?}", Gf256::new(0x0F)), "Gf256(0x0f)");
        assert_eq!(format!("{}", Gf256::new(0x0F)), "0f");
        assert_eq!(format!("{:x}", Gf256::new(0xAB)), "ab");
        assert_eq!(format!("{:b}", Gf256::new(2)), "10");
    }
}
